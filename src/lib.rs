//! # DataCell
//!
//! A full reproduction of **"Enhanced Stream Processing in a DBMS Kernel"**
//! (E. Liarou, S. Idreos, S. Manegold, M. Kersten — EDBT 2013): a stream
//! engine built *on top of* a column-store DBMS kernel, where incremental
//! sliding-window processing is obtained by **query plan rewriting** rather
//! than specialized stream operators.
//!
//! This facade crate re-exports the full stack:
//!
//! * [`kernel`] — the MonetDB-like column-store substrate (BATs + bulk
//!   columnar algebra);
//! * [`basket`] — stream ingress/egress: baskets, receptors, emitters;
//! * [`plan`] — logical plans, MAL-like physical plans, one-shot execution;
//! * [`core`] — the paper's contribution: the incremental plan rewriter,
//!   factories, the Petri-net scheduler and the `DataCell` engine itself;
//! * [`sql`] — a SQL subset front-end with continuous-query window clauses;
//! * [`net`] — the network edge: a std-only nonblocking TCP server
//!   multiplexing many ingest connections onto the sharded basket edge,
//!   fanning query results out to subscribers, and serving `/metrics`;
//! * [`sysx`] — a simulated specialized tuple-at-a-time stream engine, the
//!   paper's commercial "SystemX" baseline;
//! * [`telemetry`] — runtime observability: counters, gauges, latency
//!   histograms and a Prometheus-text exposition surface (see
//!   `Engine::telemetry_snapshot`).
//!
//! ## Quick start
//!
//! ```
//! use datacell::prelude::*;
//!
//! // An engine with one input stream carrying two int attributes.
//! let mut engine = Engine::new();
//! engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
//!
//! // Continuous query: per sliding window of 4 tuples, step 2:
//! //   SELECT sum(x2) FROM s WHERE x1 > 10
//! let q = engine
//!     .register_sql("SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 2")
//!     .unwrap();
//!
//! // Feed tuples; the scheduler fires factories as windows fill.
//! engine.append("s", &[
//!     Column::Int(vec![5, 20, 30, 7, 40, 8]),
//!     Column::Int(vec![1, 2, 3, 4, 5, 6]),
//! ]).unwrap();
//! engine.run_until_idle().unwrap();
//!
//! // Two complete windows -> two results.
//! let out = engine.drain_results(q).unwrap();
//! assert_eq!(out.len(), 2);
//! ```

pub use datacell_basket as basket;
pub use datacell_core as core;
pub use datacell_kernel as kernel;
pub use datacell_net as net;
pub use datacell_plan as plan;
pub use datacell_sql as sql;
pub use datacell_telemetry as telemetry;
pub use sysx;

/// Most commonly used items across the stack.
pub mod prelude {
    pub use datacell_basket::{BasicWindow, Basket, ShardedBasket, SharedBasket};
    pub use datacell_core::{DataCellError, Engine, ExecMode, QueryId, WindowSpec};
    pub use datacell_kernel::{Bat, Column, DataType, Value};
    pub use datacell_plan::LogicalPlan;
}
