//! Plain-text table rendering for the figure harnesses.

use std::time::Duration;

/// Format a duration in adaptive units (µs/ms/s) with 3 significant-ish
/// digits, the way the harness tables print timings.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

/// Print an aligned table: header row + data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<String>| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header.iter().map(std::string::ToString::to_string).collect()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0us");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_duration(Duration::from_millis(3200)), "3.200s");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "beta"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
