//! Query runners: set up an engine, feed a workload, collect per-slide
//! metrics — the shared machinery behind every figure harness.

use crate::workload::{gen_join_stream, gen_q1_stream, selectivity_threshold};
use datacell_basket::Timestamp;
use datacell_core::{
    AdaptiveChunker, DataCellError, Engine, ExecMode, Factory, FireOutcome, QueryId,
    RegisterOptions, ResultSet, SlideMetrics, StreamInput,
};
use datacell_kernel::{Column, DataType, Oid, Value};
use std::time::{Duration, Instant};
use sysx::{QuerySpec, SysxEngine};

/// Execution strategy under measurement.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Incremental DataCell.
    DataCell,
    /// Re-evaluation baseline.
    DataCellR,
    /// Incremental with a fixed chunk count `m`.
    Chunked(usize),
    /// Incremental with the self-adapting chunker (max m, probe window).
    Adaptive {
        /// Ceiling for the probed `m`.
        max_m: usize,
        /// Slides per probe phase.
        probe_every: usize,
    },
}

impl Mode {
    fn options(&self) -> RegisterOptions {
        match self {
            Mode::DataCell => RegisterOptions { mode: ExecMode::Incremental, chunker: None },
            Mode::DataCellR => RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
            Mode::Chunked(m) => RegisterOptions {
                mode: ExecMode::Incremental,
                chunker: Some(AdaptiveChunker::fixed(*m)),
            },
            Mode::Adaptive { max_m, probe_every } => RegisterOptions {
                mode: ExecMode::Incremental,
                chunker: Some(AdaptiveChunker::new(*max_m, *probe_every)),
            },
        }
    }

    /// Display label matching the paper's naming.
    pub fn label(&self) -> String {
        match self {
            Mode::DataCell => "DataCell".into(),
            Mode::DataCellR => "DataCellR".into(),
            Mode::Chunked(m) => format!("DataCell(m={m})"),
            Mode::Adaptive { .. } => "DataCell(adaptive)".into(),
        }
    }
}

/// Everything a harness needs from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-produced-window metrics.
    pub per_window: Vec<SlideMetrics>,
    /// End-to-end wall time (feeding + scheduling + processing).
    pub wall: Duration,
    /// Total result rows across all windows.
    pub rows: usize,
}

impl RunOutcome {
    /// Mean per-window response time.
    pub fn mean_response(&self) -> Duration {
        if self.per_window.is_empty() {
            return Duration::ZERO;
        }
        self.per_window.iter().map(|m| m.total).sum::<Duration>() / self.per_window.len() as u32
    }

    /// Total time spent in the original plan operators.
    pub fn main_plan_total(&self) -> Duration {
        self.per_window.iter().map(|m| m.main_plan).sum()
    }

    /// Total time spent in merge machinery.
    pub fn merge_total(&self) -> Duration {
        self.per_window.iter().map(|m| m.merge).sum()
    }
}

/// Q1 configuration (single-stream select + group-by + sum).
#[derive(Debug, Clone)]
pub struct Q1Config {
    /// Window size in tuples (`|W|`).
    pub window: usize,
    /// Step in tuples (`|w|`).
    pub step: usize,
    /// Selection selectivity in `[0,1]`.
    pub selectivity: f64,
    /// Number of produced windows to measure.
    pub windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Q1Config {
    /// Total tuples the run consumes: the initial window plus one step per
    /// additional produced window — `|W| + (windows-1)·|w|`.
    pub fn total_tuples(&self) -> usize {
        self.window + self.windows.saturating_sub(1) * self.step
    }
}

/// Q2 configuration (two-stream join + max + avg).
#[derive(Debug, Clone)]
pub struct Q2Config {
    /// Window size per stream.
    pub window: usize,
    /// Step per stream.
    pub step: usize,
    /// Join key domain (join selectivity = 1/key_domain).
    pub key_domain: i64,
    /// Number of produced windows.
    pub windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Q2Config {
    /// Tuples consumed per stream: `|W| + (windows-1)·|w|`.
    pub fn total_tuples(&self) -> usize {
        self.window + self.windows.saturating_sub(1) * self.step
    }
}

/// Q3 configuration (landmark max + sum).
#[derive(Debug, Clone)]
pub struct Q3Config {
    /// Landmark step (result cadence).
    pub step: usize,
    /// Selection selectivity.
    pub selectivity: f64,
    /// Number of produced results.
    pub windows: usize,
    /// RNG seed.
    pub seed: u64,
}

fn drain_metrics(engine: &mut Engine, q: QueryId) -> (Vec<SlideMetrics>, usize) {
    let metrics = engine.metrics(q).expect("query exists").to_vec();
    let rows = metrics.iter().map(|m| m.rows).sum();
    (metrics, rows)
}

/// Run Q1 — `SELECT x1, sum(x2) FROM s WHERE x1 > v GROUP BY x1` — in the
/// given mode; feed in step-sized batches like a receptor would.
pub fn run_q1(mode: &Mode, cfg: &Q1Config) -> RunOutcome {
    let mut engine = Engine::new();
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let thr = selectivity_threshold(cfg.selectivity);
    let sql = format!(
        "SELECT x1, sum(x2) FROM s WHERE x1 > {thr} GROUP BY x1 WINDOW SIZE {} SLIDE {}",
        cfg.window, cfg.step
    );
    let q = engine.register_sql_with(&sql, mode.options()).unwrap();
    let data = gen_q1_stream(cfg.total_tuples(), cfg.seed);

    let t0 = Instant::now();
    feed_in_batches(&mut engine, "s", &data, cfg.step);
    let wall = t0.elapsed();
    let (per_window, rows) = drain_metrics(&mut engine, q);
    RunOutcome { per_window, wall, rows }
}

/// Run Q2 — `SELECT max(s1.v), avg(s2.v) FROM s1, s2 WHERE s1.k = s2.k`.
pub fn run_q2(mode: &Mode, cfg: &Q2Config) -> RunOutcome {
    let mut engine = Engine::new();
    engine.create_stream("s1", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    engine.create_stream("s2", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let sql = format!(
        "SELECT max(s1.v), avg(s2.v) FROM s1, s2 WHERE s1.k = s2.k WINDOW SIZE {} SLIDE {}",
        cfg.window, cfg.step
    );
    let q = engine.register_sql_with(&sql, mode.options()).unwrap();
    let d1 = gen_join_stream(cfg.total_tuples(), cfg.key_domain, cfg.seed);
    let d2 = gen_join_stream(cfg.total_tuples(), cfg.key_domain, cfg.seed.wrapping_add(1));

    let t0 = Instant::now();
    feed_two_in_batches(&mut engine, ("s1", &d1), ("s2", &d2), cfg.step);
    let wall = t0.elapsed();
    let (per_window, rows) = drain_metrics(&mut engine, q);
    RunOutcome { per_window, wall, rows }
}

/// Run Q3 — `SELECT max(x1), sum(x2) FROM s WHERE x1 > v` over a landmark
/// window.
pub fn run_q3_landmark(mode: &Mode, cfg: &Q3Config) -> RunOutcome {
    let mut engine = Engine::new();
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let thr = selectivity_threshold(cfg.selectivity);
    let sql = format!(
        "SELECT max(x1), sum(x2) FROM s WHERE x1 > {thr} WINDOW LANDMARK SLIDE {}",
        cfg.step
    );
    let q = engine.register_sql_with(&sql, mode.options()).unwrap();
    let data = gen_q1_stream(cfg.step * cfg.windows, cfg.seed);

    let t0 = Instant::now();
    feed_in_batches(&mut engine, "s", &data, cfg.step);
    let wall = t0.elapsed();
    let (per_window, rows) = drain_metrics(&mut engine, q);
    RunOutcome { per_window, wall, rows }
}

/// Configuration of the multi-query scheduler-scaling workload: `queries`
/// independent standing Q1-shape queries, each on its own stream —
/// independent Petri-net transitions the worker pool can fire
/// concurrently (the fig7 workload fanned out across queries).
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of independent standing queries (each gets its own stream).
    pub queries: usize,
    /// Window size per query (`|W|`, tuples).
    pub window: usize,
    /// Step per query (`|w|`, tuples).
    pub step: usize,
    /// Produced windows per query.
    pub windows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulated per-fire blocking latency (receptor/emitter hops, remote
    /// operators). `ZERO` measures pure CPU scaling; a non-zero cost
    /// measures the scheduler's ability to overlap blocked transitions,
    /// which parallelizes even on a single core.
    pub fire_cost: Duration,
}

impl ScaleConfig {
    /// Tuples fed per stream: `|W| + (windows-1)·|w|`.
    pub fn total_tuples(&self) -> usize {
        self.window + self.windows.saturating_sub(1) * self.step
    }
}

/// Outcome of one scheduler-scaling run.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Wall time of the single drain that processed the whole backlog.
    pub wall: Duration,
    /// Total windows emitted across all queries.
    pub emissions: usize,
    /// Every produced row, per query then per window — compared across
    /// worker counts to prove the parallel drain changes nothing.
    pub results: Vec<Vec<Vec<Vec<Value>>>>,
}

impl ScaleOutcome {
    /// Emissions per second over the drain.
    pub fn throughput(&self) -> f64 {
        self.emissions as f64 / self.wall.as_secs_f64().max(f64::EPSILON)
    }
}

/// A Q1-shaped factory with a simulated blocking cost per fire: consumes
/// one step, sleeps `cost` (the receptor/emitter hop the paper's separate
/// processes pay), then emits `sum(x2) where x1 > thr` over the step.
struct ThrottledSumFactory {
    label: String,
    input: StreamInput,
    step: usize,
    threshold: i64,
    cost: Duration,
    metrics: Vec<SlideMetrics>,
}

impl Factory for ThrottledSumFactory {
    fn label(&self) -> &str {
        &self.label
    }

    fn ready(&self, _clock: Timestamp) -> bool {
        self.input.available() >= self.step
    }

    fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
        let w = self.input.take(self.step)?;
        if !self.cost.is_zero() {
            std::thread::sleep(self.cost);
        }
        let xs = w.col(0).unwrap().as_int().unwrap();
        let ys = w.col(1).unwrap().as_int().unwrap();
        let sum: i64 =
            xs.iter().zip(ys).filter(|(x, _)| **x > self.threshold).map(|(_, y)| *y).sum();
        let result = ResultSet::new(vec!["sum".into()], vec![Column::Int(vec![sum])])
            .map_err(|e| DataCellError::Unsupported(format!("result shape: {e}")))?;
        let m = SlideMetrics { rows: 1, ..SlideMetrics::default() };
        self.metrics.push(m);
        Ok(FireOutcome::Produced { result, metrics: m })
    }

    fn consumed_upto(&self, stream: &str) -> Option<Oid> {
        (stream == self.input.name).then_some(self.input.consumed)
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.name.clone()]
    }

    fn metrics(&self) -> &[SlideMetrics] {
        &self.metrics
    }
}

/// Run the multi-query workload on `workers` scheduler threads: register
/// the standing queries, pre-fill every stream's backlog, then time one
/// `run_until_idle` drain — maximum available parallelism.
pub fn run_scheduler_scale(workers: usize, cfg: &ScaleConfig) -> ScaleOutcome {
    let mut engine = Engine::with_workers(workers);
    let thr = selectivity_threshold(0.2);
    let mut queries = Vec::with_capacity(cfg.queries);
    for i in 0..cfg.queries {
        let stream = format!("s{i}");
        engine.create_stream(&stream, &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        let q = if cfg.fire_cost.is_zero() {
            // The fig7 shape: incremental group-by over n basic windows.
            engine
                .register_sql(&format!(
                    "SELECT x1, sum(x2) FROM {stream} WHERE x1 > {thr} GROUP BY x1 \
                     WINDOW SIZE {} SLIDE {}",
                    cfg.window, cfg.step
                ))
                .unwrap()
        } else {
            engine
                .register_factory(Box::new(ThrottledSumFactory {
                    label: stream.clone(),
                    input: StreamInput::new(
                        stream.clone(),
                        engine.basket(&stream).unwrap().shared(),
                    ),
                    step: cfg.step,
                    threshold: thr,
                    cost: cfg.fire_cost,
                    metrics: vec![],
                }))
                .unwrap()
        };
        queries.push((stream, q));
    }
    // Pre-fill the backlog so the drain sees every transition enabled.
    let total = cfg.total_tuples();
    for (i, (stream, _)) in queries.iter().enumerate() {
        let data = gen_q1_stream(total, cfg.seed.wrapping_add(i as u64));
        engine.append(stream, &data).unwrap();
    }

    let t0 = Instant::now();
    engine.run_until_idle().unwrap();
    let wall = t0.elapsed();

    let mut emissions = 0;
    let mut results = Vec::with_capacity(cfg.queries);
    for (_, q) in &queries {
        let out = engine.drain_results(*q).unwrap();
        emissions += out.len();
        results.push(out.iter().map(ResultSet::rows).collect());
    }
    ScaleOutcome { wall, emissions, results }
}

/// Run Q2 on the SystemX simulator (tuple-at-a-time): returns the wall
/// time for consuming the same workload and the produced window count.
pub fn run_sysx_q2(cfg: &Q2Config) -> RunOutcome {
    let d1 = gen_join_stream(cfg.total_tuples(), cfg.key_domain, cfg.seed);
    let d2 = gen_join_stream(cfg.total_tuples(), cfg.key_domain, cfg.seed.wrapping_add(1));
    let (k1, v1) = (d1[0].as_int().unwrap(), d1[1].as_int().unwrap());
    let (k2, v2) = (d2[0].as_int().unwrap(), d2[1].as_int().unwrap());

    let mut e = SysxEngine::new(QuerySpec::JoinMaxAvg, cfg.window, cfg.step);
    let t0 = Instant::now();
    for i in 0..cfg.total_tuples() {
        e.push_left(k1[i], v1[i]);
        e.push_right(k2[i], v2[i]);
    }
    let wall = t0.elapsed();
    let produced = e.emitted();
    RunOutcome {
        per_window: vec![SlideMetrics::default(); produced],
        wall,
        rows: e.drain_results().len(),
    }
}

/// Feed a single stream in step-sized batches, scheduling after each batch
/// (the steady arrival pattern of the paper's experiments).
pub fn feed_in_batches(
    engine: &mut Engine,
    stream: &str,
    data: &[datacell_kernel::Column],
    batch: usize,
) {
    let n = data[0].len();
    let mut off = 0;
    while off < n {
        let len = batch.min(n - off);
        let chunk: Vec<datacell_kernel::Column> =
            data.iter().map(|c| c.slice_owned(off, len)).collect();
        engine.append(stream, &chunk).unwrap();
        engine.run_until_idle().unwrap();
        off += len;
    }
}

/// Feed two streams in lock-step batches.
pub fn feed_two_in_batches(
    engine: &mut Engine,
    (s1, d1): (&str, &[datacell_kernel::Column]),
    (s2, d2): (&str, &[datacell_kernel::Column]),
    batch: usize,
) {
    let n = d1[0].len().min(d2[0].len());
    let mut off = 0;
    while off < n {
        let len = batch.min(n - off);
        let c1: Vec<datacell_kernel::Column> = d1.iter().map(|c| c.slice_owned(off, len)).collect();
        let c2: Vec<datacell_kernel::Column> = d2.iter().map(|c| c.slice_owned(off, len)).collect();
        engine.append(s1, &c1).unwrap();
        engine.append(s2, &c2).unwrap();
        engine.run_until_idle().unwrap();
        off += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_q1() -> Q1Config {
        Q1Config { window: 512, step: 64, selectivity: 0.2, windows: 6, seed: 11 }
    }

    #[test]
    fn q1_incremental_and_reeval_produce_same_row_counts() {
        let a = run_q1(&Mode::DataCell, &small_q1());
        let b = run_q1(&Mode::DataCellR, &small_q1());
        assert_eq!(a.per_window.len(), 6);
        assert_eq!(b.per_window.len(), 6);
        assert_eq!(a.rows, b.rows);
        assert!(a.rows > 0);
    }

    #[test]
    fn q2_runs_and_emits() {
        let cfg = Q2Config { window: 256, step: 64, key_domain: 64, windows: 4, seed: 3 };
        let a = run_q2(&Mode::DataCell, &cfg);
        let b = run_q2(&Mode::DataCellR, &cfg);
        assert_eq!(a.per_window.len(), 4);
        assert_eq!(b.per_window.len(), 4);
    }

    #[test]
    fn q3_landmark_runs() {
        let cfg = Q3Config { step: 100, selectivity: 0.2, windows: 5, seed: 9 };
        let a = run_q3_landmark(&Mode::DataCell, &cfg);
        assert_eq!(a.per_window.len(), 5);
        let b = run_q3_landmark(&Mode::DataCellR, &cfg);
        assert_eq!(b.per_window.len(), 5);
    }

    #[test]
    fn sysx_q2_produces_same_window_count() {
        let cfg = Q2Config { window: 256, step: 64, key_domain: 64, windows: 4, seed: 3 };
        let s = run_sysx_q2(&cfg);
        assert_eq!(s.per_window.len(), 4);
    }

    #[test]
    fn chunked_mode_runs() {
        let cfg = Q1Config { window: 256, step: 64, selectivity: 0.2, windows: 4, seed: 5 };
        let a = run_q1(&Mode::Chunked(4), &cfg);
        assert_eq!(a.per_window.len(), 4);
        let b = run_q1(&Mode::Adaptive { max_m: 8, probe_every: 2 }, &cfg);
        assert_eq!(b.per_window.len(), 4);
    }

    #[test]
    fn outcome_accessors() {
        let cfg = small_q1();
        let a = run_q1(&Mode::DataCell, &cfg);
        assert!(a.mean_response() > Duration::ZERO);
        let _ = a.main_plan_total();
        let _ = a.merge_total();
        assert_eq!(Mode::DataCellR.label(), "DataCellR");
        assert_eq!(Mode::Chunked(8).label(), "DataCell(m=8)");
    }
}
