//! Minimal command-line argument handling shared by the figure harnesses.
//!
//! Every harness accepts:
//!
//! * `--scale f`  — multiply all data sizes by `f` (default keeps runs in
//!   seconds; the paper's exact sizes are minutes-per-point);
//! * `--paper`    — shorthand for the paper's full sizes (`--scale 1` on
//!   the paper's parameters; default harness parameters are pre-reduced);
//! * `--windows n` — override the number of measured windows;
//! * `--seed n`   — RNG seed;
//! * `--fire-cost-us n` — simulated per-fire blocking latency in µs
//!   (`scheduler_scale` only: models receptor/emitter hops so scheduler
//!   overlap is measurable even on a single core);
//! * `--partitions n` — pin the kernel partition fan-out (`join_scale`
//!   only: measure a single `P` instead of sweeping the default list);
//! * `--shards n` — pin the basket shard count (`ingest_scale` only:
//!   measure a single shard count instead of sweeping the default list);
//! * `--placement m` — pin the morsel placement mode (`aligned` or
//!   `roundrobin`; `agg_scale`/`ingest_scale`: measure one mode instead
//!   of sweeping both).

use datacell_kernel::par::parse_placement;
use datacell_kernel::PlacementMode;

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Size multiplier applied to the harness's default workload.
    pub scale: f64,
    /// Use the paper's full parameters.
    pub paper: bool,
    /// Override for the measured window count.
    pub windows: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Override for the simulated per-fire latency (µs).
    pub fire_cost_us: Option<u64>,
    /// Override for the kernel partition fan-out.
    pub partitions: Option<usize>,
    /// Override for the basket shard count.
    pub shards: Option<usize>,
    /// Override for the morsel placement mode.
    pub placement: Option<PlacementMode>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1.0,
            paper: false,
            windows: None,
            seed: 42,
            fire_cost_us: None,
            partitions: None,
            shards: None,
            placement: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args()` (skipping the binary name). Unknown
    /// flags abort with a usage message — harnesses have no other inputs.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(mut it: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--paper" => args.paper = true,
                "--windows" => {
                    args.windows = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--windows needs a count")),
                    );
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--fire-cost-us" => {
                    args.fire_cost_us = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--fire-cost-us needs microseconds")),
                    );
                }
                "--partitions" => {
                    // Zero is rejected like DATACELL_PARTITIONS rejects it
                    // (kernel::par::parse_partitions), so both config
                    // surfaces agree that the minimum fan-out is 1.
                    args.partitions = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .unwrap_or_else(|| usage("--partitions needs a positive count")),
                    );
                }
                "--shards" => {
                    // Zero is rejected like DATACELL_BASKET_SHARDS rejects
                    // it (basket::parse_shards): minimum shard count is 1.
                    args.shards = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .unwrap_or_else(|| usage("--shards needs a positive count")),
                    );
                }
                "--placement" => {
                    // Same spellings DATACELL_PLACEMENT accepts
                    // (kernel::par::parse_placement) — one config surface.
                    args.placement = Some(
                        parse_placement(it.next().as_deref())
                            .unwrap_or_else(|| usage("--placement needs aligned or roundrobin")),
                    );
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Scale a size, keeping it at least `min`.
    pub fn sized(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: fig* [--scale f] [--paper] [--windows n] [--seed n] [--fire-cost-us n] \
         [--partitions n] [--shards n] [--placement aligned|roundrobin]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert!(!a.paper);
        assert_eq!(a.windows, None);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--paper",
            "--windows",
            "7",
            "--seed",
            "9",
            "--fire-cost-us",
            "150",
            "--partitions",
            "4",
            "--shards",
            "8",
            "--placement",
            "aligned",
        ]);
        assert_eq!(a.scale, 0.5);
        assert!(a.paper);
        assert_eq!(a.windows, Some(7));
        assert_eq!(a.seed, 9);
        assert_eq!(a.fire_cost_us, Some(150));
        assert_eq!(a.partitions, Some(4));
        assert_eq!(a.shards, Some(8));
        assert_eq!(a.placement, Some(PlacementMode::Aligned));
    }

    #[test]
    fn placement_accepts_both_spellings() {
        assert_eq!(parse(&["--placement", "rr"]).placement, Some(PlacementMode::RoundRobin));
        assert_eq!(
            parse(&["--placement", "round-robin"]).placement,
            Some(PlacementMode::RoundRobin)
        );
        assert_eq!(parse(&[]).placement, None);
    }

    #[test]
    fn sized_scales_with_floor() {
        let a = parse(&["--scale", "0.01"]);
        assert_eq!(a.sized(1000, 64), 64);
        assert_eq!(a.sized(100_000, 64), 1000);
    }
}
