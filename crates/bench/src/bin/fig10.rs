//! Figure 10 (the unnumbered final figure of §4.2) — DataCell cost
//! breakdown: total time vs pure query processing vs loading (CSV parsing
//! into baskets), across window sizes.
//!
//! "Here, we test the complete software stack of DataCell, i.e., data is
//! read from an input file in chunks. It is parsed and then it is passed
//! into the system for query processing." The paper finds query processing
//! dominates and loading is a minor fraction.

use datacell_basket::CsvReceptor;
use datacell_bench::workload::{csv_for_stream, gen_join_stream};
use datacell_bench::{fmt_duration, print_table, Args};
use datacell_core::Engine;
use datacell_kernel::DataType;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(100);

    println!("Figure 10: DataCell cost breakdown (CSV loading vs query processing), Q2");
    let sizes = [1_024usize, 10_240, 25_600, 51_200, 102_400];
    let mut rows = Vec::new();
    for w in sizes {
        let w = if args.paper { w } else { args.sized(w, 640) };
        let step = (w / 64).max(1);
        let w = step * 64;
        let total_tuples = w + (windows - 1) * step;

        // Pre-render the CSV input (the "file") so only parse+load counts.
        let d1 = gen_join_stream(total_tuples, 100_000, args.seed);
        let d2 = gen_join_stream(total_tuples, 100_000, args.seed + 1);
        let csv1 = csv_for_stream(&d1);
        let csv2 = csv_for_stream(&d2);
        let lines1: Vec<&str> = csv1.lines().collect();
        let lines2: Vec<&str> = csv2.lines().collect();

        let mut engine = Engine::new();
        engine.create_stream("s1", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        engine.create_stream("s2", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = engine
            .register_sql(&format!(
                "SELECT max(s1.v), avg(s2.v) FROM s1, s2 WHERE s1.k = s2.k \
                 WINDOW SIZE {w} SLIDE {step}"
            ))
            .unwrap();

        let mut rx1 = CsvReceptor::new(&[DataType::Int, DataType::Int]);
        let mut rx2 = CsvReceptor::new(&[DataType::Int, DataType::Int]);
        let b1 = engine.basket("s1").unwrap();
        let b2 = engine.basket("s2").unwrap();

        let mut loading = Duration::ZERO;
        let t_total = Instant::now();
        let mut off = 0;
        while off < total_tuples {
            let len = step.min(total_tuples - off);
            // Loading: parse the next chunk of the file into the baskets.
            let t_load = Instant::now();
            let chunk1 = lines1[off..off + len].join("\n");
            let chunk2 = lines2[off..off + len].join("\n");
            rx1.parse(&chunk1).unwrap();
            rx2.parse(&chunk2).unwrap();
            rx1.flush_into(&b1, 0).unwrap();
            rx2.flush_into(&b2, 0).unwrap();
            loading += t_load.elapsed();
            // Query processing.
            engine.run_until_idle().unwrap();
            off += len;
        }
        let total = t_total.elapsed();
        let query: Duration = engine.metrics(q).unwrap().iter().map(|m| m.total).sum();

        rows.push(vec![
            w.to_string(),
            fmt_duration(total),
            fmt_duration(query),
            fmt_duration(loading),
        ]);
    }
    print_table(&["|W|", "total", "query processing", "loading"], &rows);

    println!(
        "\nshape check: query processing is the major component; loading \
         (parse+append)\nis a minor fraction of total cost."
    );
}
