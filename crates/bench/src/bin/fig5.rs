//! Figure 5 — Varying selectivity: (a) Q1 selection selectivity 10%..90%,
//! (b) Q2 join selectivity 10⁻⁵% .. 10⁻²%.
//!
//! Reported value: mean response time of a sliding step (excluding the
//! initial window), like the paper's "response times for a sliding step".

use datacell_bench::{fmt_duration, print_table, run_q1, run_q2, Args, Mode, Q1Config, Q2Config};
use std::time::Duration;

fn mean_steady(per_window: &[datacell_core::SlideMetrics]) -> Duration {
    // Skip the initial window (both systems pay full |W| there).
    let steady = &per_window[1.min(per_window.len().saturating_sub(1))..];
    if steady.is_empty() {
        return Duration::ZERO;
    }
    steady.iter().map(|m| m.total).sum::<Duration>() / steady.len() as u32
}

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(6);

    // -- (a) Q1 selection selectivity -------------------------------------
    let (w1, s1) = if args.paper {
        (10_240_000, 20_000)
    } else {
        (args.sized(1_024_000, 5_120), args.sized(2_000, 10))
    };
    println!("Figure 5(a): Q1, vary selectivity  (|W|={w1}, |w|={s1})");
    let mut rows = Vec::new();
    for sel in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let cfg = Q1Config { window: w1, step: s1, selectivity: sel, windows, seed: args.seed };
        let re = run_q1(&Mode::DataCellR, &cfg);
        let inc = run_q1(&Mode::DataCell, &cfg);
        rows.push(vec![
            format!("{:.0}%", sel * 100.0),
            fmt_duration(mean_steady(&re.per_window)),
            fmt_duration(mean_steady(&inc.per_window)),
        ]);
    }
    print_table(&["selectivity", "DataCellR", "DataCell"], &rows);

    // -- (b) Q2 join selectivity ------------------------------------------
    let (w2, s2) =
        if args.paper { (102_400, 1_600) } else { (args.sized(51_200, 640), args.sized(800, 10)) };
    println!("\nFigure 5(b): Q2, vary join selectivity  (|W|={w2}, |w|={s2})");
    let mut rows = Vec::new();
    // Join selectivity = 1/key_domain (probability a given pair matches).
    for domain in [10_000_000i64, 1_000_000, 100_000, 10_000] {
        let cfg = Q2Config { window: w2, step: s2, key_domain: domain, windows, seed: args.seed };
        let re = run_q2(&Mode::DataCellR, &cfg);
        let inc = run_q2(&Mode::DataCell, &cfg);
        rows.push(vec![
            format!("{:.0e}%", 100.0 / domain as f64),
            fmt_duration(mean_steady(&re.per_window)),
            fmt_duration(mean_steady(&inc.per_window)),
        ]);
    }
    print_table(&["join sel", "DataCellR", "DataCell"], &rows);

    println!(
        "\nshape check: both gradients rise with selectivity; DataCellR's rises \
         much\nfaster (it reprocesses the whole window each step)."
    );
}
