//! `serve_scale` — network-edge throughput: ingest connections ×
//! subscribers over real localhost TCP.
//!
//! Each measured point spins up a fresh engine with `STREAMS` input
//! streams and one continuous query per stream, serves it with
//! `datacell_net::NetServer`, then hammers it: `conns` writer connections
//! (round-robin across streams) each push `rows` CSV rows as fast as the
//! socket accepts, while `subs` subscriber connections (round-robin across
//! queries) read result lines until every expected window has arrived.
//! The wall clock runs from the first writer byte to the last subscriber
//! line — it covers parse, shard append, scheduling, window evaluation
//! and fan-out, i.e. the whole wire-to-wire path.
//!
//! Reported per point: total rows pushed, wire-to-wire wall time, ingest
//! throughput (Mrows/s), result lines delivered, and the two safety-valve
//! counters (backpressure ticks, subscriber overflows — both should be 0
//! in a healthy run; nonzero backpressure means the scheduler, not the
//! wire, is the bottleneck at that point).
//!
//! Flags: `--scale f` resizes rows per connection, `--windows n`
//! overrides rows per connection directly, `--seed n` the value seed.

use datacell_bench::{fmt_duration, print_table, Args};
use datacell_core::Engine;
use datacell_kernel::DataType;
use datacell_net::{NetConfig, NetServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const STREAMS: usize = 4;
const WINDOW: usize = 256;
const SLIDE: usize = 128;
/// (ingest connections, subscribers) per measured point.
const POINTS: [(usize, usize); 4] = [(1, 1), (4, 2), (8, 8), (16, 8)];
const ROWS_PER_CONN: usize = 20_000;

struct Point {
    conns: usize,
    subs: usize,
    total_rows: usize,
    wall: Duration,
    lines: u64,
    backpressure: u64,
    overflows: u64,
}

fn engine() -> Engine {
    let mut e = Engine::new();
    for i in 0..STREAMS {
        e.create_stream(&format!("s{i}"), &[("x", DataType::Int), ("y", DataType::Float)])
            .expect("stream");
    }
    for i in 0..STREAMS {
        e.register_sql(&format!(
            "SELECT sum(y) FROM s{i} WHERE x > 1 WINDOW SIZE {WINDOW} SLIDE {SLIDE}"
        ))
        .expect("query");
    }
    e
}

/// Result lines one query emits over `n` input rows (one line per window).
fn expected_lines(n: usize) -> usize {
    if n >= WINDOW {
        (n - WINDOW) / SLIDE + 1
    } else {
        0
    }
}

fn run_point(conns: usize, subs: usize, rows: usize, seed: u64) -> Point {
    let server =
        NetServer::spawn(engine(), "127.0.0.1:0", NetConfig::default()).expect("spawn server");
    let addr = server.local_addr();

    // Subscribers attach first so every one of them sees window 0.
    let writers_on = |stream: usize| (0..conns).filter(|c| c % STREAMS == stream).count();
    let readers: Vec<_> = (0..subs)
        .map(|m| {
            let qi = m % STREAMS;
            let want = expected_lines(writers_on(qi) * rows);
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).expect("subscriber connect");
                sock.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
                let mut r = BufReader::new(sock);
                r.get_mut().write_all(format!("SUBSCRIBE q{qi}\n").as_bytes()).expect("hello");
                let mut line = String::new();
                r.read_line(&mut line).expect("ack");
                assert!(line.starts_with("OK"), "handshake failed: {line:?}");
                for _ in 0..want {
                    line.clear();
                    let n = r.read_line(&mut line).expect("result line");
                    assert!(n > 0, "server closed before all windows arrived");
                }
            })
        })
        .collect();

    let start = Instant::now();
    let writers: Vec<_> = (0..conns)
        .map(|c| {
            let stream = c % STREAMS;
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("writer connect");
                sock.write_all(format!("INGEST s{stream}\n").as_bytes()).expect("hello");
                // ~4 KiB batches: realistic client-side buffering.
                let mut payload = String::with_capacity(8192);
                for j in 0..rows {
                    let x = (j as u64).wrapping_mul(seed | 1) % 7;
                    let y = j as f64 * 0.5;
                    payload.push_str(&format!("{x},{y}\n"));
                    if payload.len() >= 4096 {
                        sock.write_all(payload.as_bytes()).expect("rows");
                        payload.clear();
                    }
                }
                sock.write_all(payload.as_bytes()).expect("tail");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }
    for r in readers {
        r.join().expect("subscriber thread");
    }
    let wall = start.elapsed();

    let stats = server.stats().clone();
    drop(server.shutdown());
    Point {
        conns,
        subs,
        total_rows: conns * rows,
        wall,
        lines: stats.fanout_rows.get(),
        backpressure: stats.backpressure_ticks.get(),
        overflows: stats.subscriber_overflows.get(),
    }
}

fn main() {
    let args = Args::parse();
    let rows = args.windows.unwrap_or_else(|| args.sized(ROWS_PER_CONN, WINDOW * 2));
    println!(
        "serve_scale: {STREAMS} streams/queries, window {WINDOW} slide {SLIDE}, \
         {rows} rows per connection\n"
    );
    let mut table = Vec::new();
    for (conns, subs) in POINTS {
        let p = run_point(conns, subs, rows, args.seed);
        let mrows = p.total_rows as f64 / p.wall.as_secs_f64() / 1e6;
        table.push(vec![
            format!("{}", p.conns),
            format!("{}", p.subs),
            format!("{}", p.total_rows),
            fmt_duration(p.wall),
            format!("{mrows:.2}"),
            format!("{}", p.lines),
            format!("{}", p.backpressure),
            format!("{}", p.overflows),
        ]);
    }
    print_table(
        &["conns", "subs", "rows", "wall", "Mrows/s", "lines out", "bp ticks", "overflows"],
        &table,
    );
}
