//! `ingest_scale` — append throughput vs. basket shard count × receptor
//! thread count × placement mode.
//!
//! For each (shards, receptors) point the harness hammers one
//! `ShardedBasket` with `receptors` appender threads, then seals and
//! verifies the stream: dense oids, exact tuple count, exact value
//! checksum — the same invariants `tests/sharded_ingest.rs` asserts.
//! `shards = 1` dispatches to the literal single-mutex `SharedBasket`
//! path, so it *is* the contention baseline the sharded path is measured
//! against. The sweep repeats per placement mode: `roundrobin` pins each
//! receptor to its round-robin shard (`append_shard`), `aligned` routes
//! every batch through `append_keyed`, scattering rows to shards by the
//! canonical key-hash (`kernel::hash::Placement`) — the same map the
//! kernel uses to carve aligned aggregation morsels downstream.
//!
//! Reported per point: wall time of the append phase, appends/s and
//! Mtuples/s (append phase only — the contention under test), the
//! trailing seal's cost and whether it fanned out per shard (the
//! `par::stats` seal counters), and speedup vs. 1 shard at the same
//! receptor count.
//!
//! Like `scheduler_scale`/`join_scale`, thread-level speedup tracks
//! *physical cores*: on a single-core container the interesting numbers
//! are the overhead bounds (allocator + staging vs. one mutex); on
//! multi-core hardware appends/s at 4+ receptors should improve
//! monotonically from 1 → 4 shards.
//!
//! Flags: `--scale f` resizes the per-receptor batch count, `--shards n`
//! measures one shard count instead of the default sweep, `--placement m`
//! pins one placement mode instead of sweeping both, `--windows n`
//! overrides batches/receptor, `--seed n` the value seed.

use datacell_basket::{Basket, ShardedBasket};
use datacell_bench::{print_table, Args};
use datacell_kernel::par::stats;
use datacell_kernel::{Column, DataType, PlacementMode};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RECEPTOR_COUNTS: [usize; 3] = [1, 4, 16];
const ROWS_PER_BATCH: usize = 64;

struct Point {
    append_wall: Duration,
    seal_wall: Duration,
    seal_parallel: bool,
    appends_per_s: f64,
    tuples_per_s: f64,
}

fn mode_name(mode: PlacementMode) -> &'static str {
    match mode {
        PlacementMode::RoundRobin => "roundrobin",
        PlacementMode::Aligned => "aligned",
    }
}

/// One measured point: `receptors` threads × `batches` appends each.
fn run_point(
    shards: usize,
    receptors: usize,
    batches: usize,
    mode: PlacementMode,
    seed: u64,
) -> Point {
    let sb = ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), shards);
    let barrier = Arc::new(Barrier::new(receptors));
    // Each appender clocks its own span; the phase wall is the envelope
    // max(end) − min(start). Timing on the main thread would miss work
    // done before it gets scheduled again (single-core containers run
    // entire appender threads inside that gap).
    let threads: Vec<_> = (0..receptors)
        .map(|tid| {
            let sb = sb.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let shard = sb.assign_shard();
                let vals: Vec<i64> =
                    (0..ROWS_PER_BATCH as i64).map(|r| seed as i64 + tid as i64 + r).collect();
                let batch = [Column::Int(vals)];
                barrier.wait();
                let start = Instant::now();
                match mode {
                    PlacementMode::RoundRobin => {
                        for _ in 0..batches {
                            sb.append_shard(shard, &batch, 0).unwrap();
                        }
                    }
                    PlacementMode::Aligned => {
                        // Key-hash routing on the single Int column: the
                        // same rows land on the same shards the kernel's
                        // aligned morsels will own.
                        for _ in 0..batches {
                            sb.append_keyed(0, &batch, 0).unwrap();
                        }
                    }
                }
                (start, Instant::now())
            })
        })
        .collect();
    let spans: Vec<(Instant, Instant)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let first = spans.iter().map(|(s, _)| *s).min().unwrap();
    let last = spans.iter().map(|(_, e)| *e).max().unwrap();
    let append_wall = last - first;
    let stats0 = stats::snapshot();
    let t1 = Instant::now();
    let end = sb.seal();
    let seal_wall = t1.elapsed();
    let seal_parallel = stats::snapshot().delta(&stats0).seal_par_calls > 0;

    // Verify: no tuple lost or duplicated, oids dense from 0, and the
    // exact per-point value checksum — placement reorders rows within a
    // batch, never loses or rewrites them.
    let total = (receptors * batches * ROWS_PER_BATCH) as u64;
    assert_eq!(end, total, "sealed end != appended total");
    assert_eq!(sb.len() as u64, total);
    assert_eq!(sb.base_oid(), 0);
    let sum: i64 = sb.with(|b| b.snapshot().col(0).unwrap().as_int().unwrap().iter().sum());
    let expect: i64 = (0..receptors as i64)
        .map(|t| {
            (0..ROWS_PER_BATCH as i64).map(|r| seed as i64 + t + r).sum::<i64>() * batches as i64
        })
        .sum();
    assert_eq!(sum, expect, "value checksum mismatch");

    let secs = append_wall.as_secs_f64().max(f64::EPSILON);
    Point {
        append_wall,
        seal_wall,
        seal_parallel,
        appends_per_s: (receptors * batches) as f64 / secs,
        tuples_per_s: total as f64 / secs,
    }
}

fn main() {
    let args = Args::parse();
    let batches = args.windows.unwrap_or_else(|| args.sized(2_000, 50)).max(1);
    let shard_list: Vec<usize> = match args.shards {
        Some(s) if s > 1 => vec![1, s],
        Some(_) => vec![1],
        None => SHARD_COUNTS.to_vec(),
    };
    let modes: Vec<PlacementMode> = match args.placement {
        Some(m) => vec![m],
        None => vec![PlacementMode::RoundRobin, PlacementMode::Aligned],
    };
    println!(
        "ingest_scale: {batches} batches/receptor × {ROWS_PER_BATCH} rows, \
         shards {shard_list:?} × receptors {RECEPTOR_COUNTS:?} × modes {:?}\n",
        modes.iter().map(|&m| mode_name(m)).collect::<Vec<_>>()
    );
    for &mode in &modes {
        for &receptors in &RECEPTOR_COUNTS {
            let mut rows = Vec::new();
            let mut baseline: Option<f64> = None;
            for &shards in &shard_list {
                // Warm-up pass (first-touch allocation, thread spawn paths).
                run_point(shards, receptors, (batches / 10).max(1), mode, args.seed);
                let p = run_point(shards, receptors, batches, mode, args.seed);
                let speedup = match baseline {
                    Some(base) => p.appends_per_s / base,
                    None => 1.0,
                };
                if baseline.is_none() {
                    baseline = Some(p.appends_per_s);
                }
                rows.push(vec![
                    shards.to_string(),
                    format!("{:?}", p.append_wall),
                    format!("{:.0}", p.appends_per_s),
                    format!("{:.2}", p.tuples_per_s / 1.0e6),
                    format!("{:?}", p.seal_wall),
                    if p.seal_parallel { "parallel" } else { "serial" }.to_string(),
                    format!("{speedup:.2}x"),
                ]);
            }
            println!("mode = {}, receptors = {receptors}", mode_name(mode));
            print_table(
                &[
                    "shards",
                    "append wall",
                    "appends/s",
                    "Mtuples/s",
                    "seal",
                    "seal path",
                    "speedup",
                ],
                &rows,
            );
            println!();
        }
    }
    println!(
        "shape check: with 4+ receptor threads, appends/s should improve \
         monotonically from 1 to 4 shards on multi-core hardware;\non a \
         single-core container the 1-shard path has no second core to \
         lose to, so the table bounds the sharding overhead instead.\n\
         shards=1 dispatches to the literal single-mutex SharedBasket \
         path; every point verifies dense oids and an exact checksum.\n\
         aligned mode routes rows by key-hash (append_keyed) — same \
         totals, placement-scatter order; seals past {} staged rows \
         stitch shards on parallel threads.",
        4096
    );
}
