//! Figure 7 — Decreasing step size (increasing number of basic windows),
//! with the DataCell cost broken into *main plan* vs *merge* components.
//!
//! Paper: (a) Q1, |W| = 1.024e7, sel 20%, n ∈ {2..2048};
//!        (b) Q2, |W| = 1.024e5, n ∈ {2..64}.

use datacell_bench::{fmt_duration, print_table, run_q1, run_q2, Args, Mode, Q1Config, Q2Config};
use std::time::Duration;

fn steady(per_window: &[datacell_core::SlideMetrics]) -> (Duration, Duration, Duration) {
    let s = &per_window[1.min(per_window.len().saturating_sub(1))..];
    if s.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let n = s.len() as u32;
    (
        s.iter().map(|m| m.total).sum::<Duration>() / n,
        s.iter().map(|m| m.main_plan).sum::<Duration>() / n,
        s.iter().map(|m| m.merge).sum::<Duration>() / n,
    )
}

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(5);

    // -- (a) Q1 ------------------------------------------------------------
    let w1 = if args.paper { 10_240_000 } else { args.sized(1_024_000, 8_192) };
    println!("Figure 7(a): Q1, vary #basic windows, |W| = {w1}, sel = 20%");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
        if w1 % n != 0 {
            continue;
        }
        let cfg = Q1Config { window: w1, step: w1 / n, selectivity: 0.2, windows, seed: args.seed };
        let re = run_q1(&Mode::DataCellR, &cfg);
        let inc = run_q1(&Mode::DataCell, &cfg);
        let (total, main, merge) = steady(&inc.per_window);
        let (rt, _, _) = steady(&re.per_window);
        rows.push(vec![
            n.to_string(),
            fmt_duration(rt),
            fmt_duration(total),
            fmt_duration(main),
            fmt_duration(merge),
        ]);
    }
    print_table(
        &["n", "DataCellR(total)", "DataCell(total)", "DataCell(main plan)", "DataCell(merge)"],
        &rows,
    );

    // -- (b) Q2 ------------------------------------------------------------
    let w2 = if args.paper { 102_400 } else { args.sized(51_200, 4_096) };
    println!("\nFigure 7(b): Q2, vary #basic windows, |W| = {w2}");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        if w2 % n != 0 {
            continue;
        }
        let cfg =
            Q2Config { window: w2, step: w2 / n, key_domain: 10_000, windows, seed: args.seed };
        let re = run_q2(&Mode::DataCellR, &cfg);
        let inc = run_q2(&Mode::DataCell, &cfg);
        let (total, main, merge) = steady(&inc.per_window);
        let (rt, _, _) = steady(&re.per_window);
        rows.push(vec![
            n.to_string(),
            fmt_duration(rt),
            fmt_duration(total),
            fmt_duration(main),
            fmt_duration(merge),
        ]);
    }
    print_table(
        &["n", "DataCellR(total)", "DataCell(total)", "DataCell(main plan)", "DataCell(merge)"],
        &rows,
    );

    println!(
        "\nshape check: (a) total drops as n grows, then flattens; merge stays \
         negligible,\nwith a small rise at very large n (operator-call overhead). \
         (b) merge dominates\nonce the per-step join work becomes small."
    );
}
