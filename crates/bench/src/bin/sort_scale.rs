//! `sort_scale` — throughput vs. partition fan-out for the morsel-parallel
//! `kernel::par` fetch and sort paths (the `SortPerm` → `Fetch` MAL chain
//! behind `ORDER BY`), plus a scatter-elision leg for the aligned
//! aggregate kernel.
//!
//! For each `P` the harness runs `par::sort_perm` over the same key BAT
//! and then `par::fetch` of a payload column through the resulting
//! head-oid candidate list — the exact operator chain the executor emits
//! for `ORDER BY k`. `P = 1` dispatches to the literal sequential
//! `algebra::sort_perm` / `algebra::fetch`, so it *is* the sequential
//! baseline, and the harness asserts every `P` produces byte-identical
//! permutations and fetched columns. Three key distributions stress the
//! merge differently: *dense* (near-unique keys — comparator-bound),
//! *skewed* (100 distinct keys — duplicate-heavy, stability-sensitive)
//! and *presorted* (already ordered — per-run sorts are trivial, the
//! k-way merge dominates).
//!
//! The elision leg re-orders rows into canonical placement order
//! (`kernel::hash::Placement`) and runs the fused grouped aggregation
//! twice per point under aligned placement: once plainly, once with the
//! caller vouching `ParConfig::with_aligned_input(true)` — the mark lets
//! the kernel skip materializing per-row position lists in favour of
//! run-compressed copies. Under round-robin placement the mark is inert
//! by construction, which the leg also demonstrates. Results must be
//! byte-identical marked or not (the kernel still hashes every key), and
//! an aligned sweep must bump the `scatter_elided` counter.
//!
//! Like `agg_scale`, speedup tracks *physical cores*: on a single-core
//! container the interesting number is the partition/merge overhead.
//!
//! Flags: `--scale f` resizes the input, `--partitions n` measures one
//! fan-out against the `P = 1` baseline, `--placement m` pins one
//! placement mode for the elision leg, `--windows n` overrides the
//! iteration count, `--seed n` the data seed.

use datacell_bench::{lcg_int_bat, print_table, Args};
use datacell_kernel::algebra::AggKind;
use datacell_kernel::par::{self, AggSpec, ParConfig};
use datacell_kernel::{algebra, Bat, Column, Placement, PlacementMode};
use std::time::{Duration, Instant};

const PARTITION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn mode_name(mode: PlacementMode) -> &'static str {
    match mode {
        PlacementMode::RoundRobin => "roundrobin",
        PlacementMode::Aligned => "aligned",
    }
}

/// Sweep the SortPerm → Fetch chain over `partition_counts` for one key
/// distribution; asserts byte-identity against the `P = 1` baseline.
fn sweep_sort(label: &str, keys: &Bat, payload: &Bat, partition_counts: &[usize], iters: usize) {
    println!("{label}: |rows| = {}, {iters} iters/point", keys.len());
    let rows_per_iter = keys.len() as f64;
    let mut rows = Vec::new();
    let mut baseline: Option<(Duration, Vec<u32>, Bat)> = None;
    for &p in partition_counts {
        let cfg = ParConfig::new(p);
        // One untimed run for warm-up and the identity check.
        let perm = par::sort_perm(keys, false, &cfg).unwrap();
        let cands =
            Bat::transient(Column::Oid(perm.iter().map(|&i| keys.hseq + i as u64).collect()));
        let fetched = par::fetch(&cands, payload, &cfg).unwrap();

        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(par::sort_perm(std::hint::black_box(keys), false, &cfg).unwrap());
        }
        let sort_wall = t0.elapsed() / iters as u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(par::fetch(std::hint::black_box(&cands), payload, &cfg).unwrap());
        }
        let fetch_wall = t0.elapsed() / iters as u32;

        let (speedup, identical) = match &baseline {
            Some((base, base_perm, base_fetched)) => (
                base.as_secs_f64() / sort_wall.as_secs_f64().max(f64::EPSILON),
                *base_perm == perm && *base_fetched == fetched,
            ),
            None => (1.0, true),
        };
        assert!(identical, "P={p} produced a different permutation or fetch than sequential");
        rows.push(vec![
            p.to_string(),
            format!("{sort_wall:?}"),
            format!("{fetch_wall:?}"),
            format!("{:.2}", rows_per_iter / sort_wall.as_secs_f64() / 1.0e6),
            format!("{speedup:.2}x"),
        ]);
        if baseline.is_none() {
            baseline = Some((sort_wall, perm, fetched));
        }
    }
    print_table(&["partitions", "sort/iter", "fetch/iter", "Msorted/s", "sort speedup"], &rows);
    println!("permutation and fetched column identical across partition counts: yes\n");
}

/// Re-order rows into canonical placement order for `p` partitions, so the
/// input genuinely satisfies the aligned-input vouch.
fn align_rows(keys: &Bat, vals: &Bat, p: usize) -> (Bat, Bat) {
    let parts = Placement::new(p).scatter(&keys.tail.as_slice());
    let order: Vec<u32> = parts.into_iter().flatten().collect();
    (Bat::transient(keys.tail.gather(&order)), Bat::transient(vals.tail.gather(&order)))
}

/// Time the fused grouped aggregation with and without the aligned-input
/// mark on genuinely placement-ordered input; results must be identical.
fn sweep_elision(
    keys: &Bat,
    vals: &Bat,
    partition_counts: &[usize],
    mode: PlacementMode,
    iters: usize,
) {
    println!("scatter elision [{}]: |rows| = {}, {iters} iters/point", mode_name(mode), keys.len());
    let mut rows = Vec::new();
    let stats0 = par::stats::snapshot();
    for &p in partition_counts {
        let (akeys, avals) = align_rows(keys, vals, p);
        let specs: Vec<AggSpec> = vec![
            (AggKind::Sum, Some(&avals)),
            (AggKind::Count, None),
            (AggKind::Avg, Some(&avals)),
        ];
        let plain = ParConfig::new(p).with_placement(mode);
        let marked = plain.with_aligned_input(true);

        let base = par::grouped_agg_multi(&akeys, &specs, &plain).unwrap();
        let elided = par::grouped_agg_multi(&akeys, &specs, &marked).unwrap();
        assert_eq!(base, elided, "P={p} ({}) aligned-input mark changed results", mode_name(mode));

        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(par::grouped_agg_multi(&akeys, &specs, &plain).unwrap());
        }
        let plain_wall = t0.elapsed() / iters as u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(par::grouped_agg_multi(&akeys, &specs, &marked).unwrap());
        }
        let marked_wall = t0.elapsed() / iters as u32;
        rows.push(vec![
            p.to_string(),
            format!("{plain_wall:?}"),
            format!("{marked_wall:?}"),
            format!(
                "{:.2}x",
                plain_wall.as_secs_f64() / marked_wall.as_secs_f64().max(f64::EPSILON)
            ),
        ]);
    }
    print_table(&["partitions", "unmarked/iter", "marked/iter", "elision speedup"], &rows);
    let delta = par::stats::snapshot().delta(&stats0);
    println!("scatter elisions this sweep: +{}", delta.scatter_elided);
    let ran_parallel = partition_counts.iter().any(|&p| p > 1);
    match mode {
        PlacementMode::Aligned if ran_parallel => assert!(
            delta.scatter_elided > 0,
            "aligned sweep with the input mark never elided a scatter"
        ),
        PlacementMode::RoundRobin => assert_eq!(
            delta.scatter_elided, 0,
            "round-robin placement must never honour the aligned-input mark"
        ),
        _ => {}
    }
    println!();
}

fn main() {
    let args = Args::parse();
    let n = args.sized(1_000_000, 10_000);
    let iters = args.windows.unwrap_or(5).max(1);
    let sweep_list: Vec<usize> = match args.partitions {
        Some(p) if p > 1 => vec![1, p],
        Some(_) => vec![1],
        None => PARTITION_COUNTS.to_vec(),
    };
    let modes: Vec<PlacementMode> = match args.placement {
        Some(m) => vec![m],
        None => vec![PlacementMode::RoundRobin, PlacementMode::Aligned],
    };

    let stats0 = par::stats::snapshot();

    let payload = lcg_int_bat(n, 1_000_000, args.seed + 7);
    let dense = lcg_int_bat(n, n as i64, args.seed);
    sweep_sort("dense keys (near-unique)", &dense, &payload, &sweep_list, iters);

    let skewed = lcg_int_bat(n, 100, args.seed + 1);
    sweep_sort(
        "skewed keys (100 distinct, duplicate-heavy)",
        &skewed,
        &payload,
        &sweep_list,
        iters,
    );

    let presorted = algebra::sort(&dense).unwrap();
    sweep_sort("presorted keys (merge-dominated)", &presorted, &payload, &sweep_list, iters);

    let agg_keys = lcg_int_bat(n, 1_000, args.seed + 2);
    let agg_vals = lcg_int_bat(n, 1_000_000, args.seed + 3);
    for &m in &modes {
        sweep_elision(&agg_keys, &agg_vals, &sweep_list, m, iters);
    }

    let delta = par::stats::snapshot().delta(&stats0);
    println!(
        "kernel stats: fetch calls +{} (parallel +{}), sort calls +{} (parallel +{}), \
         scatters elided +{}",
        delta.fetch_calls,
        delta.fetch_par_calls,
        delta.sort_calls,
        delta.sort_par_calls,
        delta.scatter_elided
    );
    println!(
        "shape check: sort speedup tracks physical cores (≈1x minus run-sort/merge \
         overhead on a single-core container);\nP=1 dispatches to the literal \
         sequential algebra::sort_perm / algebra::fetch;\nthe aligned-input mark \
         trades per-row scatter position lists for run-compressed bulk copies and \
         can never change results — the kernel still hashes every key."
    );
}
