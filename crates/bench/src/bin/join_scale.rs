//! `join_scale` — throughput vs. partition fan-out for the `kernel::par`
//! radix hash join on the ROADMAP's 100k×100k hot-path workload.
//!
//! For each partition count `P` the harness joins the same two BATs
//! (`par::hashjoin`); `P = 1` dispatches to the literal sequential
//! `algebra::hashjoin` code path, so it *is* the sequential baseline. The
//! harness asserts that every `P` produces the same pair set (sorted
//! comparison — the canonical order at `P > 1` interleaves partitions)
//! and prints wall/iter, input rows/s, and speedup per `P`.
//!
//! Like the scheduler's CPU-bound table, speedup tracks *physical cores*:
//! on a single-core container the interesting number is the partitioning
//! overhead; on multi-core hardware ≥2 partitions should beat sequential
//! by ≥1.5x on this workload.
//!
//! Flags: `--scale f` resizes the inputs, `--partitions n` measures one
//! fan-out instead of the default sweep, `--windows n` overrides the
//! iteration count, `--seed n` the data seed.

use datacell_bench::{lcg_int_bat, lcg_str_bat, print_table, Args};
use datacell_kernel::par::{self, ParConfig};
use datacell_kernel::Bat;
use std::time::{Duration, Instant};

const PARTITION_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Sorted pair set of one join result (for the cross-`P` identity check).
fn pair_set(lo: &Bat, ro: &Bat) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = lo
        .tail
        .as_oid()
        .unwrap()
        .iter()
        .zip(ro.tail.as_oid().unwrap())
        .map(|(&a, &b)| (a, b))
        .collect();
    v.sort_unstable();
    v
}

fn sweep(label: &str, l: &Bat, r: &Bat, partition_counts: &[usize], iters: usize) {
    println!("{label}: |L| = {}, |R| = {}, {iters} iters/point", l.len(), r.len());
    let rows_per_iter = (l.len() + r.len()) as f64;
    let mut rows = Vec::new();
    let mut baseline: Option<(Duration, Vec<(u64, u64)>)> = None;
    for &p in partition_counts {
        let cfg = ParConfig::new(p);
        // One untimed run for warm-up and the identity check.
        let (lo, ro) = par::hashjoin(l, r, &cfg).unwrap();
        let pairs = pair_set(&lo, &ro);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(par::hashjoin(std::hint::black_box(l), r, &cfg).unwrap());
        }
        let wall = t0.elapsed() / iters as u32;
        let (speedup, identical) = match &baseline {
            Some((base, base_pairs)) => {
                (base.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON), *base_pairs == pairs)
            }
            None => (1.0, true),
        };
        assert!(identical, "P={p} produced a different pair set than sequential");
        rows.push(vec![
            p.to_string(),
            format!("{wall:?}"),
            format!("{:.2}", rows_per_iter / wall.as_secs_f64() / 1.0e6),
            pairs.len().to_string(),
            format!("{speedup:.2}x"),
        ]);
        if baseline.is_none() {
            baseline = Some((wall, pairs));
        }
    }
    print_table(&["partitions", "wall/iter", "Mrows/s", "pairs", "speedup"], &rows);
    println!("pair sets identical across partition counts: yes\n");
}

fn main() {
    let args = Args::parse();
    let n = args.sized(100_000, 1_000);
    let domain = (n as i64 / 10).max(10);
    let iters = args.windows.unwrap_or(10).max(1);
    // A pinned fan-out is still measured against the P=1 baseline.
    let sweep_list: Vec<usize> = match args.partitions {
        Some(p) if p > 1 => vec![1, p],
        Some(_) => vec![1],
        None => PARTITION_COUNTS.to_vec(),
    };

    let l = lcg_int_bat(n, domain, args.seed);
    let r = lcg_int_bat(n, domain, args.seed + 1);
    sweep("int keys", &l, &r, &sweep_list, iters);

    let ls = lcg_str_bat(n, domain, args.seed);
    let rs = lcg_str_bat(n, domain, args.seed + 1);
    sweep("string keys", &ls, &rs, &sweep_list, iters);

    println!(
        "shape check: speedup tracks physical cores (≈1x minus partitioning \
         overhead on a single-core container);\nP=1 dispatches to the \
         sequential algebra::hashjoin code path."
    );
}
