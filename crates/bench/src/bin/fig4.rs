//! Figure 4 — Basic Performance: per-window response time, DataCell vs
//! DataCellR, for (a) single-stream Q1 and (b) multi-stream Q2.
//!
//! Paper parameters: Q1 |W| = 1.024e7, |w| = 2e4 (512 basic windows), 20%
//! selectivity; Q2 |W| = 1.024e5, |w| = 1600 (64 basic windows); 20
//! windows. Defaults here are 10× smaller for Q1 (pass `--paper` for full
//! size); ratios (n, selectivity) are preserved.

use datacell_bench::{fmt_duration, print_table, run_q1, run_q2, Args, Mode, Q1Config, Q2Config};

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(20);

    // -- (a) single-stream Q1 -------------------------------------------
    let (w1, s1) = if args.paper {
        (10_240_000, 20_000)
    } else {
        (args.sized(1_024_000, 5_120), args.sized(2_000, 10))
    };
    let q1 = Q1Config { window: w1, step: s1, selectivity: 0.2, windows, seed: args.seed };
    println!(
        "Figure 4(a): Q1 response time per window  (|W|={w1}, |w|={s1}, n={}, sel=20%)",
        w1 / s1
    );
    let inc = run_q1(&Mode::DataCell, &q1);
    let re = run_q1(&Mode::DataCellR, &q1);
    let rows: Vec<Vec<String>> = (0..windows)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                fmt_duration(re.per_window[i].total),
                fmt_duration(inc.per_window[i].total),
            ]
        })
        .collect();
    print_table(&["window", "DataCellR", "DataCell"], &rows);

    // -- (b) multi-stream Q2 ---------------------------------------------
    let (w2, s2) =
        if args.paper { (102_400, 1_600) } else { (args.sized(51_200, 640), args.sized(800, 10)) };
    let q2 = Q2Config { window: w2, step: s2, key_domain: 10_000, windows, seed: args.seed };
    println!("\nFigure 4(b): Q2 response time per window  (|W|={w2}, |w|={s2}, n={})", w2 / s2);
    let inc = run_q2(&Mode::DataCell, &q2);
    let re = run_q2(&Mode::DataCellR, &q2);
    let rows: Vec<Vec<String>> = (0..windows)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                fmt_duration(re.per_window[i].total),
                fmt_duration(inc.per_window[i].total),
            ]
        })
        .collect();
    print_table(&["window", "DataCellR", "DataCell"], &rows);

    println!(
        "\nshape check: after the first window, DataCell should be far below \
         DataCellR\n(first window: both must process the full |W|)."
    );
}
