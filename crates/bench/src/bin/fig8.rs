//! Figure 8 — Query plan adaptation: the self-adapting m-chunk controller.
//!
//! Paper: Q1, the controller doubles the chunk count m every five sliding
//! steps while the response time improves; at m = 1024 performance
//! degrades and DataCell resorts to m = 512. The y-axis is the response
//! time from the arrival of a basic window's *last tuple* to the result —
//! which is exactly what the chunked factory's slide metric measures.

use datacell_bench::{fmt_duration, print_table, run_q1, Args, Mode, Q1Config};

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(60);
    let (w, s) = if args.paper {
        (10_240_000, 20_000)
    } else {
        (args.sized(1_024_000, 16_384), args.sized(4_000, 64))
    };
    println!("Figure 8: Q1 adaptive chunking  (|W|={w}, |w|={s}, doubling m every 5 slides)");

    // Baselines for reference lines.
    let cfg = Q1Config { window: w, step: s, selectivity: 0.2, windows, seed: args.seed };
    let plain = run_q1(&Mode::DataCell, &cfg);
    let reeval = run_q1(&Mode::DataCellR, &cfg);
    let adaptive = run_q1(&Mode::Adaptive { max_m: 1024, probe_every: 5 }, &cfg);

    let rows: Vec<Vec<String>> = (0..windows.min(adaptive.per_window.len()))
        .map(|i| {
            vec![
                (i + 1).to_string(),
                fmt_duration(reeval.per_window[i].total),
                fmt_duration(plain.per_window[i].total),
                fmt_duration(adaptive.per_window[i].total),
            ]
        })
        .collect();
    print_table(&["window", "DataCellR", "DataCell(m=1)", "DataCell(adaptive)"], &rows);

    println!("\nfixed-m sweep (mean steady response):");
    let mut rows = Vec::new();
    for m in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        if s % m != 0 {
            continue;
        }
        let out = run_q1(&Mode::Chunked(m), &cfg);
        let steady: std::time::Duration =
            out.per_window[1..].iter().map(|x| x.total).sum::<std::time::Duration>()
                / (out.per_window.len().max(2) - 1) as u32;
        rows.push(vec![m.to_string(), fmt_duration(steady)]);
    }
    print_table(&["m", "response"], &rows);

    println!(
        "\nshape check: response time steps down as the controller doubles m, \
         then settles\n(the paper reverts at m=1024 to m=512; the revert point \
         depends on hardware)."
    );
}
