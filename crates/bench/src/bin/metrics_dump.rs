//! `metrics_dump` — drive a sharded aggregation workload through all
//! three parallelism axes (4 scheduler workers × 4 basket shards × 4
//! kernel partitions by default) and print the engine's full telemetry
//! snapshot in Prometheus text format, followed by a human summary:
//! per-query slide-latency quantiles, the paper's Fig. 7 main-plan vs.
//! merge split, per-worker fire counts, per-shard staged depth and the
//! kernel's concat-vs-regroup merge ratio.
//!
//! The dump re-parses its own exposition with `telemetry::parse_text`
//! before printing anything, so every run doubles as a format
//! conformance check — CI runs this bin and fails on a parse error or
//! on a zero where the workload must have left a signal.
//!
//! Flags: `--scale f` resizes the per-round batch, `--shards n` /
//! `--partitions n` / `--windows n` (rounds) override the axes;
//! `DATACELL_WORKERS` overrides the worker count (default 4 here, not
//! the engine's usual 1). `DATACELL_TELEMETRY=0` kills the timed
//! signals; counters and gauges stay on.

use datacell_bench::Args;
use datacell_core::scheduler::parse_workers;
use datacell_core::Engine;
use datacell_kernel::{Column, DataType};
use datacell_telemetry::{parse_text, render_text, SampleValue};

/// Deterministic key/value batch: keys from a small domain (heavy
/// groups), values from the LCG stream.
fn batch(rows: usize, seed: &mut u64) -> Vec<Column> {
    let mut ks = Vec::with_capacity(rows);
    let mut vs = Vec::with_capacity(rows);
    for _ in 0..rows {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ks.push(((*seed >> 33) % 16) as i64);
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        vs.push(((*seed >> 33) % 1_000_000) as i64);
    }
    vec![Column::Int(ks), Column::Int(vs)]
}

fn main() {
    let args = Args::parse();
    let workers = parse_workers(std::env::var("DATACELL_WORKERS").ok().as_deref()).unwrap_or(4);
    let shards = args.shards.unwrap_or(4);
    let partitions = args.partitions.unwrap_or(4);
    let rounds = args.windows.unwrap_or(8).max(1);
    let rows_per_shard = args.sized(256, 32);

    let mut e = Engine::with_workers(workers);
    e.set_basket_shards(shards);
    e.set_partitions(partitions);
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let queries = [
        e.register_sql("SELECT k, sum(v), avg(v) FROM s GROUP BY k WINDOW SIZE 1024 SLIDE 512")
            .unwrap(),
        e.register_sql("SELECT sum(v) FROM s WHERE k > 3 WINDOW SIZE 512 SLIDE 256").unwrap(),
        e.register_sql("SELECT k, v FROM s ORDER BY v DESC LIMIT 10 WINDOW SIZE 512 SLIDE 256")
            .unwrap(),
    ];

    // N rounds of "one batch per staging shard, then drain" — the
    // steady-state loop of `shards` receptors feeding standing queries.
    let b = e.basket("s").unwrap();
    let mut seed = args.seed.wrapping_add(1);
    for _ in 0..rounds {
        for shard in 0..shards {
            b.append_shard(shard, &batch(rows_per_shard, &mut seed), 0).unwrap();
        }
        e.run_until_idle().unwrap();
    }
    let slides: usize = queries.iter().map(|&q| e.drain_results(q).unwrap().len()).sum();
    assert!(slides > 0, "workload produced no window slides");

    // Leave a tail staged with no drain after it, like a receptor caught
    // mid-burst: the staged-depth gauges in the dump must be nonzero.
    for shard in 0..shards {
        b.append_shard(shard, &batch(8, &mut seed), 0).unwrap();
    }

    let snap = e.telemetry_snapshot();
    let text = render_text(&snap);
    let parsed = parse_text(&text).expect("exposition must parse as Prometheus text");
    println!("{text}");

    // -- human summary + nonzero acceptance checks -------------------------

    println!("# == summary ({workers} workers x {shards} shards x {partitions} partitions, {rounds} rounds, {slides} slides) ==");
    let fam = snap.family("datacell_query_slide_seconds").expect("query latency family");
    for s in &fam.samples {
        let SampleValue::Histogram(h) = &s.value else { continue };
        let query = s.labels.first().map_or("?", |(_, v)| v.as_str());
        let lbl = [("query", query)];
        let main_plan = parsed.get("datacell_query_main_plan_seconds_total", &lbl).unwrap_or(0.0);
        let merge = parsed.get("datacell_query_merge_seconds_total", &lbl).unwrap_or(0.0);
        println!(
            "# {query}: {} slides, p50 {:?}, p95 {:?}, p99 {:?}, main-plan {:.3}ms, merge {:.3}ms",
            h.count,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            main_plan * 1e3,
            merge * 1e3,
        );
        assert!(h.count > 0, "query {query} recorded no slide latencies");
    }

    let fires: Vec<f64> = parsed
        .samples
        .iter()
        .filter(|s| s.name == "datacell_scheduler_worker_fires_total")
        .map(|s| s.value)
        .collect();
    println!("# worker fires: {fires:?}");
    if workers > 1 {
        assert!(!fires.is_empty(), "pooled run exposed no per-worker series");
        assert!(fires.iter().sum::<f64>() > 0.0, "pool workers never fired a factory");
    }

    let staged = parsed.total("datacell_basket_staged_rows");
    let imbalance = parsed.total("datacell_basket_shard_imbalance_ratio");
    println!("# staged rows (tail burst): {staged}, shard imbalance ratio: {imbalance:.3}");
    assert!(staged > 0.0, "staged tail burst not visible in the dump");

    let concat = parsed.total("datacell_kernel_merge_concat_total");
    let regroup = parsed.total("datacell_kernel_merge_regroup_total");
    println!("# kernel merges: concat fast path {concat}, re-group fallback {regroup}");
    if partitions > 1 {
        assert!(concat + regroup > 0.0, "partitioned run never merged aggregation partials");
    }

    // The ORDER BY query exercises SortPerm + Fetch every slide, so the
    // morsel fetch/sort families must carry a signal (and the parallel
    // legs must fire whenever the axis asks for more than one partition).
    let fetches = parsed.total("datacell_kernel_fetch_calls_total");
    let sorts = parsed.total("datacell_kernel_sort_calls_total");
    let par_fetches = parsed.total("datacell_kernel_fetch_par_calls_total");
    let par_sorts = parsed.total("datacell_kernel_sort_par_calls_total");
    let elided = parsed.total("datacell_kernel_scatter_elided_total");
    println!(
        "# kernel fetch/sort: {fetches} fetches ({par_fetches} parallel), \
         {sorts} sorts ({par_sorts} parallel), {elided} scatters elided"
    );
    assert!(fetches > 0.0, "ORDER BY workload recorded no fetch calls");
    assert!(sorts > 0.0, "ORDER BY workload recorded no sort calls");
    if partitions > 1 {
        assert!(par_sorts > 0.0, "partitioned run never took the parallel sort path");
    }
    println!("# metrics_dump: exposition parsed clean ({} families)", parsed.families.len());
}
