//! Figure 9 — Against a specialized stream engine: total time to consume
//! 100 windows of Q2, DataCell vs DataCellR vs SystemX (simulated), as the
//! window size grows.
//!
//! Paper: |W| ∈ {1e3 .. 1e4} (a, small) and {2.5e4 .. 1e5} (b, large),
//! 64 basic windows per window, ~2600 .. ~260000 tuples fed per stream.

use datacell_bench::{fmt_duration, print_table, run_q2, run_sysx_q2, Args, Mode, Q2Config};

fn main() {
    let args = Args::parse();
    let windows = args.windows.unwrap_or(100);

    let small: Vec<usize> = vec![1_024, 2_048, 5_120, 10_240];
    let large: Vec<usize> = vec![25_600, 51_200, 76_800, 102_400];

    for (name, sizes) in [("(a) small windows", small), ("(b) big windows", large)] {
        println!("Figure 9{name}: Q2 total time for {windows} windows, n = 64 basic windows");
        let mut rows = Vec::new();
        for w in sizes {
            let w = if args.paper { w } else { args.sized(w, 640) };
            let step = (w / 64).max(1);
            let w = step * 64;
            let cfg = Q2Config { window: w, step, key_domain: 10_000, windows, seed: args.seed };
            let sx = run_sysx_q2(&cfg);
            let re = run_q2(&Mode::DataCellR, &cfg);
            let inc = run_q2(&Mode::DataCell, &cfg);
            rows.push(vec![
                w.to_string(),
                fmt_duration(sx.wall),
                fmt_duration(re.wall),
                fmt_duration(inc.wall),
            ]);
        }
        print_table(&["|W|", "SystemX", "DataCellR", "DataCell"], &rows);
        println!();
    }

    println!(
        "shape check: tiny windows — all three are comparable (SystemX/DataCellR \
         may lead);\nlarge windows — DataCell scales best, SystemX falls behind \
         both (per-tuple costs\ncannot amortize)."
    );
}
