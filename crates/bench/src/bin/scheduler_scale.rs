//! `scheduler_scale` — throughput vs. scheduler worker count on the
//! multi-query workload: N independent fig7-shape standing queries (one
//! stream each), the whole backlog pre-filled, one `run_until_idle` drain
//! timed per worker count.
//!
//! Two tables:
//!
//! * **CPU-bound** — the incremental Q1 plan (select + group-by + sum over
//!   basic windows). Scales with *physical cores*: on a single-core
//!   container the parallel drain can only match the sequential one (its
//!   overhead is the interesting number there).
//! * **Blocking-fire** (`--fire-cost-us`, default 200µs) — each fire pays
//!   a simulated receptor/emitter hop before computing. This measures what
//!   the Petri-net pool is for: overlapping transitions that *wait*, which
//!   speeds up even on one core.
//!
//! Every worker count must produce identical per-query results; the
//! harness asserts it and prints the verdict. One worker dispatches to the
//! literal sequential scheduler code path, so its results are the
//! sequential baseline by construction.

use datacell_bench::{print_table, run_scheduler_scale, Args, ScaleConfig, ScaleOutcome};
use std::time::Duration;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn sweep(label: &str, cfg: &ScaleConfig) {
    println!(
        "{label}: {} queries, |W| = {}, |w| = {}, {} windows/query, fire cost {:?}",
        cfg.queries, cfg.window, cfg.step, cfg.windows, cfg.fire_cost
    );
    let mut rows = Vec::new();
    let mut baseline: Option<ScaleOutcome> = None;
    let mut identical = true;
    for &workers in &WORKER_COUNTS {
        let out = run_scheduler_scale(workers, cfg);
        let speedup = baseline
            .as_ref()
            .map_or(1.0, |b| b.wall.as_secs_f64() / out.wall.as_secs_f64().max(f64::EPSILON));
        if let Some(b) = &baseline {
            identical &= b.results == out.results;
        }
        rows.push(vec![
            workers.to_string(),
            format!("{:?}", out.wall),
            out.emissions.to_string(),
            format!("{:.0}", out.throughput()),
            format!("{speedup:.2}x"),
        ]);
        if baseline.is_none() {
            baseline = Some(out);
        }
    }
    print_table(&["workers", "wall", "emissions", "emissions/s", "speedup"], &rows);
    assert!(identical, "worker counts produced diverging results");
    println!("results identical across worker counts: yes\n");
}

fn main() {
    let args = Args::parse();
    let queries = 8;
    let windows = args.windows.unwrap_or(24);

    // -- CPU-bound: the fig7 incremental plan fanned out over queries ----
    let window = args.sized(8_192, 1_024);
    let cpu = ScaleConfig {
        queries,
        window,
        step: window / 8,
        windows,
        seed: args.seed,
        fire_cost: Duration::ZERO,
    };
    sweep("CPU-bound (incremental Q1 plan)", &cpu);

    // -- Blocking-fire: scheduler overlap of waiting transitions ---------
    let fire_cost = Duration::from_micros(args.fire_cost_us.unwrap_or(200));
    let step = args.sized(1_024, 128);
    let blocking = ScaleConfig {
        queries,
        window: step, // tumbling: one fire per step keeps counts simple
        step,
        windows,
        seed: args.seed,
        fire_cost,
    };
    sweep("Blocking-fire (simulated receptor/emitter hop)", &blocking);

    println!(
        "shape check: blocking-fire speedup tracks the worker count until \
         queries/workers < 1;\nCPU-bound speedup tracks physical cores \
         (≈1x on a single-core container)."
    );
}
