//! Figure 6 — (a) varying window size at a fixed 512 basic windows;
//! (b) landmark windows (Q3): response time over 40 successive windows.
//!
//! Paper: (a) |W| ∈ {1e6, 1e7, 1e8}, n = 512 invariant, sel 20%;
//! (b) |w| = 2.5e6, 20% selectivity, 40 windows.

use datacell_bench::{
    fmt_duration, print_table, run_q1, run_q3_landmark, Args, Mode, Q1Config, Q3Config,
};
use std::time::Duration;

fn mean_steady(per_window: &[datacell_core::SlideMetrics]) -> Duration {
    let steady = &per_window[1.min(per_window.len().saturating_sub(1))..];
    if steady.is_empty() {
        return Duration::ZERO;
    }
    steady.iter().map(|m| m.total).sum::<Duration>() / steady.len() as u32
}

fn main() {
    let args = Args::parse();

    // -- (a) window-size sweep, n fixed at 512 ---------------------------
    let sizes: Vec<usize> = if args.paper {
        vec![1_000_000, 10_000_000, 100_000_000]
    } else {
        vec![
            args.sized(102_400, 51_200),
            args.sized(1_024_000, 102_400),
            args.sized(4_096_000, 204_800),
        ]
    };
    println!("Figure 6(a): Q1, vary window size, n = 512 fixed, sel = 20%");
    let mut rows = Vec::new();
    for w in sizes {
        let step = (w / 512).max(1);
        let w = step * 512; // keep divisibility
        let cfg = Q1Config {
            window: w,
            step,
            selectivity: 0.2,
            windows: args.windows.unwrap_or(4),
            seed: args.seed,
        };
        let re = run_q1(&Mode::DataCellR, &cfg);
        let inc = run_q1(&Mode::DataCell, &cfg);
        rows.push(vec![
            format!("{w}"),
            fmt_duration(mean_steady(&re.per_window)),
            fmt_duration(mean_steady(&inc.per_window)),
        ]);
    }
    print_table(&["|W| (tuples)", "DataCellR", "DataCell"], &rows);

    // -- (b) landmark Q3 ---------------------------------------------------
    let step = if args.paper { 2_500_000 } else { args.sized(100_000, 1_000) };
    let windows = args.windows.unwrap_or(40);
    println!("\nFigure 6(b): Q3 landmark, |w| = {step}, sel = 20%, {windows} windows");
    let cfg = Q3Config { step, selectivity: 0.2, windows, seed: args.seed };
    let re = run_q3_landmark(&Mode::DataCellR, &cfg);
    let inc = run_q3_landmark(&Mode::DataCell, &cfg);
    let rows: Vec<Vec<String>> = (0..windows)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                fmt_duration(re.per_window[i].total),
                fmt_duration(inc.per_window[i].total),
            ]
        })
        .collect();
    print_table(&["window", "DataCellR", "DataCell"], &rows);

    println!(
        "\nshape check: (a) DataCell's advantage grows with |W| (>50% better);\n\
         (b) DataCellR grows linearly with the landmark window; DataCell stays flat."
    );
}
