//! `agg_scale` — throughput vs. partition fan-out for the fused
//! `kernel::par` grouped aggregation (the `GroupAgg` MAL node's hot
//! path): one grouping pass over N rows × K distinct keys feeding
//! sum + count + avg, per partition count × placement mode.
//!
//! For each `P` the harness runs `par::grouped_agg_multi` over the same
//! key/value BATs; `P = 1` computes a single partial and finalizes it —
//! the literal sequential group-then-aggregate chain, so it *is* the
//! sequential baseline. The sweep repeats per placement mode: round
//! robin chunks rows and re-groups the partials at merge; aligned
//! scatters rows by the canonical key-hash (`kernel::hash::Placement`)
//! so every partial owns disjoint keys and the merge is pure
//! concatenation. The harness asserts every `P` × mode produces
//! byte-identical columns, prints wall/iter, input rows/s and speedup
//! per point, and reports the `par::stats` grouped-agg and merge-path
//! counters — an aligned sweep must take the concat fast path only
//! (fallback delta 0), so a run doubles as proof of the merge-free path.
//!
//! Like `join_scale`, speedup tracks *physical cores*: on a single-core
//! container the interesting number is the partial/merge overhead; on
//! multi-core hardware ≥2 partitions should beat sequential on this
//! workload.
//!
//! Flags: `--scale f` resizes the input, `--partitions n` measures one
//! fan-out against the `P = 1` baseline, `--placement m` pins one
//! placement mode instead of sweeping both, `--windows n` overrides the
//! iteration count, `--seed n` the data seed.

use datacell_bench::{lcg_int_bat, print_table, Args};
use datacell_kernel::algebra::AggKind;
use datacell_kernel::par::{self, AggSpec, ParConfig};
use datacell_kernel::{Bat, Column, PlacementMode};
use std::time::{Duration, Instant};

const PARTITION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn mode_name(mode: PlacementMode) -> &'static str {
    match mode {
        PlacementMode::RoundRobin => "roundrobin",
        PlacementMode::Aligned => "aligned",
    }
}

/// Sweep one workload across `partition_counts` under `mode`; returns the
/// (P-invariant) aggregate result for cross-mode identity checks.
fn sweep(
    label: &str,
    keys: &Bat,
    vals: &Bat,
    partition_counts: &[usize],
    mode: PlacementMode,
    iters: usize,
) -> (Column, Vec<Column>) {
    println!("{label} [{}]: |rows| = {}, {iters} iters/point", mode_name(mode), keys.len());
    let rows_per_iter = keys.len() as f64;
    let mut rows = Vec::new();
    let mut baseline: Option<(Duration, (Column, Vec<Column>))> = None;
    let stats0 = par::stats::snapshot();
    for &p in partition_counts {
        let cfg = ParConfig::new(p).with_placement(mode);
        let specs: Vec<AggSpec> =
            vec![(AggKind::Sum, Some(vals)), (AggKind::Count, None), (AggKind::Avg, Some(vals))];
        // One untimed run for warm-up and the identity check.
        let result = par::grouped_agg_multi(keys, &specs, &cfg).unwrap();
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(
                par::grouped_agg_multi(std::hint::black_box(keys), &specs, &cfg).unwrap(),
            );
        }
        let wall = t0.elapsed() / iters as u32;
        let (speedup, identical) = match &baseline {
            Some((base, base_result)) => {
                (base.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON), *base_result == result)
            }
            None => (1.0, true),
        };
        assert!(
            identical,
            "P={p} ({}) produced different aggregates than sequential",
            mode_name(mode)
        );
        rows.push(vec![
            p.to_string(),
            format!("{wall:?}"),
            format!("{:.2}", rows_per_iter / wall.as_secs_f64() / 1.0e6),
            result.0.len().to_string(),
            format!("{speedup:.2}x"),
        ]);
        if baseline.is_none() {
            baseline = Some((wall, result));
        }
    }
    print_table(&["partitions", "wall/iter", "Mrows/s", "groups", "speedup"], &rows);
    let delta = par::stats::snapshot().delta(&stats0);
    let (concat, fallback) = (delta.merge_concat_fast_path, delta.merge_regroup_fallback);
    println!("merge paths: concat fast path +{concat}, re-group fallback +{fallback}");
    if mode == PlacementMode::Aligned {
        // The tentpole's acceptance check: aligned partials own disjoint
        // keys, so the merge never falls back to re-grouping.
        let ran_parallel = partition_counts.iter().any(|&p| p > 1);
        assert!(!ran_parallel || concat > 0, "aligned sweep never took the concat fast path");
        assert_eq!(fallback, 0, "aligned sweep fell back to merge-by-regroup");
    }
    println!("aggregate columns identical across partition counts: yes\n");
    baseline.expect("at least one partition count").1
}

fn main() {
    let args = Args::parse();
    let n = args.sized(1_000_000, 10_000);
    let iters = args.windows.unwrap_or(10).max(1);
    let sweep_list: Vec<usize> = match args.partitions {
        Some(p) if p > 1 => vec![1, p],
        Some(_) => vec![1],
        None => PARTITION_COUNTS.to_vec(),
    };
    let modes: Vec<PlacementMode> = match args.placement {
        Some(m) => vec![m],
        None => vec![PlacementMode::RoundRobin, PlacementMode::Aligned],
    };

    let stats0 = par::stats::snapshot();

    // Few heavy groups: the per-morsel hash tables stay tiny, the
    // aggregation loop dominates.
    let keys = lcg_int_bat(n, 100, args.seed);
    let vals = lcg_int_bat(n, 1_000_000, args.seed + 1);
    let per_mode: Vec<_> = modes
        .iter()
        .map(|&m| sweep("100 keys (few heavy groups)", &keys, &vals, &sweep_list, m, iters))
        .collect();
    assert!(per_mode.windows(2).all(|w| w[0] == w[1]), "placement modes diverged");

    // Many light groups: grouping (hashing) dominates, merge cost —
    // re-group vs. concat — is visible.
    let domain = (n as i64 / 10).max(100);
    let keys = lcg_int_bat(n, domain, args.seed + 2);
    let vals = lcg_int_bat(n, 1_000_000, args.seed + 3);
    let label = format!("{domain} keys (many light groups)");
    let per_mode: Vec<_> =
        modes.iter().map(|&m| sweep(&label, &keys, &vals, &sweep_list, m, iters)).collect();
    assert!(per_mode.windows(2).all(|w| w[0] == w[1]), "placement modes diverged");

    let delta = par::stats::snapshot().delta(&stats0);
    println!(
        "kernel stats: grouped_agg calls +{}, parallel fan-outs +{}",
        delta.grouped_agg_calls, delta.grouped_agg_par_calls
    );
    println!(
        "shape check: speedup tracks physical cores (≈1x minus partial/merge \
         overhead on a single-core container);\nP=1 computes one partial and \
         finalizes it — the sequential group-then-aggregate chain;\naligned \
         placement trades a hash scatter before the morsels for a merge-free \
         concat after them."
    );
}
