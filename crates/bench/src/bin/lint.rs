//! Repo-wide static-analysis harness: `cargo run -p datacell-bench --bin lint`.
//!
//! Four passes, all of which must come back clean for the binary to exit 0:
//!
//! 1. **Plan corpus verification** — every query in
//!    [`datacell_sql::corpus`] is parsed, optimized, compiled, verified with
//!    [`datacell_plan::verify_all`] against the corpus stream schemas, run
//!    through the incremental rewriter under `checked_pass`, and the
//!    resulting [`IncrementalPlan`] re-checked with
//!    [`datacell_core::verify_incremental`]. Each query is also registered
//!    on a live [`Engine`] with verification forced on, so the
//!    registration-time typed analyzer sees it too.
//! 2. **Stray-unwrap scan** — library crates (kernel, basket, plan, core,
//!    sql, sysx) may not call `.unwrap()` outside `#[cfg(test)]` modules.
//!    Error paths must flow through the crate error types; a deliberate
//!    exception carries a `// lint: allow-unwrap` marker on the same line.
//! 3. **Lock-discipline audit** — the concurrency hot spots
//!    (`basket::sharded`, `kernel::par`, `core::scheduler`) are held to a
//!    textual locking discipline: scoped fork-join only (no
//!    `thread::spawn` outside tests), no shared-state locks at all inside
//!    `kernel::par`, no lock guard created in an `if let`/`while let`
//!    scrutinee (the guard silently lives for the whole body), no
//!    second lock acquired while a `Mutex` guard is live (the only
//!    sanctioned nesting is the shard-table `RwLock` wrapping one shard
//!    `Mutex` at a time), and no lock acquired inside a
//!    `thread::scope` fan-out block — scoped workers must own their
//!    data outright (the parallel seal collects staged segments
//!    *before* spawning its stitchers for exactly this reason).
//! 4. **Exposition conformance** — a live engine runs a small
//!    three-axis workload, its telemetry snapshot is rendered to
//!    Prometheus text and re-parsed with the strict
//!    `datacell_telemetry::parse_text` validator, and every exposed
//!    family must carry help text (a counter registered without help is
//!    a finding, not a style nit: the help line is the only
//!    documentation an operator's scrape ever sees).

use datacell_core::{rewrite, verify_incremental, Engine};
use datacell_kernel::{Column, DataType};
use datacell_plan::verify::{NoSchema, SchemaOverlay};
use datacell_plan::{compile, optimize, verify_all};
use datacell_sql::{corpus, corpus_streams, parse};
use datacell_telemetry::{parse_text, render_text};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace layout").to_owned()
}

/// One failed check, with enough location to act on.
struct Finding {
    pass: &'static str,
    site: String,
    message: String,
}

impl Finding {
    fn new(pass: &'static str, site: impl Into<String>, message: impl Into<String>) -> Finding {
        Finding { pass, site: site.into(), message: message.into() }
    }
}

fn main() {
    // Force every gated verifier on, release build or not: compile/exec
    // pre-checks, `checked_pass` around rewriter passes, and the
    // incremental-safety check all key off this variable.
    std::env::set_var("DATACELL_VERIFY", "1");

    let mut findings = Vec::new();
    let n_queries = lint_corpus(&mut findings);
    let n_files = lint_unwraps(&mut findings);
    let n_audited = lint_locks(&mut findings);
    let n_families = lint_exposition(&mut findings);

    println!(
        "lint: {n_queries} corpus queries verified, {n_files} library files scanned for unwrap, \
         {n_audited} concurrency files audited, {n_families} telemetry families checked"
    );
    if findings.is_empty() {
        println!("lint: clean");
        return;
    }
    for f in &findings {
        eprintln!("lint[{}] {}: {}", f.pass, f.site, f.message);
    }
    eprintln!("lint: {} finding(s)", findings.len());
    std::process::exit(1);
}

// ---------------------------------------------------------------------------
// Pass 1: plan corpus verification.
// ---------------------------------------------------------------------------

fn lint_corpus(findings: &mut Vec<Finding>) -> usize {
    let streams = corpus_streams();
    let mut engine = Engine::new();
    engine.set_verify(true);
    for (name, schema) in &streams {
        engine.create_stream(name, schema).expect("corpus stream registration");
    }

    let entries = corpus();
    for (name, sql) in &entries {
        // The standalone pipeline first: parse -> optimize -> compile ->
        // verify_all with the corpus schemas, reporting *every* diagnostic
        // (engine registration would stop at the first).
        let q = match parse(sql) {
            Ok(q) => q,
            Err(e) => {
                findings.push(Finding::new("corpus", *name, format!("parse failed: {e}")));
                continue;
            }
        };
        let lp = optimize(q.plan);
        let mal = match compile(&lp) {
            Ok(m) => m,
            Err(e) => {
                findings.push(Finding::new("corpus", *name, format!("compile failed: {e}")));
                continue;
            }
        };
        let mut schema = SchemaOverlay::new(&NoSchema);
        for (s, cols) in &streams {
            schema = schema.with_stream(
                (*s).to_owned(),
                cols.iter().map(|&(c, t)| (c.to_owned(), t)).collect(),
            );
        }
        for err in verify_all(&mal, &schema) {
            let mut msg = format!("verifier diagnostic: {err}");
            let _ = write!(msg, "\n{}", mal.explain());
            findings.push(Finding::new("corpus", *name, msg));
        }
        // The rewriter runs fuse_group_agg and expand_avg under
        // checked_pass (DATACELL_VERIFY is set above), then the
        // incremental plan is re-checked for ring discipline.
        match rewrite(&mal) {
            Ok(inc) => {
                if let Err(e) = verify_incremental(&inc) {
                    findings.push(Finding::new("corpus", *name, format!("incremental: {e}")));
                }
            }
            Err(e) => {
                findings.push(Finding::new("corpus", *name, format!("rewrite failed: {e}")));
            }
        }
        // And the full engine path: registration must accept every corpus
        // query with the typed analyzer on.
        if let Err(e) = engine.register_sql(sql) {
            findings.push(Finding::new("corpus", *name, format!("engine rejected: {e}")));
        }
    }
    entries.len()
}

// ---------------------------------------------------------------------------
// Pass 2: stray-unwrap scan over library crates.
// ---------------------------------------------------------------------------

/// Library crates held to the no-unwrap rule. `bench` is exempt: its
/// binaries are workload harnesses where aborting on malformed setup is the
/// right behavior.
const LIBRARY_CRATES: &[&str] =
    &["telemetry", "kernel", "basket", "plan", "core", "sql", "net", "sysx"];

fn lint_unwraps(findings: &mut Vec<Finding>) -> usize {
    let root = repo_root();
    let mut files = Vec::new();
    for krate in LIBRARY_CRATES {
        collect_rs(&root.join("crates").join(krate).join("src"), &mut files);
    }
    files.sort();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable source file");
        let rel = path.strip_prefix(&root).unwrap_or(path).display().to_string();
        for (lineno, line) in text.lines().enumerate() {
            // Test modules sit at the tail of each file; everything from
            // the marker down is exercised only under `cargo test`.
            if line.contains("#[cfg(test)]") {
                break;
            }
            if line.contains(".unwrap()") && !line.contains("lint: allow-unwrap") {
                findings.push(Finding::new(
                    "unwrap",
                    format!("{rel}:{}", lineno + 1),
                    "library code may not .unwrap(); return the crate error type \
                     (or mark a proven-infallible site with `// lint: allow-unwrap`)",
                ));
            }
        }
    }
    files.len()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: lock-discipline audit.
// ---------------------------------------------------------------------------

/// Files holding the engine's shared mutable state, relative to the repo
/// root. `kernel::par` is additionally held to a no-locks rule: its
/// parallelism is pure scoped fork-join over disjoint partitions.
const AUDITED: &[(&str, bool)] = &[
    ("crates/basket/src/sharded.rs", false),
    ("crates/core/src/scheduler.rs", false),
    ("crates/core/src/scheduler/parallel.rs", false),
    ("crates/kernel/src/par/mod.rs", true),
    ("crates/kernel/src/par/select.rs", true),
    ("crates/kernel/src/par/join.rs", true),
    ("crates/kernel/src/par/aggregate.rs", true),
    ("crates/kernel/src/par/fetch.rs", true),
    ("crates/kernel/src/par/sort.rs", true),
];

fn lint_locks(findings: &mut Vec<Finding>) -> usize {
    let root = repo_root();
    for &(rel, lock_free) in AUDITED {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path).expect("audited file exists");
        audit_file(rel, &text, lock_free, findings);
    }
    AUDITED.len()
}

/// A live let-bound lock guard: indentation of the binding plus whether it
/// is a `Mutex` guard (exclusive leaf) or a `RwLock` guard (may wrap one
/// shard `Mutex`).
struct Guard {
    indent: usize,
    mutex: bool,
    line: usize,
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

fn is_acquire(line: &str) -> Option<bool> {
    // `.lock()` acquires a Mutex; `.read()`/`.write()` on parking_lot
    // RwLocks only appear in these files as lock acquisitions.
    if line.contains(".lock()") {
        Some(true)
    } else if line.contains(".read()") || line.contains(".write()") {
        Some(false)
    } else {
        None
    }
}

fn audit_file(rel: &str, text: &str, lock_free: bool, findings: &mut Vec<Finding>) {
    let mut guards: Vec<Guard> = Vec::new();
    // Indentation of each open `thread::scope(` fan-out block.
    let mut scopes: Vec<usize> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let site = format!("{rel}:{}", lineno + 1);
        let trimmed = line.trim_start();

        if trimmed.contains("thread::spawn") {
            findings.push(Finding::new(
                "locks",
                site,
                "unscoped thread::spawn in audited code; use std::thread::scope \
                 so joins are enforced and borrows stay checked",
            ));
            continue;
        }

        // Close guards/scopes whose scope ended: a closing brace at or
        // left of the binding's indentation.
        if trimmed.starts_with('}') {
            guards.retain(|g| g.indent < indent_of(line));
            scopes.retain(|&ind| ind < indent_of(line));
        }
        if line.contains("thread::scope(") {
            scopes.push(indent_of(line));
        }

        let Some(is_mutex) = is_acquire(line) else { continue };
        if lock_free {
            findings.push(Finding::new(
                "locks",
                site,
                "kernel::par must stay lock-free: scoped fork-join over \
                 disjoint partitions only",
            ));
            continue;
        }
        if !scopes.is_empty() {
            findings.push(Finding::new(
                "locks",
                site.clone(),
                "lock acquired inside a thread::scope fan-out block; collect \
                 shared state before spawning — scoped workers must own \
                 their data outright (see the parallel seal's phase split)",
            ));
        }
        if trimmed.starts_with("if let") || trimmed.starts_with("while let") {
            findings.push(Finding::new(
                "locks",
                site,
                "lock acquired in an `if let`/`while let` scrutinee: the guard \
                 lives for the whole body, not just the condition; bind and \
                 drop it in its own statement",
            ));
            continue;
        }
        if let Some(holder) = guards.iter().find(|g| g.mutex) {
            findings.push(Finding::new(
                "locks",
                site.clone(),
                format!(
                    "lock acquired while the Mutex guard from line {} is live; \
                     Mutex guards are leaves in the lock order",
                    holder.line + 1
                ),
            ));
        }
        if !is_mutex {
            if let Some(holder) = guards.iter().find(|g| !g.mutex) {
                findings.push(Finding::new(
                    "locks",
                    site,
                    format!(
                        "RwLock acquired while the RwLock guard from line {} is \
                         live; only RwLock -> one Mutex nesting is sanctioned",
                        holder.line + 1
                    ),
                ));
            }
        }
        // Only let-bound guards outlive their statement; temporaries
        // (`x.lock().field` chains) drop at the semicolon.
        if trimmed.starts_with("let ") {
            guards.push(Guard { indent: indent_of(line), mutex: is_mutex, line: lineno });
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 4: exposition conformance.
// ---------------------------------------------------------------------------

/// Run a small three-axis workload and hold the engine's exposition to the
/// strict parser plus the every-family-has-help rule. Returns the number of
/// families checked.
fn lint_exposition(findings: &mut Vec<Finding>) -> usize {
    let mut e = Engine::with_workers(2);
    e.set_basket_shards(2);
    e.set_partitions(2);
    e.create_stream("lint_s", &[("k", DataType::Int), ("v", DataType::Int)])
        .expect("lint stream registration");
    e.register_sql("SELECT k, sum(v) FROM lint_s GROUP BY k WINDOW SIZE 32 SLIDE 16")
        .expect("lint query registration");
    let ks: Vec<i64> = (0..128).map(|i| i % 4).collect();
    let vs: Vec<i64> = (0..128).collect();
    e.append("lint_s", &[Column::Int(ks), Column::Int(vs)]).expect("lint append");
    e.run_until_idle().expect("lint drain");

    let text = render_text(&e.telemetry_snapshot());
    let parsed = match parse_text(&text) {
        Ok(p) => p,
        Err(err) => {
            findings.push(Finding::new(
                "exposition",
                "Engine::telemetry_snapshot",
                format!("rendered exposition rejected by the strict parser: {err}"),
            ));
            return 0;
        }
    };
    for name in parsed.families_without_help() {
        findings.push(Finding::new(
            "exposition",
            name,
            "metric family exposed without help text; register it with a \
             one-line description — the HELP line is the only documentation \
             an operator's scrape ever sees",
        ));
    }
    parsed.families.len()
}
