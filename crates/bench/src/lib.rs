//! # datacell-bench
//!
//! Workload generators and per-figure harnesses reproducing the paper's
//! evaluation (§4). Binaries `fig4` … `fig10` each regenerate one figure's
//! series; `scheduler_scale` measures the parallel Petri-net scheduler
//! (throughput vs. worker count on a multi-query workload, CPU-bound and
//! blocking-fire variants — see [`run_scheduler_scale`]); `join_scale`
//! the partitioned kernel join (throughput vs. fan-out); `ingest_scale`
//! the sharded basket ingest edge (appends/s vs. shard count × receptor
//! threads); the Criterion benches in `benches/` cover the same
//! workloads at reduced sizes for regression tracking.
//!
//! Absolute numbers differ from the paper (different hardware, different
//! substrate); the targets are the *shapes*: who wins, by what factor, and
//! where the crossovers fall. `EXPERIMENTS.md` records both.

pub mod args;
pub mod runner;
pub mod table;
pub mod workload;

pub use args::Args;
pub use runner::{
    run_q1, run_q2, run_q3_landmark, run_scheduler_scale, run_sysx_q2, Mode, Q1Config, Q2Config,
    Q3Config, RunOutcome, ScaleConfig, ScaleOutcome,
};
pub use table::{fmt_duration, print_table};
pub use workload::{
    csv_for_stream, gen_join_stream, gen_q1_stream, lcg_int_bat, lcg_str_bat, selectivity_threshold,
};
