//! Synthetic stream workloads matching the paper's §4 setup.
//!
//! * Q1 streams carry `(x1, x2)` with `x1` uniform in `[0, domain)` so that
//!   the predicate `x1 > threshold` has a controllable selectivity and the
//!   group-by has at most `domain` groups;
//! * Q2 streams carry `(key, val)` with keys uniform in `[0, key_domain)`;
//!   the expected join selectivity between two windows is
//!   `1 / key_domain` (the paper sweeps 10⁻⁵% … 10⁻²%).

use datacell_kernel::{Bat, Column};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Domain of the Q1 grouping attribute (the paper groups on a selective
/// attribute; 100 keeps group counts small and cache-friendly).
pub const Q1_DOMAIN: i64 = 100;

/// Threshold such that `x1 > threshold` over a uniform `[0, Q1_DOMAIN)`
/// attribute passes about `selectivity` of the tuples.
pub fn selectivity_threshold(selectivity: f64) -> i64 {
    let s = selectivity.clamp(0.0, 1.0);
    ((1.0 - s) * Q1_DOMAIN as f64).round() as i64 - 1
}

/// Generate `n` tuples of the Q1 stream: `(x1 uniform [0,100), x2 uniform
/// [0,1000))`, deterministic in `seed`.
pub fn gen_q1_stream(n: usize, seed: u64) -> Vec<Column> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x1 = Vec::with_capacity(n);
    let mut x2 = Vec::with_capacity(n);
    for _ in 0..n {
        x1.push(rng.random_range(0..Q1_DOMAIN));
        x2.push(rng.random_range(0..1000i64));
    }
    vec![Column::Int(x1), Column::Int(x2)]
}

/// Generate `n` tuples of one Q2 stream: `(key uniform [0, key_domain),
/// val uniform [0,1000))`.
pub fn gen_join_stream(n: usize, key_domain: i64, seed: u64) -> Vec<Column> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut key = Vec::with_capacity(n);
    let mut val = Vec::with_capacity(n);
    for _ in 0..n {
        key.push(rng.random_range(0..key_domain.max(1)));
        val.push(rng.random_range(0..1000i64));
    }
    vec![Column::Int(key), Column::Int(val)]
}

/// An `n`-tuple int BAT with keys uniform in `[0, domain)`, deterministic
/// in `seed` via a bare LCG — the kernel-level join/select benchmark
/// input shared by the `kernel_ops` bench and the `join_scale` binary
/// (no engine, no streams, so it bypasses the `rand` shim on purpose:
/// the same bytes regenerate regardless of shim evolution).
pub fn lcg_int_bat(n: usize, domain: i64, seed: u64) -> Bat {
    let mut state = seed | 1;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        vals.push(((state >> 33) as i64).rem_euclid(domain));
    }
    Bat::transient(Column::Int(vals))
}

/// The string-key twin of [`lcg_int_bat`]: the same key sequence rendered
/// as `key-NNNNNN` strings, so int and string joins see identical match
/// structure.
pub fn lcg_str_bat(n: usize, domain: i64, seed: u64) -> Bat {
    let ints = lcg_int_bat(n, domain, seed);
    let vals =
        ints.tail.as_int().expect("int column").iter().map(|k| format!("key-{k:06}")).collect();
    Bat::transient(Column::Str(vals))
}

/// Render a two-column int batch as CSV text (the loading-cost experiment
/// parses this back through the CSV receptor).
pub fn csv_for_stream(batch: &[Column]) -> String {
    let a = batch[0].as_int().expect("int column");
    let b = batch[1].as_int().expect("int column");
    let mut out = String::with_capacity(a.len() * 10);
    for (x, y) in a.iter().zip(b) {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_maps_selectivity() {
        // 20% selectivity -> threshold 79: passes x1 in {80..99} = 20 values.
        assert_eq!(selectivity_threshold(0.2), 79);
        assert_eq!(selectivity_threshold(0.9), 9);
        assert_eq!(selectivity_threshold(1.0), -1); // everything passes
    }

    #[test]
    fn q1_stream_is_deterministic_and_in_domain() {
        let a = gen_q1_stream(1000, 42);
        let b = gen_q1_stream(1000, 42);
        assert_eq!(a, b);
        let c = gen_q1_stream(1000, 43);
        assert_ne!(a, c);
        for &v in a[0].as_int().unwrap() {
            assert!((0..Q1_DOMAIN).contains(&v));
        }
    }

    #[test]
    fn measured_selectivity_close_to_target() {
        let cols = gen_q1_stream(100_000, 7);
        let thr = selectivity_threshold(0.2);
        let passing =
            cols[0].as_int().unwrap().iter().filter(|&&v| v > thr).count() as f64 / 100_000.0;
        assert!((passing - 0.2).abs() < 0.01, "measured {passing}");
    }

    #[test]
    fn join_stream_domain() {
        let cols = gen_join_stream(1000, 10, 1);
        for &k in cols[0].as_int().unwrap() {
            assert!((0..10).contains(&k));
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let cols = gen_q1_stream(5, 1);
        let text = csv_for_stream(&cols);
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().all(|l| l.split(',').count() == 2));
    }
}
