//! Microbenchmarks of the column-store kernel's bulk operators — the
//! substrate costs underlying every figure (ablation: how much of a slide
//! is pure kernel work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datacell_bench::{lcg_int_bat as make_int_bat, lcg_str_bat as make_str_bat};
use datacell_kernel::algebra::{self, Predicate};
use datacell_kernel::par::{self, ParConfig};
use datacell_kernel::Bat;
use std::hint::black_box;

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_select");
    for n in [10_000usize, 100_000, 1_000_000] {
        let b = make_int_bat(n, 100, 42);
        let pred = Predicate::gt(79); // 20% selectivity
        g.bench_with_input(BenchmarkId::from_parameter(n), &b, |bench, bat| {
            bench.iter(|| algebra::select(black_box(bat), black_box(&pred)).unwrap());
        });
    }
    g.finish();
}

fn bench_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_fetch");
    for n in [10_000usize, 100_000, 1_000_000] {
        let b = make_int_bat(n, 100, 42);
        let cands = algebra::select(&b, &Predicate::gt(79)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(cands, b), |bench, (c, b)| {
            bench.iter(|| algebra::fetch(black_box(c), black_box(b)).unwrap());
        });
    }
    g.finish();
}

fn bench_hashjoin(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_hashjoin");
    g.sample_size(20);
    for n in [10_000usize, 100_000] {
        let l = make_int_bat(n, 10_000, 1);
        let r = make_int_bat(n, 10_000, 2);
        // Input rows per iteration: both sides are consumed once.
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_with_input(BenchmarkId::new("int", n), &(l, r), |bench, (l, r)| {
            bench.iter(|| algebra::hashjoin(black_box(l), black_box(r)).unwrap());
        });
        let l = make_str_bat(n, 10_000, 1);
        let r = make_str_bat(n, 10_000, 2);
        g.bench_with_input(BenchmarkId::new("str", n), &(l, r), |bench, (l, r)| {
            bench.iter(|| algebra::hashjoin(black_box(l), black_box(r)).unwrap());
        });
    }
    g.finish();
}

fn bench_hashjoin_partitioned(c: &mut Criterion) {
    // Regression-tracks the `kernel::par` radix join against the
    // sequential baseline (P=1 dispatches to it). On a single-core
    // container the interesting number is the partitioning overhead; on
    // multi-core hardware this group should scale with physical cores —
    // the `join_scale` binary prints the full speedup table.
    let mut g = c.benchmark_group("kernel_hashjoin_par_100k");
    g.sample_size(20);
    let n = 100_000;
    let l = make_int_bat(n, 10_000, 1);
    let r = make_int_bat(n, 10_000, 2);
    g.throughput(Throughput::Elements(2 * n as u64));
    for p in [1usize, 2, 4] {
        let cfg = ParConfig::new(p);
        g.bench_with_input(BenchmarkId::new("partitions", p), &(&l, &r), |bench, (l, r)| {
            bench.iter(|| par::hashjoin(black_box(l), black_box(r), &cfg).unwrap());
        });
    }
    g.finish();
}

fn bench_group_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_group_sum");
    for n in [10_000usize, 100_000, 1_000_000] {
        let keys = make_int_bat(n, 100, 3);
        let vals = make_int_bat(n, 1000, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(keys, vals), |bench, (k, v)| {
            bench.iter(|| {
                let groups = algebra::group(black_box(k)).unwrap();
                algebra::sum_grouped(black_box(v), &groups).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_concat(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_concat_512_parts");
    for part in [128usize, 2_048] {
        let parts: Vec<Bat> = (0..512).map(|i| make_int_bat(part, 100, i as u64)).collect();
        let refs: Vec<&Bat> = parts.iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(part), &refs, |bench, refs| {
            bench.iter(|| algebra::concat(black_box(refs)).unwrap());
        });
    }
    g.finish();
}

fn bench_sort_distinct(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_sort_distinct");
    let b = make_int_bat(100_000, 1_000, 5);
    g.bench_function("sort_100k", |bench| bench.iter(|| algebra::sort(black_box(&b)).unwrap()));
    g.bench_function("distinct_100k", |bench| {
        bench.iter(|| algebra::distinct(black_box(&b)).unwrap());
    });
    g.finish();
}

criterion_group!(
    kernel,
    bench_select,
    bench_fetch,
    bench_hashjoin,
    bench_hashjoin_partitioned,
    bench_group_aggregate,
    bench_concat,
    bench_sort_distinct,
);
criterion_main!(kernel);
