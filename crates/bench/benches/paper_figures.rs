//! Criterion benches, one group per paper figure (reduced sizes for
//! regression tracking; the `fig*` binaries produce the full series).
//!
//! Run with `cargo bench -p datacell-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacell_bench::{
    run_q1, run_q2, run_q3_landmark, run_sysx_q2, Mode, Q1Config, Q2Config, Q3Config,
};

/// Fig 4(a): Q1 full run, incremental vs re-evaluation.
fn bench_fig4_q1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_q1");
    g.sample_size(10);
    let cfg = Q1Config { window: 65_536, step: 128, selectivity: 0.2, windows: 5, seed: 42 };
    for mode in [Mode::DataCell, Mode::DataCellR] {
        g.bench_with_input(BenchmarkId::new(mode.label(), "W=65536,n=512"), &cfg, |b, cfg| {
            b.iter(|| run_q1(&mode, cfg));
        });
    }
    g.finish();
}

/// Fig 4(b): Q2 full run.
fn bench_fig4_q2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_q2");
    g.sample_size(10);
    let cfg = Q2Config { window: 8_192, step: 128, key_domain: 10_000, windows: 5, seed: 42 };
    for mode in [Mode::DataCell, Mode::DataCellR] {
        g.bench_with_input(BenchmarkId::new(mode.label(), "W=8192,n=64"), &cfg, |b, cfg| {
            b.iter(|| run_q2(&mode, cfg));
        });
    }
    g.finish();
}

/// Fig 5(a): Q1 selectivity sweep endpoints.
fn bench_fig5_selectivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_selectivity");
    g.sample_size(10);
    for sel in [0.1, 0.5, 0.9] {
        let cfg = Q1Config { window: 65_536, step: 128, selectivity: sel, windows: 3, seed: 42 };
        for mode in [Mode::DataCell, Mode::DataCellR] {
            g.bench_with_input(
                BenchmarkId::new(mode.label(), format!("sel={sel}")),
                &cfg,
                |b, cfg| b.iter(|| run_q1(&mode, cfg)),
            );
        }
    }
    g.finish();
}

/// Fig 5(b): Q2 join-selectivity endpoints.
fn bench_fig5_join_selectivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_join_selectivity");
    g.sample_size(10);
    for domain in [1_000_000i64, 10_000] {
        let cfg = Q2Config { window: 8_192, step: 128, key_domain: domain, windows: 3, seed: 42 };
        for mode in [Mode::DataCell, Mode::DataCellR] {
            g.bench_with_input(
                BenchmarkId::new(mode.label(), format!("sel=1/{domain}")),
                &cfg,
                |b, cfg| b.iter(|| run_q2(&mode, cfg)),
            );
        }
    }
    g.finish();
}

/// Fig 6(a): window-size endpoints at n = 512.
fn bench_fig6_window_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6a_window_size");
    g.sample_size(10);
    for w in [32_768usize, 131_072] {
        let cfg = Q1Config { window: w, step: w / 512, selectivity: 0.2, windows: 3, seed: 42 };
        for mode in [Mode::DataCell, Mode::DataCellR] {
            g.bench_with_input(BenchmarkId::new(mode.label(), format!("W={w}")), &cfg, |b, cfg| {
                b.iter(|| run_q1(&mode, cfg));
            });
        }
    }
    g.finish();
}

/// Fig 6(b): landmark windows.
fn bench_fig6_landmark(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6b_landmark");
    g.sample_size(10);
    let cfg = Q3Config { step: 8_192, selectivity: 0.2, windows: 8, seed: 42 };
    for mode in [Mode::DataCell, Mode::DataCellR] {
        g.bench_with_input(BenchmarkId::new(mode.label(), "w=8192x8"), &cfg, |b, cfg| {
            b.iter(|| run_q3_landmark(&mode, cfg));
        });
    }
    g.finish();
}

/// Fig 7(a): number-of-basic-windows endpoints (merge-cost ablation).
fn bench_fig7_basic_windows(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7a_basic_windows");
    g.sample_size(10);
    for n in [4usize, 64, 1024] {
        let cfg =
            Q1Config { window: 65_536, step: 65_536 / n, selectivity: 0.2, windows: 3, seed: 42 };
        g.bench_with_input(BenchmarkId::new("DataCell", format!("n={n}")), &cfg, |b, cfg| {
            b.iter(|| run_q1(&Mode::DataCell, cfg));
        });
    }
    g.finish();
}

/// Fig 8: chunking ablation — m = 1 vs fixed m vs adaptive.
fn bench_fig8_chunking(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_chunking");
    g.sample_size(10);
    let cfg = Q1Config { window: 65_536, step: 1_024, selectivity: 0.2, windows: 5, seed: 42 };
    for mode in [Mode::DataCell, Mode::Chunked(16), Mode::Adaptive { max_m: 64, probe_every: 2 }] {
        g.bench_with_input(BenchmarkId::new(mode.label(), "W=65536"), &cfg, |b, cfg| {
            b.iter(|| run_q1(&mode, cfg));
        });
    }
    g.finish();
}

/// Fig 9: the three systems on the same Q2 workload (small and large).
fn bench_fig9_systems(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_vs_systemx");
    g.sample_size(10);
    for w in [1_024usize, 16_384] {
        let cfg = Q2Config { window: w, step: w / 64, key_domain: 10_000, windows: 10, seed: 42 };
        g.bench_with_input(BenchmarkId::new("SystemX", format!("W={w}")), &cfg, |b, cfg| {
            b.iter(|| run_sysx_q2(cfg));
        });
        for mode in [Mode::DataCell, Mode::DataCellR] {
            g.bench_with_input(BenchmarkId::new(mode.label(), format!("W={w}")), &cfg, |b, cfg| {
                b.iter(|| run_q2(&mode, cfg));
            });
        }
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig4_q1,
    bench_fig4_q2,
    bench_fig5_selectivity,
    bench_fig5_join_selectivity,
    bench_fig6_window_size,
    bench_fig6_landmark,
    bench_fig7_basic_windows,
    bench_fig8_chunking,
    bench_fig9_systems,
);
criterion_main!(figures);
