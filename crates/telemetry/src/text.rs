//! Prometheus text-format exposition: a renderer for [`Snapshot`] and a
//! strict validating parser used by the lint harness and `metrics_dump`'s
//! self-check.

use crate::{MetricKind, SampleValue, Snapshot};
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers per family, one line per sample,
/// histograms expanded into `_bucket{le=...}` / `_sum` / `_count` series.
#[must_use]
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for sample in &fam.samples {
            let labels: Vec<(&str, &str)> =
                sample.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match &sample.value {
                SampleValue::Value(v) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, label_block(&labels, None), fmt(*v));
                }
                SampleValue::Histogram(h) => {
                    for &(le, cum) in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            fam.name,
                            label_block(&labels, Some(le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        label_block(&labels, None),
                        fmt(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        label_block(&labels, None),
                        h.count
                    );
                }
            }
        }
    }
    out
}

/// Format a float the way Prometheus expects: `+Inf`/`-Inf` for infinities,
/// shortest-roundtrip decimal otherwise.
fn fmt(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(&str, &str)], le: Option<f64>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|&(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", fmt(le)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// Parser / validator.
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Sample name as it appears on the line (so `foo_bucket` for a
    /// histogram bucket of family `foo`).
    pub name: String,
    /// Label pairs in line order (including `le` for buckets).
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// One `# TYPE` family declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedFamily {
    /// Family name.
    pub name: String,
    /// Declared kind.
    pub kind: MetricKind,
    /// Help text from the matching `# HELP` line (empty if the help text
    /// itself was empty — the lint harness flags that).
    pub help: String,
}

/// A validated parse of a Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Parsed {
    /// Declared families, in document order.
    pub families: Vec<ParsedFamily>,
    /// All samples, in document order.
    pub samples: Vec<ParsedSample>,
}

impl Parsed {
    /// The first sample with this exact name and label subset (every pair
    /// in `labels` must be present on the sample).
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Sum of every sample with this exact name, across label sets.
    #[must_use]
    pub fn total(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Names of declared families whose help text is empty.
    #[must_use]
    pub fn families_without_help(&self) -> Vec<String> {
        self.families.iter().filter(|f| f.help.is_empty()).map(|f| f.name.clone()).collect()
    }
}

/// Parse and validate a Prometheus text exposition. Beyond line-level
/// syntax, this enforces the structural rules the renderer guarantees:
/// every sample belongs to a family declared by a preceding `# TYPE` (with
/// `_bucket`/`_sum`/`_count` expansion for histograms), every `# TYPE` has a
/// matching `# HELP`, histogram buckets carry `le` labels with
/// non-decreasing cumulative counts, and the `+Inf` bucket equals `_count`.
///
/// Returns a description of the first violation on failure.
pub fn parse_text(text: &str) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut helps: Vec<(String, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            parse_comment(rest.trim_start(), n, &mut parsed, &mut helps)?;
        } else {
            parsed.samples.push(parse_sample(line, n, &parsed.families)?);
        }
    }
    for fam in &parsed.families {
        validate_family(fam, &parsed.samples)?;
    }
    Ok(parsed)
}

fn parse_comment(
    rest: &str,
    lineno: usize,
    parsed: &mut Parsed,
    helps: &mut Vec<(String, String)>,
) -> Result<(), String> {
    if let Some(decl) = rest.strip_prefix("HELP ") {
        let (name, help) = decl.split_once(' ').unwrap_or((decl, ""));
        check_name(name, lineno)?;
        helps.push((name.to_owned(), help.to_owned()));
    } else if let Some(decl) = rest.strip_prefix("TYPE ") {
        let (name, kind) = decl
            .split_once(' ')
            .ok_or_else(|| format!("line {lineno}: # TYPE needs a name and a kind"))?;
        check_name(name, lineno)?;
        let kind = match kind.trim() {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            other => return Err(format!("line {lineno}: unknown metric type `{other}`")),
        };
        let help = helps
            .iter()
            .find(|(h, _)| h == name)
            .map(|(_, text)| text.clone())
            .ok_or_else(|| format!("line {lineno}: # TYPE {name} has no preceding # HELP"))?;
        parsed.families.push(ParsedFamily { name: name.to_owned(), kind, help });
    }
    // Other `#` lines are plain comments.
    Ok(())
}

fn parse_sample(
    line: &str,
    lineno: usize,
    families: &[ParsedFamily],
) -> Result<ParsedSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("line {lineno}: sample line has no value"))?;
    let name = &line[..name_end];
    check_name(name, lineno)?;
    let rest = &line[name_end..];
    let (labels, value_str) = if let Some(body) = rest.strip_prefix('{') {
        let close =
            body.find('}').ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
        (parse_labels(&body[..close], lineno)?, body[close + 1..].trim())
    } else {
        (Vec::new(), rest.trim())
    };
    let value = parse_value(value_str)
        .ok_or_else(|| format!("line {lineno}: `{value_str}` is not a valid sample value"))?;

    // The sample must belong to a declared family. Histogram series expand
    // into `_bucket`/`_sum`/`_count`; counters and gauges use the bare name.
    let owner = families.iter().find(|f| match f.kind {
        MetricKind::Histogram => {
            name == format!("{}_bucket", f.name)
                || name == format!("{}_sum", f.name)
                || name == format!("{}_count", f.name)
        }
        MetricKind::Counter | MetricKind::Gauge => name == f.name,
    });
    let owner =
        owner.ok_or_else(|| format!("line {lineno}: sample `{name}` has no # TYPE family"))?;
    if owner.kind == MetricKind::Histogram
        && name == format!("{}_bucket", owner.name)
        && !labels.iter().any(|(k, _)| k == "le")
    {
        return Err(format!("line {lineno}: histogram bucket `{name}` is missing its le label"));
    }
    Ok(ParsedSample { name: name.to_owned(), labels, value })
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("line {lineno}: malformed label pair after `{key}`"));
        }
        check_name(key.trim(), lineno)?;
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("line {lineno}: bad escape in label value")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("line {lineno}: unterminated label value"));
        }
        labels.push((key.trim().to_owned(), value));
        match chars.next() {
            Some(',') => {}
            None => break,
            Some(c) => return Err(format!("line {lineno}: unexpected `{c}` between labels")),
        }
    }
    Ok(labels)
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_alphabetic() || c == '_' || c == ':')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        None => false,
    };
    if ok {
        Ok(())
    } else {
        Err(format!("line {lineno}: `{name}` is not a valid metric/label name"))
    }
}

/// One histogram series while validating: the non-`le` label set and its
/// `(le, cumulative count)` buckets in input order.
type BucketSeries = (Vec<(String, String)>, Vec<(f64, f64)>);

fn validate_family(fam: &ParsedFamily, samples: &[ParsedSample]) -> Result<(), String> {
    if fam.kind != MetricKind::Histogram {
        return Ok(());
    }
    let bucket = format!("{}_bucket", fam.name);
    let count_name = format!("{}_count", fam.name);
    // Group buckets by their non-le labels: one series per label set.
    let mut series: Vec<BucketSeries> = Vec::new();
    for s in samples.iter().filter(|s| s.name == bucket) {
        let key: Vec<(String, String)> =
            s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
        let le = s
            .labels
            .iter()
            .find(|(k, _)| k == "le")
            .and_then(|(_, v)| parse_value(v))
            .ok_or_else(|| format!("histogram {}: bucket with unparsable le", fam.name))?;
        match series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push((le, s.value)),
            None => series.push((key, vec![(le, s.value)])),
        }
    }
    if series.is_empty() {
        return Err(format!("histogram {} declared but has no _bucket samples", fam.name));
    }
    for (key, buckets) in &series {
        let mut prev = 0.0f64;
        for &(_, cum) in buckets {
            if cum < prev {
                return Err(format!("histogram {}: bucket counts not cumulative", fam.name));
            }
            prev = cum;
        }
        let (last_le, last_cum) = *buckets.last().unwrap_or(&(0.0, 0.0));
        if last_le != f64::INFINITY {
            return Err(format!("histogram {}: final bucket must be le=\"+Inf\"", fam.name));
        }
        let labels: Vec<(&str, &str)> = key.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let count = samples
            .iter()
            .find(|s| {
                s.name == count_name
                    && labels
                        .iter()
                        .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
                    && s.labels.len() == labels.len()
            })
            .map(|s| s.value)
            .ok_or_else(|| format!("histogram {}: missing _count sample", fam.name))?;
        if count != last_cum {
            return Err(format!("histogram {}: +Inf bucket != _count", fam.name));
        }
        if !samples.iter().any(|s| {
            s.name == format!("{}_sum", fam.name)
                && s.labels.len() == labels.len()
                && labels.iter().all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        }) {
            return Err(format!("histogram {}: missing _sum sample", fam.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Family, Histogram, Registry};
    use std::time::Duration;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("dc_hits_total", "Total hits.").add(42);
        r.gauge_with("dc_depth", "Queue depth.", &[("queue", "main")]).set(3);
        let h: Histogram = r.histogram_with("dc_lat_seconds", "Latency.", &[("path", "seq")]);
        h.record(Duration::from_micros(10));
        h.record(Duration::from_millis(2));
        r
    }

    #[test]
    fn render_then_parse_roundtrips() {
        let text = render_text(&sample_registry().snapshot());
        let parsed = parse_text(&text).expect("valid exposition");
        assert_eq!(parsed.get("dc_hits_total", &[]), Some(42.0));
        assert_eq!(parsed.get("dc_depth", &[("queue", "main")]), Some(3.0));
        assert_eq!(parsed.get("dc_lat_seconds_count", &[("path", "seq")]), Some(2.0));
        assert_eq!(parsed.families.len(), 3);
        assert!(parsed.families_without_help().is_empty());
        // Bucket lines carry le labels and end at +Inf.
        assert!(text.contains("dc_lat_seconds_bucket{path=\"seq\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn parser_rejects_undeclared_samples() {
        let err = parse_text("stray_total 1\n").expect_err("no TYPE");
        assert!(err.contains("no # TYPE"), "{err}");
    }

    #[test]
    fn parser_rejects_type_without_help() {
        let err = parse_text("# TYPE x counter\nx 1\n").expect_err("no HELP");
        assert!(err.contains("no preceding # HELP"), "{err}");
    }

    #[test]
    fn parser_rejects_bad_values_and_names() {
        let text = "# HELP x X.\n# TYPE x counter\nx notanumber\n";
        assert!(parse_text(text).is_err());
        let text = "# HELP 9bad X.\n# TYPE 9bad counter\n";
        assert!(parse_text(text).is_err());
    }

    #[test]
    fn parser_flags_empty_help() {
        let text = "# HELP x \n# TYPE x counter\nx 1\n";
        let parsed = parse_text(text).expect("syntactically fine");
        assert_eq!(parsed.families_without_help(), vec!["x".to_owned()]);
    }

    #[test]
    fn parser_validates_histogram_structure() {
        // Missing +Inf bucket.
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let err = parse_text(text).expect_err("no +Inf");
        assert!(err.contains("+Inf"), "{err}");
        // Non-cumulative buckets.
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\n\
                    h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_text(text).is_err());
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let mut fam = Family::new("dc_esc", "Escapes.", crate::MetricKind::Gauge);
        fam.push_value(&[("k", "a\"b\\c")], 1.0);
        let mut snap = crate::Snapshot::default();
        snap.push(fam);
        let text = render_text(&snap);
        let parsed = parse_text(&text).expect("valid");
        assert_eq!(parsed.get("dc_esc", &[("k", "a\"b\\c")]), Some(1.0));
    }
}
