//! Engine-wide telemetry: lock-free metric primitives, a named registry,
//! and a Prometheus text exposition surface.
//!
//! This crate sits *below* `datacell-kernel` in the dependency order and is
//! deliberately std-only, so every layer of the engine — kernel operators,
//! basket staging, schedulers, the engine facade — can record into the same
//! registry without dependency cycles.
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`] — clonable handles over a single atomic;
//!   recording is one relaxed RMW, safe inside `thread::scope` fan-outs and
//!   the lock-free `kernel::par` morsel loops.
//! - [`Histogram`] — fixed-bucket log₂-scale latency histogram (powers of
//!   two in nanoseconds) with exact atomic `sum`/`count` and
//!   [`Histogram::quantile`] extraction for p50/p95/p99 reporting.
//! - [`Registry`] — associates handles with a metric name, help text and
//!   constant labels, and renders them into a [`Snapshot`]. The process-wide
//!   [`global()`] registry holds signals that are inherently process-scoped
//!   (the kernel's morsel counters, basket seal timings); engine-local
//!   series (per-query latency, scheduler utilization, per-shard depth) are
//!   built into families by `Engine::telemetry_snapshot` so that two engines
//!   in one process never collide on a `query="q0"` label.
//! - [`render_text`] / [`parse_text`] — Prometheus text-format exposition
//!   and a strict validating parser (used by the lint harness and the
//!   `metrics_dump` bin's self-check).
//!
//! # Kill switch
//!
//! `DATACELL_TELEMETRY=0` (or `off`/`false`) disables *timed*
//! instrumentation: [`timer()`] returns `None` and the paired
//! [`Histogram::record_since`] becomes a no-op, so the `Instant` clock reads
//! vanish from the hot paths. Monotone counters stay on unconditionally —
//! they are single relaxed adds, and both the test suite and the scale
//! harnesses assert on their deltas. The flag is read once per process.

mod text;

pub use text::{parse_text, render_text, Parsed, ParsedFamily, ParsedSample};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Kill switch.
// ---------------------------------------------------------------------------

/// Decode a raw `DATACELL_TELEMETRY` value: `0`, `off` and `false`
/// (case-insensitive) disable timed instrumentation, anything else — and an
/// unset variable — leaves it on.
#[must_use]
pub fn parse_enabled(raw: Option<&str>) -> bool {
    match raw {
        Some(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        }
        None => true,
    }
}

/// Whether timed instrumentation is on (`DATACELL_TELEMETRY`, cached at
/// first use). Counters and gauges are unaffected by this switch.
#[must_use]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| parse_enabled(std::env::var("DATACELL_TELEMETRY").ok().as_deref()))
}

/// Start a latency measurement: `Some(Instant::now())` when telemetry is
/// enabled, `None` under the kill switch (no clock read at all). Pair with
/// [`Histogram::record_since`].
#[must_use]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Counter / gauge.
// ---------------------------------------------------------------------------

/// A monotone counter: a clonable handle over one `AtomicU64`. All clones
/// observe the same value; recording is a single relaxed `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Add the nanoseconds elapsed since a [`timer()`] start; no-op under
    /// the kill switch (`start == None`). For counters accumulating busy
    /// or idle time.
    pub fn add_nanos_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.add(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// A gauge: a clonable handle over one `AtomicI64`; may go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower (atomic max) —
    /// high-water marks such as peak open connections. Racing raisers
    /// converge on the true maximum without a read-modify-write loop.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

/// Number of histogram buckets, including the final `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// log₂ of the first bucket's upper bound in nanoseconds: bucket `i` (for
/// `i < HISTOGRAM_BUCKETS - 1`) covers durations `≤ 2^(10 + i)` ns, i.e.
/// ~1 µs up to ~275 s, with the last bucket catching everything above.
const BASE_SHIFT: u32 = 10;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log-scale latency histogram. Bucket boundaries are powers
/// of two in nanoseconds (see [`HISTOGRAM_BUCKETS`] / [`bucket_upper_ns`]);
/// `sum` and `count` are exact. Clonable handle semantics match [`Counter`]:
/// all clones record into the same cells, so concurrent recording from many
/// threads sums exactly.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

/// Upper bound of bucket `i` in nanoseconds; `None` for the final `+Inf`
/// bucket.
#[must_use]
pub fn bucket_upper_ns(i: usize) -> Option<u64> {
    (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << (BASE_SHIFT + i as u32))
}

/// The bucket a duration of `ns` nanoseconds falls into: the smallest `i`
/// with `ns <= 2^(BASE_SHIFT + i)`, clamped to the `+Inf` bucket.
fn bucket_index(ns: u64) -> usize {
    let bits = 64 - ns.saturating_sub(1).leading_zeros();
    (bits.saturating_sub(BASE_SHIFT) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the time elapsed since a [`timer()`] start; no-op under the
    /// kill switch (`start == None`).
    pub fn record_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(t.elapsed());
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded durations.
    #[must_use]
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.0.sum_ns.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket the
    /// target rank falls into — a conservative (rounded-up) estimate, exact
    /// to within one power of two. [`Duration::ZERO`] on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of all cells, for exposition.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            let le = bucket_upper_ns(i).map_or(f64::INFINITY, |ns| ns as f64 / 1.0e9);
            buckets.push((le, cum));
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1.0e9,
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`Histogram`]: cumulative bucket counts keyed
/// by upper bound in *seconds* (Prometheus `le` convention, last is
/// `+Inf`), plus the exact sum (seconds) and count.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// `(le_seconds, cumulative_count)` per bucket, ascending; the final
    /// entry's bound is `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of all observations in seconds.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut last_finite = 0.0f64;
        for &(le, cum) in &self.buckets {
            if le.is_finite() {
                last_finite = le;
            }
            if cum >= target {
                let bound = if le.is_finite() { le } else { last_finite };
                return Duration::from_secs_f64(bound);
            }
        }
        Duration::from_secs_f64(last_finite)
    }
}

// ---------------------------------------------------------------------------
// Snapshot model.
// ---------------------------------------------------------------------------

/// What kind of metric a [`Family`] holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`*_total` by convention).
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Latency histogram (`*_seconds` by convention).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's value within a family.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// A plain counter/gauge value.
    Value(f64),
    /// A full histogram (buckets + sum + count).
    Histogram(HistogramSnapshot),
}

/// One labeled sample within a [`Family`].
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Label pairs, in emission order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// All samples sharing one metric name, help text and kind.
#[derive(Clone, Debug, PartialEq)]
pub struct Family {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text for the `# HELP` line. The lint harness flags empty help.
    pub help: String,
    /// Metric kind for the `# TYPE` line.
    pub kind: MetricKind,
    /// Samples, one per distinct label set.
    pub samples: Vec<Sample>,
}

impl Family {
    /// An empty family.
    #[must_use]
    pub fn new(name: &str, help: &str, kind: MetricKind) -> Family {
        Family { name: name.to_owned(), help: help.to_owned(), kind, samples: Vec::new() }
    }

    /// Append a plain-valued sample.
    pub fn push_value(&mut self, labels: &[(&str, &str)], value: f64) {
        self.samples.push(Sample { labels: own_labels(labels), value: SampleValue::Value(value) });
    }

    /// Append a histogram sample.
    pub fn push_histogram(&mut self, labels: &[(&str, &str)], h: HistogramSnapshot) {
        self.samples.push(Sample { labels: own_labels(labels), value: SampleValue::Histogram(h) });
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect()
}

/// A point-in-time view of a set of metric families, ready for
/// [`render_text`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Families, sorted by name.
    pub families: Vec<Family>,
}

impl Snapshot {
    /// Fold another snapshot in: same-name families are merged
    /// (concatenating samples), the result re-sorted by name.
    pub fn merge(&mut self, other: Snapshot) {
        for fam in other.families {
            if let Some(mine) = self.families.iter_mut().find(|f| f.name == fam.name) {
                mine.samples.extend(fam.samples);
            } else {
                self.families.push(fam);
            }
        }
        self.sort();
    }

    /// Append one family and re-sort.
    pub fn push(&mut self, family: Family) {
        self.families.push(family);
        self.sort();
    }

    /// Look a family up by name.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    fn sort(&mut self) {
        self.families.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A named collection of metric handles. Registration is idempotent on
/// `(name, labels)`: re-registering returns the existing handle, so
/// `OnceLock`-style lazy registration and plain repeated calls both work.
///
/// The registry's internal lock is held only during registration and
/// snapshotting — never on the record path, which is pure atomics on the
/// returned handles.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry (the engine-local counterpart to [`global()`]).
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with constant labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut entries = lock(&self.entries);
        if let Some(e) = find(&entries, name, labels) {
            if let Metric::Counter(c) = &e.metric {
                return c.clone();
            }
        }
        let c = Counter::new();
        entries.push(entry(name, help, labels, Metric::Counter(c.clone())));
        c
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with constant labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut entries = lock(&self.entries);
        if let Some(e) = find(&entries, name, labels) {
            if let Metric::Gauge(g) = &e.metric {
                return g.clone();
            }
        }
        let g = Gauge::new();
        entries.push(entry(name, help, labels, Metric::Gauge(g.clone())));
        g
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a histogram with constant labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut entries = lock(&self.entries);
        if let Some(e) = find(&entries, name, labels) {
            if let Metric::Histogram(h) = &e.metric {
                return h.clone();
            }
        }
        let h = Histogram::new();
        entries.push(entry(name, help, labels, Metric::Histogram(h.clone())));
        h
    }

    /// Snapshot every registered metric into families (sorted by name;
    /// samples in registration order).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let entries = lock(&self.entries);
        let mut snap = Snapshot::default();
        for e in entries.iter() {
            let kind = match e.metric {
                Metric::Counter(_) => MetricKind::Counter,
                Metric::Gauge(_) => MetricKind::Gauge,
                Metric::Histogram(_) => MetricKind::Histogram,
            };
            let fam = match snap.families.iter_mut().find(|f| f.name == e.name) {
                Some(f) => f,
                None => {
                    snap.families.push(Family::new(&e.name, &e.help, kind));
                    snap.families.last_mut().expect("just pushed")
                }
            };
            let labels: Vec<(&str, &str)> =
                e.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match &e.metric {
                Metric::Counter(c) => fam.push_value(&labels, c.get() as f64),
                Metric::Gauge(g) => fam.push_value(&labels, g.get() as f64),
                Metric::Histogram(h) => fam.push_histogram(&labels, h.snapshot()),
            }
        }
        snap.sort();
        snap
    }
}

fn lock(m: &Mutex<Vec<Entry>>) -> std::sync::MutexGuard<'_, Vec<Entry>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn find<'a>(entries: &'a [Entry], name: &str, labels: &[(&str, &str)]) -> Option<&'a Entry> {
    entries.iter().find(|e| {
        e.name == name
            && e.labels.len() == labels.len()
            && e.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv)
    })
}

fn entry(name: &str, help: &str, labels: &[(&str, &str)], metric: Metric) -> Entry {
    Entry { name: name.to_owned(), help: help.to_owned(), labels: own_labels(labels), metric }
}

/// The process-wide registry: home of signals that are inherently
/// process-scoped, like the `kernel::par` morsel counters and the basket
/// seal timings. Engine-scoped series (per-query, per-worker, per-shard)
/// are assembled by `Engine::telemetry_snapshot` instead, so label values
/// like `query="q0"` never collide across engines in one process.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3); // lower: no effect
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn parse_enabled_cases() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("1")));
        assert!(parse_enabled(Some("on")));
        assert!(!parse_enabled(Some("0")));
        assert!(!parse_enabled(Some("off")));
        assert!(!parse_enabled(Some("FALSE")));
        assert!(!parse_enabled(Some(" 0 ")));
    }

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        let g2 = g.clone();
        g.add(10);
        g2.dec();
        assert_eq!(g.get(), 9);
        g.set(-3);
        assert_eq!(g2.get(), -3);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // Bucket 0 covers (0, 1024ns]; 1024 + 1 spills into bucket 1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1024), 0);
        assert_eq!(bucket_index(1025), 1);
        assert_eq!(bucket_index(2048), 1);
        assert_eq!(bucket_index(2049), 2);
        // Everything past the last finite bound lands in +Inf.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(0), Some(1024));
        assert_eq!(bucket_upper_ns(HISTOGRAM_BUCKETS - 2), Some(1u64 << 38));
        assert_eq!(bucket_upper_ns(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn quantiles_at_a_known_distribution() {
        let h = Histogram::new();
        // 90 fast observations at ~1µs, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(Duration::from_nanos(1000));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), Duration::from_nanos(90 * 1000 + 10 * 1_000_000));
        // p50 and p90 sit in the first bucket (≤1024ns); p95/p99 in the
        // bucket holding 1ms (2^20ns = 1048576ns).
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1024));
        assert_eq!(h.quantile(0.90), Duration::from_nanos(1024));
        assert_eq!(h.quantile(0.95), Duration::from_nanos(1 << 20));
        assert_eq!(h.quantile(0.99), Duration::from_nanos(1 << 20));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(1 << 20));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_from_eight_threads_sums_exactly() {
        let h = Histogram::new();
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(Duration::from_nanos(100 + i % 7));
                    }
                });
            }
        });
        assert_eq!(h.count(), 8 * PER_THREAD);
        let expect_ns: u64 = 8 * (0..PER_THREAD).map(|i| 100 + i % 7).sum::<u64>();
        assert_eq!(h.sum(), Duration::from_nanos(expect_ns));
        let snap = h.snapshot();
        assert_eq!(snap.buckets.last().map(|&(_, c)| c), Some(8 * PER_THREAD));
    }

    #[test]
    fn registry_is_idempotent_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("hits_total", "Hits.");
        let b = r.counter("hits_total", "Hits.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let s1 = r.histogram_with("lat_seconds", "Latency.", &[("path", "seq")]);
        let s2 = r.histogram_with("lat_seconds", "Latency.", &[("path", "par")]);
        s1.record(Duration::from_micros(5));
        assert_eq!(s1.count(), 1);
        assert_eq!(s2.count(), 0);

        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 2);
        let lat = snap.family("lat_seconds").expect("family present");
        assert_eq!(lat.kind, MetricKind::Histogram);
        assert_eq!(lat.samples.len(), 2);
        let hits = snap.family("hits_total").expect("family present");
        assert_eq!(hits.samples.len(), 1);
        assert_eq!(hits.samples[0].value, SampleValue::Value(2.0));
    }

    #[test]
    fn snapshot_merge_concatenates_same_name_families() {
        let r = Registry::new();
        r.counter("a_total", "A.");
        let mut snap = r.snapshot();
        let mut extra = Family::new("a_total", "A.", MetricKind::Counter);
        extra.push_value(&[("side", "engine")], 7.0);
        let mut other = Snapshot::default();
        other.push(extra);
        other.push(Family::new("b_total", "B.", MetricKind::Counter));
        snap.merge(other);
        assert_eq!(snap.families.len(), 2);
        assert_eq!(snap.family("a_total").map(|f| f.samples.len()), Some(2));
    }
}
