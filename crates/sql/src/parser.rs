//! Recursive-descent parser lowering the SQL subset to logical plans.

use crate::lexer::{tokenize, Token};
use datacell_kernel::algebra::{AggKind, CmpOp, Predicate};
use datacell_kernel::Value;
use datacell_plan::{AggExpr, ColumnRef, LogicalPlan, WindowSpec};
use std::fmt;

/// A parsed continuous query: relational plan + optional window clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousQuery {
    /// The relational part.
    pub plan: LogicalPlan,
    /// The window clause, if present. Continuous registration requires one;
    /// one-time queries over tables leave it `None`.
    pub window: Option<WindowSpec>,
}

/// Parse errors with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    msg: String,
}

impl SqlError {
    pub(crate) fn new(msg: impl Into<String>) -> SqlError {
        SqlError { msg: msg.into() }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sql error: {}", self.msg)
    }
}

impl std::error::Error for SqlError {}

/// Parse one continuous query.
pub fn parse(input: &str) -> Result<ContinuousQuery, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { toks: tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.toks.len() {
        return Err(SqlError::new(format!("trailing input at token {:?}", p.toks[p.pos])));
    }
    Ok(q)
}

/// One item of the select list, before plan shaping.
#[derive(Debug, Clone)]
enum SelectItem {
    Column { col: RawCol, alias: Option<String> },
    Agg { kind: AggKind, col: Option<RawCol>, alias: Option<String> },
}

/// A possibly-unqualified column name as written.
#[derive(Debug, Clone, PartialEq)]
struct RawCol {
    qualifier: Option<String>,
    attr: String,
}

impl fmt::Display for RawCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.attr),
            None => write!(f, "{}", self.attr),
        }
    }
}

#[derive(Debug, Clone)]
struct Source {
    name: String,
    alias: Option<String>,
}

#[derive(Debug, Clone)]
enum WherePred {
    ColCmp { col: RawCol, pred: Predicate },
    JoinEq { left: RawCol, right: RawCol },
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), SqlError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::new(format!("expected `{s}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    // -- grammar ---------------------------------------------------------

    fn query(&mut self) -> Result<ContinuousQuery, SqlError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let items = self.select_list()?;
        self.expect_kw("from")?;
        let sources = self.source_list()?;
        let mut preds = Vec::new();
        if self.eat_kw("where") {
            preds = self.where_preds()?;
        }
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.raw_col()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.raw_col()?;
            let desc = self.eat_kw("desc");
            if !desc {
                self.eat_kw("asc");
            }
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::new(format!("expected limit count, found {other:?}")))
                }
            }
        } else {
            None
        };
        let window = if self.eat_kw("window") { Some(self.window_clause()?) } else { None };

        let plan =
            shape_plan(ShapeInput { items, distinct, sources, preds, group_by, order_by, limit })?;
        Ok(ContinuousQuery { plan, window })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            let kind = match name.to_ascii_lowercase().as_str() {
                "sum" => Some(AggKind::Sum),
                "count" => Some(AggKind::Count),
                "min" => Some(AggKind::Min),
                "max" => Some(AggKind::Max),
                "avg" => Some(AggKind::Avg),
                _ => None,
            };
            if let Some(kind) = kind {
                if matches!(self.toks.get(self.pos + 1), Some(Token::Sym("("))) {
                    self.pos += 2; // name (
                    let col = if self.eat_sym("*") {
                        if kind != AggKind::Count {
                            return Err(SqlError::new(format!(
                                "{}(*) is not supported",
                                kind.sql()
                            )));
                        }
                        None
                    } else {
                        Some(self.raw_col()?)
                    };
                    self.expect_sym(")")?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg { kind, col, alias });
                }
            }
        }
        let col = self.raw_col()?;
        let alias = self.alias()?;
        Ok(SelectItem::Column { col, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn raw_col(&mut self) -> Result<RawCol, SqlError> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let attr = self.ident()?;
            Ok(RawCol { qualifier: Some(first), attr })
        } else {
            Ok(RawCol { qualifier: None, attr: first })
        }
    }

    fn source_list(&mut self) -> Result<Vec<Source>, SqlError> {
        let mut out = vec![self.source()?];
        while self.eat_sym(",") {
            out.push(self.source()?);
        }
        if out.len() > 2 {
            return Err(SqlError::new("at most two sources are supported"));
        }
        Ok(out)
    }

    fn source(&mut self) -> Result<Source, SqlError> {
        let name = self.ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["where", "group", "order", "limit", "window", "join", "on"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw)) =>
            {
                Some(self.ident()?)
            }
            _ => None,
        };
        Ok(Source { name, alias })
    }

    fn where_preds(&mut self) -> Result<Vec<WherePred>, SqlError> {
        let mut out = vec![self.where_pred()?];
        while self.eat_kw("and") {
            out.push(self.where_pred()?);
        }
        Ok(out)
    }

    fn where_pred(&mut self) -> Result<WherePred, SqlError> {
        let col = self.raw_col()?;
        if self.eat_kw("between") {
            let lo = self.literal()?;
            self.expect_kw("and")?;
            let hi = self.literal()?;
            return Ok(WherePred::ColCmp { col, pred: Predicate::between(lo, hi) });
        }
        let op = match self.next() {
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("<>")) => CmpOp::Ne,
            other => return Err(SqlError::new(format!("expected comparison, found {other:?}"))),
        };
        // Column = column (join condition) or column <op> literal.
        if op == CmpOp::Eq {
            if let Some(Token::Ident(_)) = self.peek() {
                let right = self.raw_col()?;
                return Ok(WherePred::JoinEq { left: col, right });
            }
        }
        let lit = self.literal()?;
        Ok(WherePred::ColCmp { col, pred: Predicate::Cmp(op, lit) })
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            other => Err(SqlError::new(format!("expected literal, found {other:?}"))),
        }
    }

    fn window_clause(&mut self) -> Result<WindowSpec, SqlError> {
        if self.eat_kw("size") {
            let size = self.count()?;
            self.expect_kw("slide")?;
            let step = self.count()?;
            let w = WindowSpec::CountSliding { size, step };
            w.validate().map_err(|e| SqlError::new(e.to_string()))?;
            Ok(w)
        } else if self.eat_kw("range") {
            let n = self.count()? as u64;
            let unit = self.time_unit()?;
            self.expect_kw("slide")?;
            let m = self.count()? as u64;
            let sunit = self.time_unit()?;
            let w = WindowSpec::TimeSliding { size_ms: n * unit, step_ms: m * sunit };
            w.validate().map_err(|e| SqlError::new(e.to_string()))?;
            Ok(w)
        } else if self.eat_kw("landmark") {
            self.expect_kw("slide")?;
            let m = self.count()?;
            // Optional time unit makes it a time-based landmark.
            match self.opt_time_unit() {
                Some(unit) => {
                    let w = WindowSpec::TimeLandmark { step_ms: m as u64 * unit };
                    w.validate().map_err(|e| SqlError::new(e.to_string()))?;
                    Ok(w)
                }
                None => {
                    let w = WindowSpec::CountLandmark { step: m };
                    w.validate().map_err(|e| SqlError::new(e.to_string()))?;
                    Ok(w)
                }
            }
        } else {
            Err(SqlError::new(format!(
                "expected SIZE, RANGE or LANDMARK after WINDOW, found {:?}",
                self.peek()
            )))
        }
    }

    fn count(&mut self) -> Result<usize, SqlError> {
        match self.next() {
            Some(Token::Int(n)) if n > 0 => Ok(n as usize),
            other => Err(SqlError::new(format!("expected positive count, found {other:?}"))),
        }
    }

    fn time_unit(&mut self) -> Result<u64, SqlError> {
        self.opt_time_unit()
            .ok_or_else(|| SqlError::new(format!("expected time unit, found {:?}", self.peek())))
    }

    fn opt_time_unit(&mut self) -> Option<u64> {
        let unit = match self.peek() {
            Some(Token::Ident(s)) => match s.to_ascii_lowercase().as_str() {
                "millisecond" | "milliseconds" | "ms" => Some(1),
                "second" | "seconds" => Some(1_000),
                "minute" | "minutes" => Some(60_000),
                "hour" | "hours" => Some(3_600_000),
                _ => None,
            },
            _ => None,
        }?;
        self.pos += 1;
        Some(unit)
    }
}

// -- plan shaping ---------------------------------------------------------

struct ShapeInput {
    items: Vec<SelectItem>,
    distinct: bool,
    sources: Vec<Source>,
    preds: Vec<WherePred>,
    group_by: Option<RawCol>,
    order_by: Option<(RawCol, bool)>,
    limit: Option<usize>,
}

/// Resolve a raw column against the FROM sources (alias → real name).
fn resolve(col: &RawCol, sources: &[Source]) -> Result<ColumnRef, SqlError> {
    match &col.qualifier {
        Some(q) => {
            let src = sources
                .iter()
                .find(|s| s.alias.as_deref() == Some(q.as_str()) || s.name == *q)
                .ok_or_else(|| SqlError::new(format!("unknown qualifier `{q}` in `{col}`")))?;
            Ok(ColumnRef::new(src.name.clone(), col.attr.clone()))
        }
        None => {
            if sources.len() != 1 {
                return Err(SqlError::new(format!(
                    "column `{col}` must be qualified in a multi-source query"
                )));
            }
            Ok(ColumnRef::new(sources[0].name.clone(), col.attr.clone()))
        }
    }
}

fn shape_plan(input: ShapeInput) -> Result<LogicalPlan, SqlError> {
    let ShapeInput { items, distinct, sources, preds, group_by, order_by, limit } = input;

    // Split WHERE into per-column filters and at most one join condition.
    let mut filters: Vec<(ColumnRef, Predicate)> = Vec::new();
    let mut join: Option<(ColumnRef, ColumnRef)> = None;
    for p in preds {
        match p {
            WherePred::ColCmp { col, pred } => filters.push((resolve(&col, &sources)?, pred)),
            WherePred::JoinEq { left, right } => {
                if join.is_some() {
                    return Err(SqlError::new("at most one join condition is supported"));
                }
                join = Some((resolve(&left, &sources)?, resolve(&right, &sources)?));
            }
        }
    }

    // Base: scan(s) + join.
    let mut plan = match sources.len() {
        1 => LogicalPlan::stream(sources[0].name.clone()),
        2 => {
            let (l_on, r_on) = join.clone().ok_or_else(|| {
                SqlError::new("two-source queries need a join condition (a.x = b.y) in WHERE")
            })?;
            // Orient the condition: left side must belong to source 0.
            let (l_on, r_on) =
                if l_on.source == sources[0].name { (l_on, r_on) } else { (r_on, l_on) };
            if l_on.source != sources[0].name || r_on.source != sources[1].name {
                return Err(SqlError::new("join condition must reference both sources"));
            }
            LogicalPlan::stream(sources[0].name.clone()).join(
                LogicalPlan::stream(sources[1].name.clone()),
                l_on,
                r_on,
            )
        }
        _ => unreachable!("source_list capped at two"),
    };
    if sources.len() == 1 && join.is_some() {
        return Err(SqlError::new("join condition requires two sources"));
    }

    // Filters above scans — the logical optimizer pushes them down.
    for (col, pred) in filters {
        plan = plan.filter(col, pred);
    }

    // Select list shaping.
    let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
    if has_agg || group_by.is_some() {
        let gcol = group_by.map(|g| resolve(&g, &sources)).transpose()?;
        let mut aggs = Vec::new();
        for item in &items {
            match item {
                SelectItem::Agg { kind, col, alias } => {
                    let input = col.as_ref().map(|c| resolve(c, &sources)).transpose()?;
                    let default_name = match (&input, kind) {
                        (Some(c), k) => format!("{}_{}", k.sql(), c.attr),
                        (None, _) => "count_star".to_owned(),
                    };
                    aggs.push(AggExpr {
                        kind: *kind,
                        input,
                        alias: alias.clone().unwrap_or(default_name),
                    });
                }
                SelectItem::Column { col, alias } => {
                    // Plain columns in an aggregate query must be the
                    // group-by key (standard SQL restriction).
                    let c = resolve(col, &sources)?;
                    match &gcol {
                        Some(g) if *g == c => {
                            if alias.is_some() {
                                return Err(SqlError::new(
                                    "aliasing the group-by key is not supported",
                                ));
                            }
                        }
                        _ => {
                            return Err(SqlError::new(format!(
                                "column `{col}` must appear in GROUP BY"
                            )))
                        }
                    }
                }
            }
        }
        // The Aggregate node emits the group key first, then aggregates —
        // require the select list to match that shape.
        if let Some(g) = &gcol {
            let first_is_key = matches!(
                items.first(),
                Some(SelectItem::Column { col, .. }) if resolve(col, &sources).ok().as_ref() == Some(g)
            );
            if !first_is_key {
                return Err(SqlError::new(
                    "grouped queries must list the group-by key as the first select item",
                ));
            }
        }
        plan = plan.aggregate(gcol, aggs);
    } else {
        let mut cols = Vec::new();
        for item in &items {
            match item {
                SelectItem::Column { col, alias } => {
                    let c = resolve(col, &sources)?;
                    let name = alias.clone().unwrap_or_else(|| c.attr.clone());
                    cols.push((c, name));
                }
                SelectItem::Agg { .. } => unreachable!("has_agg checked"),
            }
        }
        plan = plan.project(cols);
        if distinct {
            plan = plan.distinct();
        }
    }
    if distinct && has_agg {
        return Err(SqlError::new("DISTINCT with aggregates is not supported"));
    }

    if let Some((col, desc)) = order_by {
        plan = plan.order_by(resolve(&col, &sources)?, desc);
    }
    if let Some(n) = limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_parses() {
        let q = parse(
            "SELECT x1, sum(x2) FROM stream WHERE x1 > 10 GROUP BY x1 WINDOW SIZE 100 SLIDE 10",
        )
        .unwrap();
        assert_eq!(q.window, Some(WindowSpec::CountSliding { size: 100, step: 10 }));
        let e = q.plan.explain();
        assert!(e.contains("aggregate [sum(stream.x2) as sum_x2] group by stream.x1"));
        assert!(e.contains("filter stream.x1"));
    }

    #[test]
    fn q2_parses_with_aliases() {
        let q = parse(
            "SELECT max(s1.x1), avg(s2.x1) FROM stream1 s1, stream2 s2 \
             WHERE s1.x2 = s2.x2 WINDOW SIZE 64 SLIDE 1",
        )
        .unwrap();
        let e = q.plan.explain();
        assert!(e.contains("join stream1.x2 = stream2.x2"));
        assert!(e.contains("max(stream1.x1) as max_x1"));
        assert!(e.contains("avg(stream2.x1) as avg_x1"));
    }

    #[test]
    fn q3_landmark_parses() {
        let q =
            parse("SELECT max(x1), sum(x2) FROM stream WHERE x1 > 5 WINDOW LANDMARK SLIDE 1000")
                .unwrap();
        assert_eq!(q.window, Some(WindowSpec::CountLandmark { step: 1000 }));
    }

    #[test]
    fn time_window_parses() {
        let q = parse("SELECT avg(x1) FROM s WINDOW RANGE 1 HOURS SLIDE 10 MINUTES").unwrap();
        assert_eq!(
            q.window,
            Some(WindowSpec::TimeSliding { size_ms: 3_600_000, step_ms: 600_000 })
        );
    }

    #[test]
    fn time_landmark_parses() {
        let q = parse("SELECT sum(x) FROM s WINDOW LANDMARK SLIDE 5 SECONDS").unwrap();
        assert_eq!(q.window, Some(WindowSpec::TimeLandmark { step_ms: 5_000 }));
    }

    #[test]
    fn projection_with_alias_and_order() {
        let q =
            parse("SELECT a AS first, b FROM s WHERE a BETWEEN 1 AND 5 ORDER BY a DESC LIMIT 3")
                .unwrap();
        let e = q.plan.explain();
        assert!(e.starts_with("limit 3"));
        assert!(e.contains("order by s.a desc"));
        assert!(e.contains("project [s.a as first, s.b as b]"));
        assert!(q.window.is_none());
    }

    #[test]
    fn distinct_single_column() {
        let q = parse("SELECT DISTINCT a FROM s WINDOW SIZE 4 SLIDE 2").unwrap();
        assert!(q.plan.explain().contains("distinct"));
    }

    #[test]
    fn unqualified_ambiguous_column_rejected() {
        let err = parse("SELECT x FROM a, b WHERE a.k = b.k").unwrap_err();
        assert!(err.to_string().contains("qualified"));
    }

    #[test]
    fn group_key_must_lead_select_list() {
        let err = parse("SELECT sum(x2), x1 FROM s GROUP BY x1").unwrap_err();
        assert!(err.to_string().contains("first select item"));
    }

    #[test]
    fn non_grouped_column_with_agg_rejected() {
        let err = parse("SELECT x3, sum(x2) FROM s GROUP BY x1").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn two_sources_need_join_condition() {
        let err = parse("SELECT max(a.x) FROM a, b").unwrap_err();
        assert!(err.to_string().contains("join condition"));
    }

    #[test]
    fn window_validation_bubbles_up() {
        let err = parse("SELECT sum(x) FROM s WINDOW SIZE 100 SLIDE 30").unwrap_err();
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    fn count_star_supported_sum_star_rejected() {
        let q = parse("SELECT count(*) FROM s WHERE x > 0 WINDOW SIZE 2 SLIDE 1").unwrap();
        assert!(q.plan.explain().contains("count(*) as count_star"));
        assert!(parse("SELECT sum(*) FROM s").is_err());
    }

    #[test]
    fn join_condition_reorients() {
        // Condition written right-to-left still compiles with source order.
        let q = parse("SELECT max(a.x) FROM a, b WHERE b.k = a.k").unwrap();
        assert!(q.plan.explain().contains("join a.k = b.k"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT a FROM s xyzzy plugh").is_err());
        assert!(parse("SELECT a FROM s WINDOW SIZE 2 SLIDE 1 garbage").is_err());
    }

    #[test]
    fn between_inclusive() {
        let q = parse("SELECT a FROM s WHERE a BETWEEN 2 AND 4").unwrap();
        assert!(q.plan.explain().contains("Range"));
    }

    #[test]
    fn string_literal_predicate() {
        let q = parse("SELECT a FROM s WHERE tag = 'alert'").unwrap();
        assert!(q.plan.explain().contains("alert"));
    }
}
