//! # datacell-sql
//!
//! A SQL front-end for DataCell continuous queries. The paper extends the
//! SQL compiler "with a few orthogonal language constructs to recognize and
//! process continuous queries" (§2); this crate implements the analogous
//! subset:
//!
//! ```sql
//! SELECT x1, sum(x2) FROM stream
//! WHERE x1 > 10
//! GROUP BY x1
//! WINDOW SIZE 1000 SLIDE 100
//! ```
//!
//! Supported surface:
//!
//! * select lists of (possibly aliased) columns and aggregates
//!   (`sum`/`count`/`min`/`max`/`avg`), `DISTINCT` single-column queries;
//! * `FROM` with one or two sources (comma join), table or stream;
//! * `WHERE` conjunctions of single-column comparisons (`<`, `<=`, `>`,
//!   `>=`, `=`, `<>`, `BETWEEN ... AND ...`) and one column = column
//!   equality (the join condition, Q2-style);
//! * `GROUP BY`, `ORDER BY ... [DESC]`, `LIMIT n`;
//! * window clauses: `WINDOW SIZE n SLIDE m` (count-based),
//!   `WINDOW RANGE n <unit> SLIDE m <unit>` (time-based),
//!   `WINDOW LANDMARK SLIDE m [<unit>]` (landmark), with units
//!   `MILLISECONDS|SECONDS|MINUTES|HOURS`.
//!
//! The parser performs alias resolution and lowers to a
//! [`datacell_plan::LogicalPlan`] plus an optional
//! [`datacell_plan::WindowSpec`].

pub mod corpus;
mod lexer;
mod parser;

pub use corpus::{corpus, corpus_streams, CorpusEntry};
pub use lexer::{tokenize, Token};
pub use parser::{parse, ContinuousQuery, SqlError};
