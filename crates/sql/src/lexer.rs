//! SQL tokenizer.

use crate::parser::SqlError;

/// A lexical token. Keywords are case-insensitive and surface as uppercase
/// `Ident`s matched by the parser, which keeps the lexer trivial.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved in `.0`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// A symbol: one of `, . ( ) * = < > <= >= <>`.
    Sym(&'static str),
}

impl Token {
    /// Does this token match a (case-insensitive) keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Sym(","));
                i += 1;
            }
            '.' => {
                out.push(Token::Sym("."));
                i += 1;
            }
            '(' => {
                out.push(Token::Sym("("));
                i += 1;
            }
            ')' => {
                out.push(Token::Sym(")"));
                i += 1;
            }
            '*' => {
                out.push(Token::Sym("*"));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SqlError::new("unterminated string literal"));
                }
                out.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || (c == '-' && starts_number(bytes, i)) => {
                let start = i;
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !is_float
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && bytes
                            .get(j + 1)
                            .is_some_and(|b| b.is_ascii_digit() || *b == b'-' || *b == b'+')
                    {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| SqlError::new(format!("bad float `{text}`: {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| SqlError::new(format!("bad int `{text}`: {e}")))?;
                    out.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..j].to_owned()));
                i = j;
            }
            other => return Err(SqlError::new(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn starts_number(bytes: &[u8], i: usize) -> bool {
    bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q1() {
        let toks = tokenize("SELECT x1, sum(x2) FROM stream WHERE x1 > 10 GROUP BY x1").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("x1".into()));
        assert_eq!(toks[2], Token::Sym(","));
        assert!(toks.contains(&Token::Sym(">")));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn two_char_operators() {
        let toks = tokenize("a <= b >= c <> d").unwrap();
        assert_eq!(toks[1], Token::Sym("<="));
        assert_eq!(toks[3], Token::Sym(">="));
        assert_eq!(toks[5], Token::Sym("<>"));
    }

    #[test]
    fn numbers_int_float_negative_scientific() {
        let toks = tokenize("42 -7 2.5 -0.5 1e3 2.5e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(2.5),
                Token::Float(-0.5),
                Token::Float(1000.0),
                Token::Float(0.025),
            ]
        );
    }

    #[test]
    fn minus_without_digit_is_error() {
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn string_literals() {
        let toks = tokenize("name = 'hello world'").unwrap();
        assert_eq!(toks[2], Token::Str("hello world".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn qualified_names_and_parens() {
        let toks = tokenize("max(s1.x1)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("max".into()),
                Token::Sym("("),
                Token::Ident("s1".into()),
                Token::Sym("."),
                Token::Ident("x1".into()),
                Token::Sym(")"),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select SELECT SeLeCt").unwrap();
        assert!(toks.iter().all(|t| t.is_kw("select")));
    }

    #[test]
    fn count_star() {
        let toks = tokenize("count(*)").unwrap();
        assert_eq!(toks[2], Token::Sym("*"));
    }
}
