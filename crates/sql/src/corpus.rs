//! A named corpus of continuous queries covering the supported SQL surface.
//!
//! The corpus exists so static analysis has a fixed population of plans to
//! chew on: the `lint` binary (and the verifier test-suite) compiles every
//! entry and runs `datacell_plan::verify` over the result, end to end
//! through the optimizer and the incremental rewriter. Every syntactic
//! feature the parser accepts should appear in at least one entry; when the
//! front-end grows a construct, add a query here so the verifier sees it.
//!
//! Queries are written against the canonical schemas returned by
//! [`corpus_streams`]: a numeric stream `s`, a pair of joinable streams
//! `a`/`b`, and a log stream `logs` with a string column.

use datacell_kernel::DataType;

/// One corpus entry: a short stable name (used in diagnostics) and the SQL.
pub type CorpusEntry = (&'static str, &'static str);

/// Stream schemas the corpus queries are written against.
///
/// Returns `(stream_name, [(column, type), ..])` tuples, suitable for
/// registering streams on an engine or for seeding a
/// [`datacell_plan::SchemaOverlay`].
#[must_use]
pub fn corpus_streams() -> Vec<(&'static str, Vec<(&'static str, DataType)>)> {
    vec![
        (
            "s",
            vec![
                ("x1", DataType::Int),
                ("x2", DataType::Int),
                ("k", DataType::Int),
                ("v", DataType::Int),
                ("w", DataType::Float),
            ],
        ),
        ("a", vec![("k", DataType::Int)]),
        ("b", vec![("k", DataType::Int)]),
        ("logs", vec![("level", DataType::Str), ("code", DataType::Int)]),
    ]
}

/// Every SQL test query shape, deduplicated and renamed onto the canonical
/// corpus schemas. Each entry must parse, compile, verify clean, and survive
/// the incremental rewriter.
#[must_use]
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        // Plain filters and projections.
        ("filter-lt", "SELECT x1 FROM s WHERE x1 < 10 WINDOW SIZE 4 SLIDE 2"),
        ("project-three", "SELECT k, v, w FROM s WHERE v > 5 WINDOW SIZE 4 SLIDE 2"),
        ("string-eq", "SELECT code FROM logs WHERE level = 'err' WINDOW SIZE 3 SLIDE 3"),
        // Scalar aggregates, one per kind plus alias and count(*) forms.
        ("sum-filtered", "SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 4"),
        ("avg-filtered", "SELECT avg(x1) FROM s WHERE x1 < 10 WINDOW SIZE 4 SLIDE 2"),
        (
            "min-max-avg-float",
            "SELECT min(w), max(w), avg(w) FROM s WHERE w >= 0.5 WINDOW SIZE 4 SLIDE 4",
        ),
        ("count-between", "SELECT count(k) FROM s WHERE k BETWEEN 2 AND 4 WINDOW SIZE 6 SLIDE 6"),
        ("count-neq", "SELECT count(k) FROM s WHERE k <> 3 WINDOW SIZE 4 SLIDE 4"),
        ("count-star", "SELECT count(*) FROM s WHERE k > 1 WINDOW SIZE 3 SLIDE 3"),
        (
            "conjunction",
            "SELECT sum(v) FROM s WHERE k > 1 AND v < 50 AND w >= 0.0 WINDOW SIZE 4 SLIDE 4",
        ),
        ("aliases", "SELECT sum(v) AS total, count(v) AS n FROM s WINDOW SIZE 2 SLIDE 2"),
        // Grouped aggregation, including the full five-aggregate fusion shape.
        (
            "group-all-aggs",
            "SELECT k, sum(v), count(v), min(v), max(v), avg(v) FROM s GROUP BY k \
             WINDOW SIZE 6 SLIDE 6",
        ),
        (
            "group-filtered",
            "SELECT x1, sum(x2) FROM s WHERE x1 > 2 GROUP BY x1 WINDOW SIZE 8 SLIDE 2",
        ),
        (
            "group-str-key",
            "SELECT level, count(code) FROM logs GROUP BY level WINDOW SIZE 4 SLIDE 4",
        ),
        // Ordering, limits, distinct.
        ("order-by", "SELECT k FROM s ORDER BY k WINDOW SIZE 4 SLIDE 4"),
        ("order-desc-limit", "SELECT x1 FROM s ORDER BY x1 DESC LIMIT 2 WINDOW SIZE 4 SLIDE 2"),
        ("distinct", "SELECT DISTINCT x1 FROM s WINDOW SIZE 4 SLIDE 2"),
        // Joins.
        ("stream-join", "SELECT count(a.k) FROM a, b WHERE a.k = b.k WINDOW SIZE 2 SLIDE 1"),
        // Window-clause variants: time range and landmark.
        ("time-range", "SELECT count(x1) FROM s WINDOW RANGE 20 MS SLIDE 10 MS"),
        ("landmark", "SELECT count(k) FROM s WINDOW LANDMARK SLIDE 10 MS"),
        ("landmark-multi", "SELECT max(x1), sum(x2) FROM s WINDOW LANDMARK SLIDE 3"),
        (
            "landmark-filtered",
            "SELECT max(x1), sum(x2) FROM s WHERE x1 > 0 WINDOW LANDMARK SLIDE 3",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_parses_and_names_are_unique() {
        let mut seen = HashSet::new();
        for (name, sql) in corpus() {
            assert!(seen.insert(name), "duplicate corpus name {name}");
            let q = crate::parse(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(q.window.is_some(), "{name}: corpus queries carry a window clause");
        }
    }

    #[test]
    fn corpus_columns_exist_in_declared_schemas() {
        let streams = corpus_streams();
        for (stream, cols) in &streams {
            assert!(!cols.is_empty(), "stream {stream} has no columns");
        }
    }
}
