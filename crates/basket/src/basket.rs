//! The basket: DataCell's stream buffer.
//!
//! "When an event stream enters the system via a receptor, stream tuples are
//! immediately stored in a lightweight table, called basket. [...] Once a
//! tuple has been seen by all relevant queries/operators, it is dropped from
//! its basket." (paper §2)
//!
//! A basket is an append-only multi-column buffer with a moving front:
//! tuples keep their global stream position ([`datacell_kernel::Oid`])
//! forever, and expiring a prefix only advances `base_oid`. Factories track
//! how far they have consumed by oid, so multiple standing queries can read
//! the same basket at different speeds; the engine expires tuples only up to
//! the *minimum* consumed position across queries.

use crate::window::BasicWindow;
use datacell_kernel::{Column, DataType, KernelError, Oid, Value};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Arrival timestamps: milliseconds on a logical clock. The engine decides
/// whether this is wall-clock time or a synthetic tick (experiments use
/// synthetic ticks for determinism).
pub type Timestamp = u64;

/// Errors raised by basket operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BasketError {
    /// Batch columns have inconsistent lengths or wrong arity.
    Malformed(String),
    /// Type error from the kernel while appending.
    Kernel(KernelError),
    /// Requested range is not (fully) resident: it was either expired or has
    /// not arrived yet.
    RangeUnavailable {
        /// First oid requested.
        from: Oid,
        /// Number of tuples requested.
        count: usize,
        /// First resident oid.
        base: Oid,
        /// One past the last resident oid.
        end: Oid,
    },
    /// Column name not in the basket schema.
    UnknownColumn(String),
}

impl fmt::Display for BasketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasketError::Malformed(m) => write!(f, "malformed batch: {m}"),
            BasketError::Kernel(e) => write!(f, "kernel: {e}"),
            BasketError::RangeUnavailable { from, count, base, end } => write!(
                f,
                "range [{from}, {}) unavailable: resident [{base}, {end})",
                from + *count as u64
            ),
            BasketError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
        }
    }
}

impl std::error::Error for BasketError {}

impl From<KernelError> for BasketError {
    fn from(e: KernelError) -> Self {
        BasketError::Kernel(e)
    }
}

/// Validate a batch against a schema *before any state is mutated*:
/// arity, column alignment and column types. Returns the row count.
///
/// Shared by [`Basket::append_with_ts`] and the sharded staging path
/// ([`crate::ShardedBasket`]), so both ingest edges reject exactly the
/// same batches with the same errors — and so a rejected batch can never
/// leave a torn basket (some columns extended, others not, timestamps
/// misaligned with oids) or a permanent gap in the sharded oid sequence.
pub(crate) fn validate_batch(
    name: &str,
    schema: &[(String, DataType)],
    batch: &[Column],
) -> crate::Result<usize> {
    if batch.len() != schema.len() {
        return Err(BasketError::Malformed(format!(
            "{}: batch arity {} != schema arity {}",
            name,
            batch.len(),
            schema.len()
        )));
    }
    let n = batch.first().map_or(0, datacell_kernel::Column::len);
    for (i, c) in batch.iter().enumerate() {
        if c.len() != n {
            return Err(BasketError::Malformed(format!(
                "{}: column {} has {} rows, expected {}",
                name,
                schema[i].0,
                c.len(),
                n
            )));
        }
        if c.data_type() != schema[i].1 {
            return Err(BasketError::Malformed(format!(
                "{}: column {} is {:?}, schema says {:?}",
                name,
                schema[i].0,
                c.data_type(),
                schema[i].1
            )));
        }
    }
    Ok(n)
}

/// A stream buffer: named, typed columns plus per-tuple arrival timestamps.
#[derive(Debug, Clone)]
pub struct Basket {
    name: String,
    schema: Vec<(String, DataType)>,
    cols: Vec<Column>,
    ts: Vec<Timestamp>,
    /// Oid of the first resident tuple.
    base_oid: Oid,
    /// High-water mark of every timestamp ever appended. Unlike
    /// `ts.last()` this survives expiry, so the non-decreasing-stamp rule
    /// holds across a basket drained to empty — the invariant the sharded
    /// seal path ([`crate::ShardedBasket`]) relies on when it re-appends
    /// staged segments on top of an expired prefix.
    last_ts: Option<Timestamp>,
}

impl Basket {
    /// Create an empty basket with the given schema.
    pub fn new(name: impl Into<String>, schema: &[(&str, DataType)]) -> Basket {
        Basket {
            name: name.into(),
            schema: schema.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
            cols: schema.iter().map(|(_, t)| Column::empty(*t)).collect(),
            ts: Vec::new(),
            base_oid: 0,
            last_ts: None,
        }
    }

    /// Basket (stream) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema: attribute names and types in declaration order.
    pub fn schema(&self) -> &[(String, DataType)] {
        &self.schema
    }

    /// Position of a named attribute.
    pub fn col_index(&self, name: &str) -> crate::Result<usize> {
        self.schema
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| BasketError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Number of resident (not yet expired) tuples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when no tuples are resident.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Oid of the first resident tuple.
    pub fn base_oid(&self) -> Oid {
        self.base_oid
    }

    /// One past the oid of the last resident tuple — equivalently, the total
    /// number of tuples that ever entered this basket.
    pub fn end_oid(&self) -> Oid {
        self.base_oid + self.ts.len() as u64
    }

    /// Timestamp of the newest resident tuple.
    pub fn latest_ts(&self) -> Option<Timestamp> {
        self.ts.last().copied()
    }

    /// Highest timestamp ever appended, surviving expiry (`None` only on
    /// a basket that never held a tuple). `latest_ts` forgets stamps when
    /// the prefix holding them is expired; this mark does not, so it is
    /// the correct lower bound for the next append's stamp even on a
    /// basket drained to empty.
    pub fn ts_high_water(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// Timestamp of tuple `oid`, if resident.
    pub fn ts_at(&self, oid: Oid) -> Option<Timestamp> {
        if oid < self.base_oid || oid >= self.end_oid() {
            return None;
        }
        Some(self.ts[(oid - self.base_oid) as usize])
    }

    /// Append a batch of aligned columns, all tuples stamped `now`.
    /// Returns the oid of the first appended tuple.
    ///
    /// Timestamps must be non-decreasing across appends (streams arrive in
    /// order); a violation is a receptor bug and is reported as `Malformed`.
    pub fn append(&mut self, batch: &[Column], now: Timestamp) -> crate::Result<Oid> {
        self.append_with_ts(batch, |_| now)
    }

    /// Append a batch with a per-row timestamp function (row index within
    /// the batch → timestamp). Used by replay receptors that carry original
    /// generation times.
    pub fn append_with_ts(
        &mut self,
        batch: &[Column],
        ts_of: impl Fn(usize) -> Timestamp,
    ) -> crate::Result<Oid> {
        let n = validate_batch(&self.name, &self.schema, batch)?;
        if n == 0 {
            return Ok(self.end_oid());
        }
        let first_ts = ts_of(0);
        if let Some(last) = self.last_ts {
            // Checked against the expiry-surviving high-water mark, not
            // `ts.last()`: a basket drained to empty must still reject
            // stamps older than what it has already seen.
            if first_ts < last {
                return Err(BasketError::Malformed(format!(
                    "{}: timestamps must be non-decreasing ({} < {})",
                    self.name, first_ts, last
                )));
            }
        }
        let start = self.end_oid();
        for (dst, src) in self.cols.iter_mut().zip(batch) {
            // Cannot fail: `validate_batch` checked types above, so the
            // batch can never tear the basket mid-append.
            dst.append(src)?;
        }
        let mut prev = first_ts;
        for i in 0..n {
            let t = ts_of(i);
            debug_assert!(t >= prev, "per-row timestamps must be non-decreasing");
            prev = t;
            self.ts.push(t);
        }
        self.last_ts = Some(prev);
        Ok(start)
    }

    /// Append an owned batch with per-row timestamps, *moving* the column
    /// payloads in (string values transfer ownership instead of cloning).
    /// The sharded seal stitches staged segments into owned sub-batches on
    /// worker threads and lands them here, so the serial tail of the seal
    /// is a short splice rather than a second full copy.
    pub fn append_stitched(
        &mut self,
        mut batch: Vec<Column>,
        ts: Vec<Timestamp>,
    ) -> crate::Result<Oid> {
        let n = validate_batch(&self.name, &self.schema, &batch)?;
        if n == 0 {
            return Ok(self.end_oid());
        }
        if ts.len() != n {
            return Err(BasketError::Malformed(format!(
                "{}: {} timestamps for {} rows",
                self.name,
                ts.len(),
                n
            )));
        }
        let first_ts = ts[0];
        if let Some(last) = self.last_ts {
            if first_ts < last {
                return Err(BasketError::Malformed(format!(
                    "{}: timestamps must be non-decreasing ({} < {})",
                    self.name, first_ts, last
                )));
            }
        }
        let start = self.end_oid();
        for (dst, src) in self.cols.iter_mut().zip(&mut batch) {
            // Cannot fail: `validate_batch` checked types above.
            dst.append_owned(src)?;
        }
        debug_assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "per-row timestamps must be non-decreasing"
        );
        self.last_ts = Some(*ts.last().expect("n > 0"));
        self.ts.extend(ts);
        Ok(start)
    }

    /// Append a single row of values (receptor convenience / tests).
    pub fn append_row(&mut self, row: &[Value], now: Timestamp) -> crate::Result<Oid> {
        let batch: Vec<Column> = row
            .iter()
            .map(|v| {
                let mut c = Column::empty(v.data_type());
                c.push(v.clone()).expect("same type");
                c
            })
            .collect();
        self.append(&batch, now)
    }

    /// Read tuples `[from, from + count)` as an owned [`BasicWindow`].
    ///
    /// This is the paper's `basket.getLatest(input, stepsize)`: the factory
    /// asks for the next unprocessed step-sized batch. Fails if part of the
    /// range has expired or has not yet arrived.
    pub fn read_range(&self, from: Oid, count: usize) -> crate::Result<BasicWindow> {
        let end = from + count as u64;
        if from < self.base_oid || end > self.end_oid() {
            return Err(BasketError::RangeUnavailable {
                from,
                count,
                base: self.base_oid,
                end: self.end_oid(),
            });
        }
        let off = (from - self.base_oid) as usize;
        let cols = self.cols.iter().map(|c| c.slice_owned(off, count)).collect();
        let ts = self.ts[off..off + count].to_vec();
        Ok(BasicWindow::new(from, cols, ts, self.names()))
    }

    /// Read all resident tuples with `oid >= from` whose timestamp is
    /// `< until` (time-based windows slice the stream by arrival interval).
    pub fn read_until_ts(&self, from: Oid, until: Timestamp) -> crate::Result<BasicWindow> {
        if from < self.base_oid {
            return Err(BasketError::RangeUnavailable {
                from,
                count: 0,
                base: self.base_oid,
                end: self.end_oid(),
            });
        }
        let off = (from - self.base_oid) as usize;
        // Timestamps are sorted: binary search for the first ts >= until.
        let upper = self.ts.partition_point(|&t| t < until);
        let count = upper.saturating_sub(off);
        self.read_range(from, count)
    }

    /// Number of resident tuples with oid `>= from` (how much unconsumed
    /// input a factory has).
    pub fn available_from(&self, from: Oid) -> usize {
        (self.end_oid().saturating_sub(from.max(self.base_oid))) as usize
    }

    /// Drop all tuples with `oid < upto` — the paper's
    /// `basket.delete(input, wexp)`. Expiring past the end is capped.
    pub fn expire_upto(&mut self, upto: Oid) {
        let upto = upto.min(self.end_oid());
        if upto <= self.base_oid {
            return;
        }
        let n = (upto - self.base_oid) as usize;
        for c in &mut self.cols {
            c.drain_front(n);
        }
        self.ts.drain(..n);
        self.base_oid = upto;
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<String> {
        self.schema.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Snapshot the resident content as a BasicWindow (tests, emitters).
    pub fn snapshot(&self) -> BasicWindow {
        self.read_range(self.base_oid, self.len()).expect("full resident range")
    }
}

/// A basket behind a mutex — the shared handle receptors, factories and
/// emitters use concurrently. Cloning shares the underlying basket.
#[derive(Debug, Clone)]
pub struct SharedBasket {
    inner: Arc<Mutex<Basket>>,
}

impl SharedBasket {
    /// Wrap a basket for shared use.
    pub fn new(basket: Basket) -> SharedBasket {
        SharedBasket { inner: Arc::new(Mutex::new(basket)) }
    }

    /// Run `f` with the basket locked — the paper's lock/unlock bracket.
    pub fn with<R>(&self, f: impl FnOnce(&mut Basket) -> R) -> R {
        let mut guard = self.inner.lock();
        f(&mut guard)
    }

    /// Append under the lock.
    pub fn append(&self, batch: &[Column], now: Timestamp) -> crate::Result<Oid> {
        self.with(|b| b.append(batch, now))
    }

    /// Resident tuple count.
    pub fn len(&self) -> usize {
        self.with(|b| b.len())
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Oid of the first resident tuple (the expiry front).
    pub fn base_oid(&self) -> Oid {
        self.with(|b| b.base_oid())
    }

    /// One past the newest oid — the total number of tuples ever appended.
    /// Monotonically non-decreasing, so schedulers can poll it as a cheap
    /// growth signal: `end_oid() > mark` means the place gained tokens
    /// since `mark` was taken, and a reader that saw `end_oid() == e` is
    /// guaranteed every oid below `e` is either readable or already
    /// consumed past (never silently skipped).
    pub fn end_oid(&self) -> Oid {
        self.with(|b| b.end_oid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basket() -> Basket {
        Basket::new("s", &[("x", DataType::Int), ("y", DataType::Float)])
    }

    fn batch(xs: Vec<i64>, ys: Vec<f64>) -> Vec<Column> {
        vec![Column::Int(xs), Column::Float(ys)]
    }

    #[test]
    fn append_assigns_global_oids() {
        let mut b = basket();
        assert_eq!(b.append(&batch(vec![1, 2], vec![0.1, 0.2]), 10).unwrap(), 0);
        assert_eq!(b.append(&batch(vec![3], vec![0.3]), 11).unwrap(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.base_oid(), 0);
        assert_eq!(b.end_oid(), 3);
    }

    #[test]
    fn append_validates_arity_and_alignment() {
        let mut b = basket();
        assert!(b.append(&[Column::Int(vec![1])], 0).is_err());
        assert!(b.append(&batch(vec![1, 2], vec![0.1]), 0).is_err());
    }

    #[test]
    fn type_mismatched_batch_cannot_tear_the_basket() {
        // Regression: a batch whose *second* column has the wrong type
        // used to extend the first column before erroring, permanently
        // skewing values against oids/timestamps. Validation now runs
        // before any mutation, so the basket stays intact.
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 0).unwrap();
        let err = b.append(&[Column::Int(vec![2]), Column::Int(vec![3])], 1).unwrap_err();
        assert!(matches!(err, BasketError::Malformed(_)));
        assert_eq!(b.len(), 1);
        let w = b.snapshot();
        assert_eq!(w.col(0).unwrap(), &Column::Int(vec![1])); // no phantom row
                                                              // The stream continues cleanly aligned.
        b.append(&batch(vec![4], vec![0.4]), 2).unwrap();
        let w = b.snapshot();
        assert_eq!(w.col(0).unwrap(), &Column::Int(vec![1, 4]));
        assert_eq!(w.col(1).unwrap(), &Column::Float(vec![0.1, 0.4]));
        assert_eq!(w.timestamps(), &[0, 2]);
    }

    #[test]
    fn append_rejects_time_regression() {
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 100).unwrap();
        assert!(b.append(&batch(vec![2], vec![0.2]), 99).is_err());
        assert!(b.append(&batch(vec![2], vec![0.2]), 100).is_ok()); // equal ok
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 5).unwrap();
        let oid = b.append(&batch(vec![], vec![]), 1).unwrap(); // stale ts ok for empty
        assert_eq!(oid, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn read_range_returns_owned_window() {
        let mut b = basket();
        b.append(&batch(vec![1, 2, 3, 4], vec![0.1, 0.2, 0.3, 0.4]), 7).unwrap();
        let w = b.read_range(1, 2).unwrap();
        assert_eq!(w.base_oid(), 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.col(0).unwrap(), &Column::Int(vec![2, 3]));
        assert_eq!(w.timestamps(), &[7, 7]);
    }

    #[test]
    fn read_range_unavailable_not_arrived() {
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 0).unwrap();
        let err = b.read_range(0, 2).unwrap_err();
        assert!(matches!(err, BasketError::RangeUnavailable { .. }));
    }

    #[test]
    fn expire_advances_base_and_keeps_oids_stable() {
        let mut b = basket();
        b.append(&batch(vec![1, 2, 3], vec![0.1, 0.2, 0.3]), 0).unwrap();
        b.expire_upto(2);
        assert_eq!(b.base_oid(), 2);
        assert_eq!(b.len(), 1);
        // Oid 2 still readable, oid 1 gone.
        assert!(b.read_range(2, 1).is_ok());
        assert!(b.read_range(1, 1).is_err());
        // Appends continue the global sequence.
        assert_eq!(b.append(&batch(vec![4], vec![0.4]), 1).unwrap(), 3);
    }

    #[test]
    fn expire_is_idempotent_and_capped() {
        let mut b = basket();
        b.append(&batch(vec![1, 2], vec![0.1, 0.2]), 0).unwrap();
        b.expire_upto(1);
        b.expire_upto(1);
        assert_eq!(b.len(), 1);
        b.expire_upto(100);
        assert_eq!(b.len(), 0);
        assert_eq!(b.base_oid(), 2);
    }

    #[test]
    fn available_from_counts_unconsumed() {
        let mut b = basket();
        b.append(&batch(vec![1, 2, 3], vec![0.1, 0.2, 0.3]), 0).unwrap();
        assert_eq!(b.available_from(0), 3);
        assert_eq!(b.available_from(2), 1);
        assert_eq!(b.available_from(5), 0);
        b.expire_upto(1);
        assert_eq!(b.available_from(0), 2); // clamped to resident range
    }

    #[test]
    fn read_until_ts_slices_by_time() {
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 10).unwrap();
        b.append(&batch(vec![2], vec![0.2]), 20).unwrap();
        b.append(&batch(vec![3], vec![0.3]), 30).unwrap();
        let w = b.read_until_ts(0, 25).unwrap();
        assert_eq!(w.len(), 2);
        let w = b.read_until_ts(1, 25).unwrap();
        assert_eq!(w.len(), 1);
        let w = b.read_until_ts(0, 5).unwrap();
        assert_eq!(w.len(), 0); // empty basic window — recognized, not an error
    }

    #[test]
    fn time_regression_rejected_even_after_drain_to_empty() {
        // Regression (sharded-seal audit): the non-decreasing-stamp rule
        // used to be checked against `ts.last()`, which a drain-to-empty
        // resets — letting time silently run backwards across expiry.
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 100).unwrap();
        b.expire_upto(b.end_oid());
        assert!(b.is_empty());
        assert_eq!(b.latest_ts(), None); // resident view forgets...
        assert_eq!(b.ts_high_water(), Some(100)); // ...the mark does not
        assert!(b.append(&batch(vec![2], vec![0.2]), 99).is_err());
        assert!(b.append(&batch(vec![2], vec![0.2]), 100).is_ok());
        assert_eq!(b.ts_high_water(), Some(100));
    }

    #[test]
    fn drained_to_empty_basket_keeps_end_oid_stable() {
        // The sharded seal frontier is `end_oid()`; it must not move when
        // a basket is drained to empty, and the next append must continue
        // the global oid sequence exactly where it left off.
        let mut b = basket();
        b.append(&batch(vec![1, 2, 3], vec![0.1, 0.2, 0.3]), 5).unwrap();
        b.expire_upto(b.end_oid());
        assert!(b.is_empty());
        assert_eq!(b.base_oid(), 3);
        assert_eq!(b.end_oid(), 3); // base == end on drained-to-empty
        assert_eq!(b.available_from(0), 0);
        // Zero-width reads at the frontier stay valid (empty window, not
        // an error) — callers that compute `read_range(end, 0)` on an
        // empty basket are in bounds.
        assert_eq!(b.read_range(3, 0).unwrap().len(), 0);
        assert!(b.read_range(2, 1).is_err());
        assert_eq!(b.append(&batch(vec![4], vec![0.4]), 6).unwrap(), 3);
        assert_eq!(b.end_oid(), 4);
    }

    #[test]
    fn ts_at_and_latest() {
        let mut b = basket();
        assert_eq!(b.latest_ts(), None);
        b.append(&batch(vec![1, 2], vec![0.1, 0.2]), 42).unwrap();
        assert_eq!(b.latest_ts(), Some(42));
        assert_eq!(b.ts_at(1), Some(42));
        assert_eq!(b.ts_at(2), None);
    }

    #[test]
    fn append_row_convenience() {
        let mut b = basket();
        b.append_row(&[Value::Int(9), Value::Float(0.9)], 1).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.append_row(&[Value::Int(9)], 2).is_err());
    }

    #[test]
    fn shared_basket_locking() {
        let sb = SharedBasket::new(basket());
        let sb2 = sb.clone();
        sb.append(&batch(vec![1], vec![0.1]), 0).unwrap();
        assert_eq!(sb2.len(), 1);
        let n = sb.with(|b| {
            b.append(&batch(vec![2], vec![0.2]), 1).unwrap();
            b.len()
        });
        assert_eq!(n, 2);
        assert!(!sb.is_empty());
    }

    #[test]
    fn col_index_lookup() {
        let b = basket();
        assert_eq!(b.col_index("y").unwrap(), 1);
        assert!(b.col_index("zzz").is_err());
    }

    #[test]
    fn snapshot_covers_resident() {
        let mut b = basket();
        b.append(&batch(vec![1, 2], vec![0.1, 0.2]), 0).unwrap();
        b.expire_upto(1);
        let s = b.snapshot();
        assert_eq!(s.base_oid(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn append_with_per_row_ts() {
        let mut b = basket();
        b.append_with_ts(&batch(vec![1, 2, 3], vec![0.1, 0.2, 0.3]), |i| 10 * (i as u64 + 1))
            .unwrap();
        assert_eq!(b.ts_at(0), Some(10));
        assert_eq!(b.ts_at(2), Some(30));
    }

    #[test]
    fn append_stitched_moves_batch_and_checks_shapes() {
        let mut b = basket();
        b.append(&batch(vec![1], vec![0.1]), 10).unwrap();
        let start = b.append_stitched(batch(vec![2, 3], vec![0.2, 0.3]), vec![10, 12]).unwrap();
        assert_eq!(start, 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ts_at(1), Some(10));
        assert_eq!(b.ts_at(2), Some(12));
        // Same rejections as the borrowing append: ts regression, ts/row
        // count mismatch, schema mismatch. Empty batch is a no-op.
        assert!(b.append_stitched(batch(vec![4], vec![0.4]), vec![5]).is_err());
        assert!(b.append_stitched(batch(vec![4], vec![0.4]), vec![12, 13]).is_err());
        assert!(b.append_stitched(vec![Column::Int(vec![4])], vec![12]).is_err());
        assert_eq!(b.append_stitched(batch(vec![], vec![]), vec![]).unwrap(), 3);
        assert_eq!(b.len(), 3);
    }
}
