//! # datacell-basket
//!
//! The stream edges of the DataCell architecture (paper Fig. 1):
//!
//! * [`Basket`] — the "lightweight table" into which receptors drop arriving
//!   stream tuples and out of which factories read windows. Baskets tag every
//!   tuple with an arrival timestamp and a global, monotonically increasing
//!   oid (its position in the stream since the beginning of time), and they
//!   support the paper's primitive operations: `append`, `getLatest`
//!   (here: [`Basket::read_range`]), `delete` of expired prefixes
//!   ([`Basket::expire_upto`]) and `split` into basic windows
//!   ([`BasicWindow::split`]).
//! * [`SharedBasket`] — a basket behind a `parking_lot` mutex, the
//!   `basket.lock()` / `basket.unlock()` pairs of the paper's Algorithms 1–2.
//! * [`ShardedBasket`] — the scaled ingest edge: N independently-locked
//!   staging shards plus a global oid/clock allocator, so many receptors
//!   append without contending on one mutex; a seal step merges shards
//!   into the ordered [`SharedBasket`] view factories read. One shard
//!   dispatches to the single-mutex path, byte-identical.
//! * [`receptor`] — CSV and synthetic-generator receptors, including the
//!   full parse-and-load path measured by the paper's loading-cost breakdown.
//! * [`emitter`] — the client-facing side: drain output baskets into rows.

pub mod basket;
pub mod emitter;
pub mod receptor;
pub mod sharded;
pub mod threaded;
pub mod window;

pub use basket::{Basket, BasketError, SharedBasket, Timestamp};
pub use emitter::{CollectEmitter, Emitter, Row};
pub use receptor::{CsvError, CsvReceptor, GeneratorReceptor, MalformedPolicy, ParseOutcome};
pub use sharded::{parse_shards, shards_from_env, Ingest, ShardStats, ShardedBasket};
pub use threaded::ReceptorHandle;
pub use window::BasicWindow;

/// Result alias for basket operations.
pub type Result<T> = std::result::Result<T, BasketError>;
