//! Sharded basket ingestion: many receptors appending without contending
//! on one mutex.
//!
//! The paper runs "a set of separate processes per stream" as receptors
//! (§2); PR 2/3 parallelized factory firing and kernel operators, which
//! leaves the *ingest* edge as the serial stage — every
//! [`SharedBasket::append`] holds the one basket mutex for the whole
//! column copy. [`ShardedBasket`] splits that hand-off point:
//!
//! * **N independently-locked shards** stage incoming batches. A receptor
//!   appends to its own shard ([`ShardedBasket::append_shard`], shard
//!   chosen per receptor handle or by key hash), so concurrent appenders
//!   only contend on the tiny oid/clock allocator, never on each other's
//!   column copies.
//! * A **global allocator** (one short critical section) hands each batch
//!   a contiguous oid range and a monotone arrival stamp, so oids stay
//!   **dense and monotone** across shards and timestamps never regress in
//!   oid order — exactly the invariants the basket/window machinery
//!   relies on.
//! * A **seal** path ([`ShardedBasket::seal`]) merges staged segments
//!   into the downstream [`SharedBasket`] in oid order, stopping at the
//!   first gap (an oid range allocated to an appender that has not staged
//!   its batch yet). Factories keep reading the merged view through the
//!   existing `SharedBasket` APIs — same ordered view, same expiry rules.
//!   Large runs stitch their segments into sub-batches on scoped worker
//!   threads (the workers own the segments — no locks), leaving only the
//!   short dense-oid splice serial.
//! * A **keyed append** path ([`ShardedBasket::append_keyed`]) splits a
//!   batch by the canonical [`Placement`] key-hash so every row stages at
//!   the shard its key owns — the same map `kernel::par` uses for radix
//!   partitions and aligned aggregation morsels, so keyed ingest lands
//!   pre-partitioned for the operators downstream.
//!
//! **`N = 1` dispatches to the existing single-mutex path**: appends go
//! straight through [`SharedBasket::append`] with no allocator and no
//! staging, byte-identical to a bare `SharedBasket` (mirroring the
//! scheduler's "1 worker ≡ sequential" and `kernel::par`'s "P = 1 ≡
//! sequential" rules).
//!
//! ## Lock order
//!
//! `shards` RwLock (read) → allocator → one shard; the inner basket
//! mutex is only ever taken with no shard or allocator lock held (the
//! seal drops the shard lock before each merge append, so receptors
//! pinned to a shard never wait behind the merge's column copy). Every
//! path acquires locks in this order, shards one at a time, so the
//! sharded paths cannot deadlock against each other, against readers of
//! the merged view, or against the engine's GC (which takes the inner
//! mutex only).
//!
//! ## What stays out of bounds
//!
//! At `shards > 1` every write must go through this handle. Appending
//! directly to the merged view ([`ShardedBasket::shared`]) would assign
//! oids the allocator has already promised to a staged segment and
//! corrupt the stream; the merged view is for *reading* (factories,
//! emitters, GC).

use crate::basket::{Basket, BasketError, SharedBasket, Timestamp};
use datacell_kernel::par::stats;
use datacell_kernel::{Column, DataType, Oid, Placement};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Anything a receptor can deliver batches into: the single-mutex
/// [`SharedBasket`] or the sharded ingest path. Receptor front-ends
/// (`CsvReceptor::flush_into`, `GeneratorReceptor::pump`) are generic
/// over this, so the same parsing code feeds either edge.
pub trait Ingest {
    /// Append a batch of aligned columns stamped `now`; returns the oid
    /// of the first appended tuple.
    fn ingest(&self, batch: &[Column], now: Timestamp) -> crate::Result<Oid>;
}

impl Ingest for SharedBasket {
    fn ingest(&self, batch: &[Column], now: Timestamp) -> crate::Result<Oid> {
        self.append(batch, now)
    }
}

impl Ingest for ShardedBasket {
    fn ingest(&self, batch: &[Column], now: Timestamp) -> crate::Result<Oid> {
        self.append(batch, now)
    }
}

/// One staged batch: a contiguous oid range waiting to be sealed into the
/// merged view. The start oid is the key in its shard's map.
struct Segment {
    cols: Vec<Column>,
    rows: usize,
    ts: Timestamp,
}

/// An independently-locked staging area. Segments are keyed by start oid
/// because two appenders mapped to the same shard may stage out of
/// allocation order.
#[derive(Default)]
struct Shard {
    segs: BTreeMap<Oid, Segment>,
    /// Cumulative rows ever staged here (monotone; bumped under the shard
    /// lock). Telemetry reads it to compute the shard-imbalance ratio.
    total_rows: u64,
}

/// The global oid/clock allocator: one short critical section per append
/// (a few integer ops), vs. the whole column copy the single-mutex path
/// serializes on.
struct Alloc {
    /// Next unallocated oid. Invariant: `next >= inner.end_oid()`, and
    /// every oid in `[inner.end_oid(), next)` is staged in exactly one
    /// segment or owned by an appender between allocation and staging.
    next: Oid,
    /// Timestamp high-water mark across all allocations; stamps are
    /// clamped up to it so the merged view sees non-decreasing
    /// timestamps in oid order.
    last_ts: Timestamp,
}

struct State {
    name: String,
    schema: Vec<(String, DataType)>,
    /// Write-locked only by [`ShardedBasket::set_shards`]; appends and
    /// seals hold read locks, so resharding waits out in-flight writers.
    shards: RwLock<Vec<Mutex<Shard>>>,
    alloc: Mutex<Alloc>,
    /// Round-robin cursor for [`ShardedBasket::assign_shard`].
    next_writer: AtomicUsize,
}

/// The sharded write handle over a [`SharedBasket`]. Cloning shares the
/// shards, the allocator and the underlying basket.
#[derive(Clone)]
pub struct ShardedBasket {
    inner: SharedBasket,
    state: Arc<State>,
}

impl fmt::Debug for ShardedBasket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBasket")
            .field("name", &self.state.name)
            .field("shards", &self.shards())
            .field("staged", &self.staged_len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl From<SharedBasket> for ShardedBasket {
    /// Wrap an existing shared basket as a single-shard handle — the
    /// byte-identical dispatch path, so legacy `SharedBasket` call sites
    /// keep their exact semantics.
    fn from(shared: SharedBasket) -> ShardedBasket {
        ShardedBasket::wrap(shared, 1)
    }
}

impl ShardedBasket {
    /// Wrap a basket with `shards` staging shards (clamped to ≥ 1).
    pub fn new(basket: Basket, shards: usize) -> ShardedBasket {
        ShardedBasket::wrap(SharedBasket::new(basket), shards)
    }

    /// Wrap an already-shared basket. The allocator starts at the
    /// basket's current end; from here on, all writes must come through
    /// this handle (or its clones) when `shards > 1`.
    pub fn wrap(shared: SharedBasket, shards: usize) -> ShardedBasket {
        let shards = shards.max(1);
        let (name, schema, end, last_ts) = shared.with(|b| {
            (b.name().to_owned(), b.schema().to_vec(), b.end_oid(), b.ts_high_water().unwrap_or(0))
        });
        ShardedBasket {
            inner: shared,
            state: Arc::new(State {
                name,
                schema,
                shards: RwLock::new((0..shards).map(|_| Mutex::new(Shard::default())).collect()),
                alloc: Mutex::new(Alloc { next: end, last_ts }),
                next_writer: AtomicUsize::new(0),
            }),
        }
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.state.shards.read().len()
    }

    /// The merged, oid-ordered view factories and emitters read. At
    /// `shards > 1` this view is **read-only by contract**: appending
    /// through it bypasses the oid allocator and corrupts the stream.
    pub fn shared(&self) -> SharedBasket {
        self.inner.clone()
    }

    /// Run `f` with the merged view locked (reads, expiry).
    pub fn with<R>(&self, f: impl FnOnce(&mut Basket) -> R) -> R {
        self.inner.with(f)
    }

    /// Resident tuple count of the merged (sealed) view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the merged view is empty (staged tuples don't count).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// First resident oid of the merged view.
    pub fn base_oid(&self) -> Oid {
        self.inner.base_oid()
    }

    /// One past the newest *sealed* oid. Staged segments live at or past
    /// this frontier, which is why expiry (always `< end_oid`) can never
    /// reclaim an undrained shard.
    pub fn end_oid(&self) -> Oid {
        self.inner.end_oid()
    }

    /// Tuples staged in shards but not yet sealed into the merged view.
    pub fn staged_len(&self) -> usize {
        self.state
            .shards
            .read()
            .iter()
            .map(|s| s.lock().segs.values().map(|g| g.rows).sum::<usize>())
            .sum()
    }

    /// Point-in-time staging telemetry, one entry per shard in shard
    /// order: current staged depth plus the cumulative staged-row counter
    /// (which [`ShardedBasket::set_shards`] resets along with the staging
    /// array). `Engine::telemetry_snapshot` turns these into per-shard
    /// gauges and the shard-imbalance ratio.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.state
            .shards
            .read()
            .iter()
            .map(|s| {
                let g = s.lock();
                ShardStats {
                    staged_rows: g.segs.values().map(|seg| seg.rows).sum(),
                    staged_segments: g.segs.len(),
                    total_rows: g.total_rows,
                }
            })
            .collect()
    }

    /// Pick a shard for a new writer (round-robin) — the "shard per
    /// receptor handle" policy. Key-hash placement is just
    /// `append_shard(hash as usize, ..)`; the index is taken modulo the
    /// live shard count.
    pub fn assign_shard(&self) -> usize {
        let n = self.shards();
        self.state.next_writer.fetch_add(1, Ordering::Relaxed) % n
    }

    /// Ordered append — the engine's single-writer path. Dispatches to
    /// [`SharedBasket::append`] at 1 shard (byte-identical); at more it
    /// enforces the same non-decreasing-timestamp rule against the
    /// allocator's high-water mark, stages the batch, and seals
    /// immediately so synchronous callers observe their own writes.
    pub fn append(&self, batch: &[Column], now: Timestamp) -> crate::Result<Oid> {
        let shards = self.state.shards.read();
        if shards.len() == 1 {
            return self.inner.append(batch, now);
        }
        let start = self.stage(&shards, batch, now, false)?;
        self.seal_locked(&shards);
        Ok(start)
    }

    /// Concurrent append to one shard — the receptor path. The stamp is
    /// clamped up to the allocator's high-water mark instead of erroring:
    /// with many receptors there is no global arrival order to violate,
    /// so the allocation order *defines* the stream order. Staged data
    /// becomes readable at the next [`ShardedBasket::seal`] (the
    /// scheduler seals on every scan).
    pub fn append_shard(
        &self,
        shard: usize,
        batch: &[Column],
        now: Timestamp,
    ) -> crate::Result<Oid> {
        let shards = self.state.shards.read();
        if shards.len() == 1 {
            return self.inner.append(batch, now);
        }
        self.stage_at(&shards, shard, batch, now, true)
    }

    /// Key-hash placement append — the aligned-dataflow receptor path.
    /// The batch is split by the canonical [`Placement`] map over the
    /// live shard count (column `key_col` carries the keys): every row
    /// stages at the shard its key-hash owns, so sealed per-shard
    /// segments feed key-partitioned kernel operators without
    /// re-partitioning. One allocator critical section covers the whole
    /// batch (one contiguous oid range, one clamped stamp); within the
    /// batch, rows land in shard order — stable within a shard — so the
    /// merged view's row order is the documented placement scatter of the
    /// input. Dispatches to the plain single-mutex append at 1 shard
    /// (byte-identical, no reorder).
    pub fn append_keyed(
        &self,
        key_col: usize,
        batch: &[Column],
        now: Timestamp,
    ) -> crate::Result<Oid> {
        let shards = self.state.shards.read();
        if shards.len() == 1 {
            return self.inner.append(batch, now);
        }
        let n = self.validate(batch)?;
        if n == 0 {
            return Ok(self.state.alloc.lock().next);
        }
        let keys = batch.get(key_col).ok_or_else(|| {
            BasketError::Malformed(format!(
                "{}: key column {} out of range for {} columns",
                self.state.name,
                key_col,
                batch.len()
            ))
        })?;
        let parts = Placement::new(shards.len()).scatter(&keys.as_slice());
        // One critical section for the whole batch: a contiguous oid
        // range, one clamped stamp. Sub-ranges are carved per shard in
        // shard order below.
        let (start, ts) = {
            let mut alloc = self.state.alloc.lock();
            let ts = now.max(alloc.last_ts);
            let start = alloc.next;
            alloc.next += n as u64;
            alloc.last_ts = ts;
            (start, ts)
        };
        let mut sub_start = start;
        for (shard, pos) in shards.iter().zip(&parts) {
            if pos.is_empty() {
                continue;
            }
            let cols: Vec<Column> = batch.iter().map(|c| c.gather(pos)).collect();
            let seg = Segment { cols, rows: pos.len(), ts };
            {
                let mut g = shard.lock();
                g.total_rows += pos.len() as u64;
                g.segs.insert(sub_start, seg);
            }
            sub_start += pos.len() as u64;
        }
        Ok(start)
    }

    /// Validate, allocate and stage one batch into the round-robin shard.
    fn stage(
        &self,
        shards: &[Mutex<Shard>],
        batch: &[Column],
        now: Timestamp,
        clamp: bool,
    ) -> crate::Result<Oid> {
        let shard = self.state.next_writer.fetch_add(1, Ordering::Relaxed) % shards.len();
        self.stage_at(shards, shard, batch, now, clamp)
    }

    fn stage_at(
        &self,
        shards: &[Mutex<Shard>],
        shard: usize,
        batch: &[Column],
        now: Timestamp,
        clamp: bool,
    ) -> crate::Result<Oid> {
        // Validate *before* allocating: a rejected batch must not leave a
        // permanent gap in the oid sequence (the seal frontier would
        // never pass it).
        let n = self.validate(batch)?;
        if n == 0 {
            // Mirror `Basket::append`: an empty batch is a no-op that
            // reports the current end of the stream (allocator frontier
            // here — staged tuples included), with no timestamp check.
            return Ok(self.state.alloc.lock().next);
        }
        let (start, ts) = {
            let mut alloc = self.state.alloc.lock();
            let ts = if clamp {
                now.max(alloc.last_ts)
            } else {
                if now < alloc.last_ts {
                    return Err(BasketError::Malformed(format!(
                        "{}: timestamps must be non-decreasing ({} < {})",
                        self.state.name, now, alloc.last_ts
                    )));
                }
                now
            };
            let start = alloc.next;
            alloc.next += n as u64;
            alloc.last_ts = ts;
            (start, ts)
        };
        let seg = Segment { cols: batch.to_vec(), rows: n, ts };
        {
            let mut g = shards[shard % shards.len()].lock();
            g.total_rows += n as u64;
            g.segs.insert(start, seg);
        }
        Ok(start)
    }

    /// Arity, alignment and type checks against the schema — exactly what
    /// `Basket::append` rejects (one shared implementation), performed
    /// *before* oid allocation so a rejected batch leaves no gap.
    fn validate(&self, batch: &[Column]) -> crate::Result<usize> {
        crate::basket::validate_batch(&self.state.name, &self.state.schema, batch)
    }

    /// Merge every staged segment that extends the contiguous oid prefix
    /// into the merged view, in oid order. Stops at the first gap — an
    /// oid range some appender has allocated but not yet staged — and
    /// returns the new sealed end. A no-op (and gap-free by definition)
    /// at 1 shard.
    pub fn seal(&self) -> Oid {
        let shards = self.state.shards.read();
        if shards.len() == 1 {
            return self.inner.end_oid();
        }
        self.seal_locked(&shards)
    }

    fn seal_locked(&self, shards: &[Mutex<Shard>]) -> Oid {
        // Phase 1 — collect the contiguous run of staged segments from
        // the frontier. Each segment is taken under its shard lock, but
        // only for a BTreeMap remove: a receptor pinned to a shard never
        // waits behind a column copy. Safe under concurrent sealers
        // because allocation starts are unique and only the holder of
        // the segment keyed exactly at the current frontier can advance
        // the frontier — a sealer that loses the `remove` race simply
        // sees no progress. The guard must not ride along in a
        // `while let` scrutinee — there it would live for the whole body.
        let start = datacell_telemetry::timer();
        let mut frontier = self.inner.end_oid();
        let mut run: Vec<Segment> = Vec::new();
        loop {
            let mut progressed = false;
            for shard in shards {
                loop {
                    let seg = {
                        let mut g = shard.lock();
                        g.segs.remove(&frontier)
                    };
                    let Some(seg) = seg else { break };
                    frontier += seg.rows as u64;
                    run.push(seg);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if run.is_empty() {
            return frontier;
        }
        let total: usize = run.iter().map(|s| s.rows).sum();
        let workers = shards.len().min(run.len());
        if workers < 2 || total < PAR_SEAL_MIN_ROWS {
            // Short run: serial per-segment appends (the historic path —
            // fan-out would cost more than the copies it spreads).
            stats::record_seal(false);
            for seg in run {
                // Cannot fail: arity/alignment/types were validated at
                // staging and the allocator stamps monotonically.
                self.inner
                    .with(|b| b.append_with_ts(&seg.cols, |_| seg.ts))
                    .expect("staged segments are pre-validated and stamped in oid order");
            }
            seal_metrics().serial.record_since(start);
            return frontier;
        }
        // Phase 2 — stitch contiguous segment ranges (balanced by rows)
        // into owned sub-batches on scoped worker threads. The workers
        // own their segments outright: no locks, no shared state.
        let target = total.div_ceil(workers);
        let mut ranges: Vec<Vec<Segment>> = Vec::with_capacity(workers);
        let mut cur: Vec<Segment> = Vec::new();
        let mut cur_rows = 0usize;
        for seg in run {
            cur_rows += seg.rows;
            cur.push(seg);
            if cur_rows >= target {
                ranges.push(std::mem::take(&mut cur));
                cur_rows = 0;
            }
        }
        if !cur.is_empty() {
            ranges.push(cur);
        }
        let stitched: Vec<(Vec<Column>, Vec<Timestamp>)> = std::thread::scope(|s| {
            let handles: Vec<_> =
                ranges.into_iter().map(|range| s.spawn(move || stitch_segments(range))).collect();
            handles.into_iter().map(|h| h.join().expect("seal stitcher panicked")).collect()
        });
        stats::record_seal(true);
        // Phase 3 — the short serial tail: splice each stitched sub-batch
        // into the merged view in oid order, moving the payloads.
        for (cols, ts) in stitched {
            self.inner
                .with(|b| b.append_stitched(cols, ts))
                .expect("staged segments are pre-validated and stamped in oid order");
        }
        seal_metrics().parallel.record_since(start);
        frontier
    }

    /// Change the shard count (clamped to ≥ 1). Waits out in-flight
    /// appenders, seals everything staged, resynchronizes the allocator
    /// with the merged view and rebuilds the staging array. Any segment
    /// a *panicked* appender orphaned behind a gap is carried over
    /// untouched. Receptor clones keep working across the switch (the
    /// shard index is taken modulo the live count).
    pub fn set_shards(&self, shards: usize) {
        let shards = shards.max(1);
        let mut guard = self.state.shards.write();
        self.seal_locked(&guard);
        let mut leftover: Vec<(Oid, Segment)> = Vec::new();
        for shard in guard.iter() {
            let mut g = shard.lock();
            leftover.extend(std::mem::take(&mut g.segs));
        }
        if leftover.is_empty() {
            // Quiescent: make the allocator authoritative again from the
            // merged view (it went stale if the old count was 1, where
            // appends bypass it).
            let (end, last_ts) = self.inner.with(|b| (b.end_oid(), b.ts_high_water().unwrap_or(0)));
            let mut alloc = self.state.alloc.lock();
            alloc.next = end;
            alloc.last_ts = alloc.last_ts.max(last_ts);
        }
        let new: Vec<Mutex<Shard>> = (0..shards).map(|_| Mutex::new(Shard::default())).collect();
        for (i, (start, seg)) in leftover.into_iter().enumerate() {
            new[i % shards].lock().segs.insert(start, seg);
        }
        *guard = new;
    }
}

/// Seals shorter than this stay serial: below a few thousand rows the
/// scoped-thread fan-out costs more than the column copies it spreads.
const PAR_SEAL_MIN_ROWS: usize = 4096;

/// Staging telemetry for one shard (see [`ShardedBasket::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Rows currently staged (allocated but not yet sealed).
    pub staged_rows: usize,
    /// Segments currently staged.
    pub staged_segments: usize,
    /// Cumulative rows ever staged in this shard (monotone until a
    /// reshard rebuilds the staging array).
    pub total_rows: u64,
}

/// Seal-duration histograms, registered process-wide with the kernel's
/// counters: seals are a process-scoped signal like `par::stats`, and the
/// basket crate sits below `core`, so the global registry is the one
/// shared surface.
struct SealMetrics {
    serial: datacell_telemetry::Histogram,
    parallel: datacell_telemetry::Histogram,
}

fn seal_metrics() -> &'static SealMetrics {
    static METRICS: std::sync::OnceLock<SealMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = datacell_telemetry::global();
        let help =
            "Wall time of one non-empty basket seal (staged segments merged into the ordered view).";
        SealMetrics {
            serial: r.histogram_with("datacell_basket_seal_seconds", help, &[("path", "serial")]),
            parallel: r.histogram_with(
                "datacell_basket_seal_seconds",
                help,
                &[("path", "parallel")],
            ),
        }
    })
}

/// Merge a contiguous range of staged segments into one owned sub-batch
/// (columns spliced with [`Column::append_owned`], per-row timestamps
/// expanded from the per-segment stamps). Runs on a seal worker thread;
/// the segments are owned, so the stitch touches no locks.
fn stitch_segments(range: Vec<Segment>) -> (Vec<Column>, Vec<Timestamp>) {
    let rows: usize = range.iter().map(|s| s.rows).sum();
    let mut it = range.into_iter();
    let first = it.next().expect("stitch ranges are non-empty");
    let mut ts = Vec::with_capacity(rows);
    ts.resize(first.rows, first.ts);
    let mut cols = first.cols;
    for seg in it {
        for (dst, mut src) in cols.iter_mut().zip(seg.cols) {
            dst.append_owned(&mut src).expect("staged segments share one schema");
        }
        ts.resize(ts.len() + seg.rows, seg.ts);
    }
    (cols, ts)
}

/// Parse a `DATACELL_BASKET_SHARDS`-style override: a positive shard
/// count. Returns `None` for unset, empty, non-numeric or zero values.
pub fn parse_shards(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Shard count from the `DATACELL_BASKET_SHARDS` environment variable,
/// falling back to 1 (the single-mutex path) when unset or invalid.
pub fn shards_from_env() -> usize {
    parse_shards(std::env::var("DATACELL_BASKET_SHARDS").ok().as_deref()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basket() -> Basket {
        Basket::new("s", &[("x", DataType::Int)])
    }

    fn ints(vals: &[i64]) -> Vec<Column> {
        vec![Column::Int(vals.to_vec())]
    }

    fn snapshot_ints(b: &SharedBasket) -> (Oid, Vec<i64>, Vec<Timestamp>) {
        b.with(|bk| {
            let w = bk.snapshot();
            (w.base_oid(), w.col(0).unwrap().as_int().unwrap().to_vec(), w.timestamps().to_vec())
        })
    }

    #[test]
    fn one_shard_is_byte_identical_to_shared_basket() {
        // The same append sequence — including an error case — through a
        // bare SharedBasket and a 1-shard ShardedBasket.
        let plain = SharedBasket::new(basket());
        let sharded = ShardedBasket::new(basket(), 1);
        let script: &[(&[i64], Timestamp)] = &[(&[1, 2], 5), (&[3], 5), (&[], 0), (&[4, 5, 6], 9)];
        for (vals, ts) in script {
            let a = plain.append(&ints(vals), *ts);
            let b = sharded.append(&ints(vals), *ts);
            assert_eq!(a, b);
        }
        // Regression errors identically (dispatches to the basket check).
        assert_eq!(plain.append(&ints(&[7]), 3), sharded.append(&ints(&[7]), 3));
        assert!(sharded.append(&ints(&[7]), 3).is_err());
        assert_eq!(snapshot_ints(&plain), snapshot_ints(&sharded.shared()));
        assert_eq!(sharded.seal(), plain.end_oid());
        assert_eq!(sharded.staged_len(), 0);
    }

    #[test]
    fn sharded_appends_assign_dense_monotone_oids() {
        let sb = ShardedBasket::new(basket(), 4);
        assert_eq!(sb.shards(), 4);
        assert_eq!(sb.append_shard(0, &ints(&[1, 2]), 10).unwrap(), 0);
        assert_eq!(sb.append_shard(3, &ints(&[3]), 11).unwrap(), 2);
        assert_eq!(sb.append_shard(1, &ints(&[4, 5]), 12).unwrap(), 3);
        // Nothing sealed yet: the merged view is empty, staging holds 5.
        assert_eq!(sb.len(), 0);
        assert_eq!(sb.staged_len(), 5);
        assert_eq!(sb.seal(), 5);
        assert_eq!(sb.staged_len(), 0);
        let (base, vals, ts) = snapshot_ints(&sb.shared());
        assert_eq!(base, 0);
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        assert_eq!(ts, vec![10, 10, 11, 12, 12]);
    }

    #[test]
    fn ordered_append_seals_immediately_and_checks_regression() {
        let sb = ShardedBasket::new(basket(), 4);
        sb.append(&ints(&[1]), 10).unwrap();
        assert_eq!(sb.len(), 1); // visible without an explicit seal
        let err = sb.append(&ints(&[2]), 9).unwrap_err();
        assert!(matches!(err, BasketError::Malformed(_)));
        sb.append(&ints(&[2]), 10).unwrap(); // equal stamp ok
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn concurrent_path_clamps_stamps_monotone() {
        let sb = ShardedBasket::new(basket(), 2);
        sb.append_shard(0, &ints(&[1]), 20).unwrap();
        // A receptor racing behind: stamp 5 is clamped up to 20.
        sb.append_shard(1, &ints(&[2]), 5).unwrap();
        sb.seal();
        let (_, vals, ts) = snapshot_ints(&sb.shared());
        assert_eq!(vals, vec![1, 2]);
        assert_eq!(ts, vec![20, 20]);
    }

    #[test]
    fn validation_happens_before_allocation() {
        let sb = ShardedBasket::new(basket(), 2);
        // Wrong arity, misaligned columns, wrong type: all rejected with
        // no oid consumed, so the stream stays dense.
        assert!(sb.append_shard(0, &[], 0).is_err());
        assert!(sb.append_shard(0, &[Column::Int(vec![1]), Column::Int(vec![2])], 0).is_err());
        assert!(sb.append_shard(0, &[Column::Float(vec![0.5])], 0).is_err());
        assert_eq!(sb.append_shard(0, &ints(&[1]), 0).unwrap(), 0);
        sb.seal();
        assert_eq!(sb.end_oid(), 1);
    }

    #[test]
    fn empty_batch_is_noop_reporting_frontier() {
        let sb = ShardedBasket::new(basket(), 2);
        sb.append_shard(0, &ints(&[1, 2]), 7).unwrap();
        // Stale timestamp on an empty batch is fine, like Basket::append.
        assert_eq!(sb.append_shard(1, &ints(&[]), 0).unwrap(), 2);
        assert_eq!(sb.staged_len(), 2);
    }

    #[test]
    fn seal_stops_at_gap_and_resumes() {
        let sb = ShardedBasket::new(basket(), 4);
        sb.append_shard(0, &ints(&[1]), 0).unwrap(); // oid 0
                                                     // Simulate an in-flight appender: allocate oid 1 by staging to a
                                                     // shard, then remove it temporarily to create a gap.
        sb.append_shard(1, &ints(&[2]), 0).unwrap(); // oid 1
        let stolen = {
            let shards = sb.state.shards.read();
            let seg = shards[1].lock().segs.remove(&1).unwrap();
            seg
        };
        sb.append_shard(2, &ints(&[3]), 0).unwrap(); // oid 2
        assert_eq!(sb.seal(), 1); // oid 0 sealed; 2 stranded behind the gap
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.staged_len(), 1);
        // The in-flight appender lands; the next seal drains everything.
        sb.state.shards.read()[1].lock().segs.insert(1, stolen);
        assert_eq!(sb.seal(), 3);
        let (_, vals, _) = snapshot_ints(&sb.shared());
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn expiry_of_merged_view_never_touches_staged() {
        let sb = ShardedBasket::new(basket(), 2);
        sb.append_shard(0, &ints(&[1, 2]), 0).unwrap();
        sb.seal();
        sb.append_shard(1, &ints(&[3, 4]), 1).unwrap(); // staged, unsealed
                                                        // GC as aggressive as it can be: expire the whole sealed view.
        sb.with(|b| b.expire_upto(b.end_oid()));
        assert_eq!(sb.len(), 0);
        assert_eq!(sb.staged_len(), 2);
        // Undrained tuples survive and seal on top of the expired prefix.
        assert_eq!(sb.seal(), 4);
        let (base, vals, _) = snapshot_ints(&sb.shared());
        assert_eq!(base, 2);
        assert_eq!(vals, vec![3, 4]);
    }

    #[test]
    fn set_shards_reshards_mid_stream() {
        let sb = ShardedBasket::new(basket(), 1);
        sb.append(&ints(&[1, 2]), 0).unwrap();
        sb.set_shards(4); // allocator resyncs from the merged view
        assert_eq!(sb.shards(), 4);
        assert_eq!(sb.append_shard(2, &ints(&[3]), 1).unwrap(), 2);
        sb.append_shard(0, &ints(&[4]), 2).unwrap();
        sb.set_shards(2); // seals staged data on the way
        assert_eq!(sb.shards(), 2);
        assert_eq!(sb.len(), 4);
        sb.append_shard(7, &ints(&[5]), 3).unwrap(); // index taken mod 2
        sb.set_shards(1);
        assert_eq!(sb.len(), 5);
        let (_, vals, _) = snapshot_ints(&sb.shared());
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        // Back on the single-mutex path: direct dispatch, basket oids.
        assert_eq!(sb.append(&ints(&[6]), 3).unwrap(), 5);
    }

    #[test]
    fn assign_shard_round_robins() {
        let sb = ShardedBasket::new(basket(), 3);
        let picks: Vec<usize> = (0..6).map(|_| sb.assign_shard()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn clones_share_allocator_and_staging() {
        let a = ShardedBasket::new(basket(), 2);
        let b = a.clone();
        a.append_shard(0, &ints(&[1]), 0).unwrap();
        b.append_shard(1, &ints(&[2]), 0).unwrap();
        assert_eq!(b.staged_len(), 2);
        b.seal();
        assert_eq!(a.len(), 2);
        assert_eq!(a.end_oid(), 2);
    }

    #[test]
    fn from_shared_wraps_single_shard() {
        let shared = SharedBasket::new(basket());
        shared.append(&ints(&[1]), 0).unwrap();
        let sb: ShardedBasket = shared.clone().into();
        assert_eq!(sb.shards(), 1);
        sb.ingest(&ints(&[2]), 0).unwrap();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn parse_shards_accepts_positive_counts() {
        assert_eq!(parse_shards(None), None);
        assert_eq!(parse_shards(Some("")), None);
        assert_eq!(parse_shards(Some("many")), None);
        assert_eq!(parse_shards(Some("0")), None);
        assert_eq!(parse_shards(Some("1")), Some(1));
        assert_eq!(parse_shards(Some(" 8 ")), Some(8));
    }

    #[test]
    fn append_keyed_routes_rows_to_hash_owned_shards() {
        let sb = ShardedBasket::new(basket(), 4);
        let keys: Vec<i64> = (0..32).map(|i| i % 7).collect();
        sb.append_keyed(0, &ints(&keys), 5).unwrap();
        // Staged rows sit exactly where the canonical placement puts them.
        let parts = Placement::new(4).scatter(&Column::Int(keys.clone()).as_slice());
        {
            let shards = sb.state.shards.read();
            for (shard, pos) in shards.iter().zip(&parts) {
                let staged: usize = shard.lock().segs.values().map(|s| s.rows).sum();
                assert_eq!(staged, pos.len());
            }
        }
        assert_eq!(sb.seal(), 32);
        // The merged view is the documented stable scatter order.
        let expect: Vec<i64> =
            parts.iter().flat_map(|pos| pos.iter().map(|&p| keys[p as usize])).collect();
        let (_, vals, ts) = snapshot_ints(&sb.shared());
        assert_eq!(vals, expect);
        assert!(ts.iter().all(|&t| t == 5), "one stamp for the whole batch");
    }

    #[test]
    fn append_keyed_same_key_always_lands_on_one_shard() {
        let sb = ShardedBasket::new(basket(), 4);
        for round in 0..3 {
            sb.append_keyed(0, &ints(&[42, 42, 42]), round).unwrap();
        }
        let shards = sb.state.shards.read();
        let occupied: Vec<usize> = (0..4)
            .filter(|&i| shards[i].lock().segs.values().map(|s| s.rows).sum::<usize>() > 0)
            .collect();
        assert_eq!(occupied.len(), 1, "all occurrences of one key share a shard");
        assert_eq!(occupied[0], Placement::new(4).of_key(42i64));
    }

    #[test]
    fn append_keyed_one_shard_is_byte_identical_to_shared() {
        let plain = SharedBasket::new(basket());
        let sb = ShardedBasket::new(basket(), 1);
        for (vals, ts) in [(&[3i64, 1, 3][..], 2u64), (&[7], 2)] {
            assert_eq!(plain.append(&ints(vals), ts), sb.append_keyed(0, &ints(vals), ts));
        }
        assert_eq!(snapshot_ints(&plain), snapshot_ints(&sb.shared()));
    }

    #[test]
    fn append_keyed_validates_and_reports_frontier_on_empty() {
        let sb = ShardedBasket::new(basket(), 2);
        assert!(sb.append_keyed(0, &[Column::Float(vec![0.5])], 0).is_err());
        assert!(sb.append_keyed(9, &ints(&[1]), 0).is_err(), "key column out of range");
        sb.append_keyed(0, &ints(&[1, 2]), 0).unwrap();
        assert_eq!(sb.append_keyed(0, &ints(&[]), 0).unwrap(), 2);
        assert_eq!(sb.staged_len(), 2);
    }

    #[test]
    fn seal_fans_out_past_the_threshold_and_stays_serial_below() {
        // One test so the counter observations can't interleave: this is
        // the only place in the process that seals ≥ PAR_SEAL_MIN_ROWS,
        // so the par-seal counter moves exactly when this test seals big.
        let small = ShardedBasket::new(basket(), 4);
        small.append_shard(0, &ints(&[1, 2]), 0).unwrap();
        small.append_shard(1, &ints(&[3]), 1).unwrap();
        let p0 = stats::seal_par_calls();
        assert_eq!(small.seal(), 3);
        assert_eq!(stats::seal_par_calls(), p0, "short runs must not fan out");

        let sb = ShardedBasket::new(basket(), 4);
        // Stage 40 segments of 256 rows (10240 total, past the parallel
        // threshold) in allocation order across shards.
        let mut expect = Vec::new();
        for seg in 0..40i64 {
            let vals: Vec<i64> = (0..256).map(|i| seg * 1000 + i).collect();
            sb.append_shard((seg % 4) as usize, &ints(&vals), seg as u64).unwrap();
            expect.extend(vals);
        }
        let (s0, p1) = (stats::seal_calls(), stats::seal_par_calls());
        assert_eq!(sb.seal(), 40 * 256);
        assert!(stats::seal_calls() > s0);
        assert!(stats::seal_par_calls() > p1, "large seal must fan out");
        let (_, vals, ts) = snapshot_ints(&sb.shared());
        assert_eq!(vals, expect);
        // Per-segment stamps survive the stitch, monotone in oid order.
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[0], 0);
        assert_eq!(*ts.last().unwrap(), 39);
    }

    #[test]
    fn sixteen_threads_append_without_loss() {
        // Smoke-level concurrency here; the full battery lives in
        // tests/sharded_ingest.rs.
        let sb = ShardedBasket::new(basket(), 4);
        let threads: Vec<_> = (0..16)
            .map(|tid| {
                let sb = sb.clone();
                std::thread::spawn(move || {
                    let shard = sb.assign_shard();
                    for i in 0..25 {
                        sb.append_shard(shard, &ints(&[tid * 1000 + i]), 0).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sb.seal(), 400);
        assert_eq!(sb.len(), 400);
        let (base, mut vals, _) = snapshot_ints(&sb.shared());
        assert_eq!(base, 0);
        vals.sort_unstable();
        let mut expect: Vec<i64> =
            (0..16).flat_map(|t| (0..25).map(move |i| t * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(vals, expect);
    }
}
