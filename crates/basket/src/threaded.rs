//! Threaded receptors: "a set of separate processes per stream ... to
//! listen for new data" (paper §2).
//!
//! A [`ReceptorHandle`] runs a batch source on its own thread and pumps
//! into a basket — the engine thread keeps scheduling factories
//! concurrently. Batches are forwarded through a bounded crossbeam
//! channel so a slow consumer back-pressures the source instead of
//! ballooning memory.
//!
//! Each handle writes through a [`ShardedBasket`] and is pinned to one
//! staging shard at spawn (round-robin): with a sharded basket, many
//! receptor handles append concurrently without contending on one mutex;
//! with a single shard (including every [`SharedBasket`] passed via
//! `Into`), writes dispatch to the classic single-mutex path unchanged.

#[cfg(doc)]
use crate::basket::SharedBasket;
use crate::basket::Timestamp;
use crate::sharded::ShardedBasket;
use crate::Result;
use crossbeam::channel::{bounded, Receiver, Sender};
use datacell_kernel::Column;
use std::thread::JoinHandle;

/// A batch travelling from a source thread to the basket pump.
type TimedBatch = (Timestamp, Vec<Column>);

/// Handle to a receptor thread feeding one basket.
pub struct ReceptorHandle {
    join: Option<JoinHandle<usize>>,
    /// Dropped to signal shutdown if the source is still running.
    shutdown: Option<Sender<()>>,
}

impl ReceptorHandle {
    /// Spawn a receptor thread running `source`. The closure is called
    /// repeatedly and returns `None` when the stream ends; each `Some`
    /// batch is appended to the basket with its timestamp.
    ///
    /// Accepts a [`ShardedBasket`] (or anything converting into one, like
    /// a [`SharedBasket`], which becomes the 1-shard byte-identical
    /// path). The handle is pinned to one staging shard for its lifetime.
    ///
    /// `queue` bounds the number of in-flight batches (back-pressure).
    pub fn spawn(
        basket: impl Into<ShardedBasket>,
        queue: usize,
        source: impl FnMut() -> Option<TimedBatch> + Send + 'static,
    ) -> ReceptorHandle {
        let basket = basket.into();
        let shard = basket.assign_shard();
        ReceptorHandle::spawn_on_shard(basket, shard, queue, source)
    }

    /// [`ReceptorHandle::spawn`] with key-hash placement: each batch is
    /// split by the canonical `Placement` map over column `key_col`, so
    /// every row stages at the shard its key owns (see
    /// [`ShardedBasket::append_keyed`]) and sealed segments feed
    /// key-partitioned kernel operators without re-partitioning. Streams
    /// without a grouping key should keep [`ReceptorHandle::spawn`]'s
    /// round-robin pinning.
    pub fn spawn_keyed(
        basket: impl Into<ShardedBasket>,
        key_col: usize,
        queue: usize,
        mut source: impl FnMut() -> Option<TimedBatch> + Send + 'static,
    ) -> ReceptorHandle {
        let basket = basket.into();
        let (tx, rx): (Sender<TimedBatch>, Receiver<TimedBatch>) = bounded(queue.max(1));
        let (stop_tx, stop_rx) = bounded::<()>(0);

        std::thread::spawn(move || {
            while let Some(batch) = source() {
                crossbeam::channel::select! {
                    send(tx, batch) -> res => {
                        if res.is_err() {
                            break; // pump gone
                        }
                    }
                    recv(stop_rx) -> _ => break,
                }
            }
        });

        // Pump thread: split each batch across its keys' home shards.
        let join = std::thread::spawn(move || {
            let mut delivered = 0usize;
            while let Ok((ts, batch)) = rx.recv() {
                let n = batch.first().map_or(0, datacell_kernel::Column::len);
                if basket.append_keyed(key_col, &batch, ts).is_ok() {
                    delivered += n;
                }
            }
            delivered
        });

        ReceptorHandle { join: Some(join), shutdown: Some(stop_tx) }
    }

    /// [`ReceptorHandle::spawn`] with an explicit staging shard — key- or
    /// placement-aware receptors pick their own shard (the index is taken
    /// modulo the basket's live shard count).
    pub fn spawn_on_shard(
        basket: ShardedBasket,
        shard: usize,
        queue: usize,
        mut source: impl FnMut() -> Option<TimedBatch> + Send + 'static,
    ) -> ReceptorHandle {
        let (tx, rx): (Sender<TimedBatch>, Receiver<TimedBatch>) = bounded(queue.max(1));
        let (stop_tx, stop_rx) = bounded::<()>(0);

        // Source thread: produce until exhausted or shut down.
        std::thread::spawn(move || {
            while let Some(batch) = source() {
                crossbeam::channel::select! {
                    send(tx, batch) -> res => {
                        if res.is_err() {
                            break; // pump gone
                        }
                    }
                    recv(stop_rx) -> _ => break,
                }
            }
        });

        // Pump thread: drain the channel into the pinned shard.
        let join = std::thread::spawn(move || {
            let mut delivered = 0usize;
            while let Ok((ts, batch)) = rx.recv() {
                let n = batch.first().map_or(0, datacell_kernel::Column::len);
                if basket.append_shard(shard, &batch, ts).is_ok() {
                    delivered += n;
                }
            }
            delivered
        });

        ReceptorHandle { join: Some(join), shutdown: Some(stop_tx) }
    }

    /// Wait for the source to finish naturally and all batches to land in
    /// the basket. Returns the number of tuples delivered. (To stop an
    /// unbounded source early, drop the handle instead.)
    pub fn join(mut self) -> Result<usize> {
        let handle = self.join.take().expect("join called once");
        let delivered = handle.join().unwrap_or(0);
        drop(self.shutdown.take());
        Ok(delivered)
    }
}

impl Drop for ReceptorHandle {
    fn drop(&mut self) {
        drop(self.shutdown.take());
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basket::{Basket, SharedBasket};
    use datacell_kernel::DataType;

    fn shared() -> SharedBasket {
        SharedBasket::new(Basket::new("s", &[("x", DataType::Int)]))
    }

    #[test]
    fn threaded_receptor_delivers_all_batches() {
        let basket = shared();
        let mut left = 10;
        let mut ts = 0;
        let handle = ReceptorHandle::spawn(basket.clone(), 4, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            ts += 1;
            Some((ts, vec![Column::Int(vec![left as i64, left as i64 + 1])]))
        });
        let delivered = handle.join().unwrap();
        assert_eq!(delivered, 20);
        assert_eq!(basket.len(), 20);
    }

    #[test]
    fn concurrent_reader_sees_monotonic_growth() {
        let basket = shared();
        let mut left = 200;
        let handle = ReceptorHandle::spawn(basket.clone(), 2, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some((200 - left, vec![Column::Int(vec![1])]))
        });
        // Reader thread: sizes must never decrease while feeding.
        let mut last = 0;
        loop {
            let n = basket.len();
            assert!(n >= last);
            last = n;
            if n == 200 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(handle.join().unwrap(), 200);
    }

    #[test]
    fn concurrent_consumers_at_different_speeds_never_lose_unconsumed_oids() {
        // Two consumer threads drain one shared basket at different
        // speeds while a receptor feeds it and a GC thread repeatedly
        // expires up to the *minimum* consumed position — the engine's
        // expiry rule. No consumer may ever observe RangeUnavailable for
        // an oid it has not consumed.
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;

        const TOTAL: u64 = 600;
        let basket = shared();
        let cursors = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let done = Arc::new(AtomicBool::new(false));

        let mut left = TOTAL;
        let feeder = ReceptorHandle::spawn(basket.clone(), 4, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some((TOTAL - left, vec![Column::Int(vec![(TOTAL - left) as i64])]))
        });

        let consumers: Vec<_> = [1usize, 7]
            .into_iter()
            .zip(&cursors)
            .map(|(step, cursor)| {
                let basket = basket.clone();
                let cursor = Arc::clone(cursor);
                std::thread::spawn(move || {
                    let mut sum = 0i64;
                    loop {
                        let from = cursor.load(Ordering::Acquire);
                        if from >= TOTAL {
                            return sum;
                        }
                        let take = step.min((TOTAL - from) as usize);
                        let got = basket.with(|b| {
                            if b.available_from(from) < take {
                                return None;
                            }
                            Some(b.read_range(from, take).expect(
                                "unconsumed oids must stay resident for the slowest reader",
                            ))
                        });
                        match got {
                            Some(w) => {
                                sum += w.col(0).unwrap().as_int().unwrap().iter().sum::<i64>();
                                cursor.store(from + take as u64, Ordering::Release);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                })
            })
            .collect();

        // GC thread: expire everything below the slowest cursor, as the
        // engine does between scheduler drains.
        let gc = {
            let basket = basket.clone();
            let cursors = [Arc::clone(&cursors[0]), Arc::clone(&cursors[1])];
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let min = cursors.iter().map(|c| c.load(Ordering::Acquire)).min().unwrap();
                    basket.with(|b| b.expire_upto(min));
                    std::thread::yield_now();
                }
            })
        };

        assert_eq!(feeder.join().unwrap() as u64, TOTAL);
        let expected: i64 = (1..=TOTAL as i64).sum();
        for c in consumers {
            assert_eq!(c.join().unwrap(), expected);
        }
        done.store(true, Ordering::Release);
        gc.join().unwrap();
        // Both consumers finished: everything is expirable.
        basket.with(|b| b.expire_upto(TOTAL));
        assert!(basket.is_empty());
        assert_eq!(basket.end_oid(), TOTAL);
        assert_eq!(basket.base_oid(), TOTAL);
    }

    #[test]
    fn receptor_fleet_on_sharded_basket_delivers_all() {
        // 8 receptor handles (round-robin over 4 shards) feed one
        // sharded basket while a "scheduler" thread seals concurrently —
        // the engine's wake-up pattern. Nothing may be lost or doubled.
        use crate::basket::Basket;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let sb = ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), 4);
        let done = Arc::new(AtomicBool::new(false));
        let sealer = {
            let sb = sb.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    sb.seal();
                    std::thread::yield_now();
                }
            })
        };
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let mut left = 40i64;
                ReceptorHandle::spawn(sb.clone(), 4, move || {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some((0, vec![Column::Int(vec![tid * 100 + left, tid * 100 + left])]))
                })
            })
            .collect();
        let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        done.store(true, Ordering::Release);
        sealer.join().unwrap();
        assert_eq!(delivered, 8 * 40 * 2);
        assert_eq!(sb.seal(), 640);
        assert_eq!(sb.len(), 640);
        let mut vals = sb.with(|b| b.snapshot().col(0).unwrap().as_int().unwrap().to_vec());
        vals.sort_unstable();
        let mut expect: Vec<i64> =
            (0..8).flat_map(|t| (0..40).flat_map(move |i| [t * 100 + i, t * 100 + i])).collect();
        expect.sort_unstable();
        assert_eq!(vals, expect);
    }

    #[test]
    fn keyed_receptor_delivers_batches_in_placement_order() {
        use crate::basket::Basket;
        use datacell_kernel::Placement;

        let sb = ShardedBasket::new(Basket::new("s", &[("k", DataType::Int)]), 4);
        let batches: Vec<Vec<i64>> =
            (0..6).map(|b| (0..16).map(|i| (b * 16 + i) % 7).collect()).collect();
        let mut feed = batches.clone().into_iter();
        let handle = ReceptorHandle::spawn_keyed(sb.clone(), 0, 2, move || {
            feed.next().map(|vals| (0, vec![Column::Int(vals)]))
        });
        assert_eq!(handle.join().unwrap(), 6 * 16);
        assert_eq!(sb.seal(), 96);
        // One receptor delivers batches in order; within each batch the
        // sealed row order is the canonical placement scatter (each row
        // staged at its key's home shard, shards drained in oid order).
        let expect: Vec<i64> = batches
            .iter()
            .flat_map(|vals| {
                let parts = Placement::new(4).scatter(&Column::Int(vals.clone()).as_slice());
                parts
                    .into_iter()
                    .flat_map(|pos| pos.into_iter().map(|p| vals[p as usize]))
                    .collect::<Vec<_>>()
            })
            .collect();
        let vals = sb.with(|b| b.snapshot().col(0).unwrap().as_int().unwrap().to_vec());
        assert_eq!(vals, expect);
    }

    #[test]
    fn keyed_receptor_fleet_loses_nothing() {
        use crate::basket::Basket;

        let sb = ShardedBasket::new(Basket::new("s", &[("k", DataType::Int)]), 4);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let mut left = 30i64;
                ReceptorHandle::spawn_keyed(sb.clone(), 0, 4, move || {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some((0, vec![Column::Int(vec![left % 5, tid * 100 + left])]))
                })
            })
            .collect();
        let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(delivered, 4 * 30 * 2);
        assert_eq!(sb.seal(), 240);
        let mut vals = sb.with(|b| b.snapshot().col(0).unwrap().as_int().unwrap().to_vec());
        vals.sort_unstable();
        let mut expect: Vec<i64> =
            (0..4i64).flat_map(|t| (0..30).flat_map(move |i| [i % 5, t * 100 + i])).collect();
        expect.sort_unstable();
        assert_eq!(vals, expect);
    }

    #[test]
    fn dropping_handle_stops_source() {
        let basket = shared();
        // Infinite source; dropping the handle must terminate it.
        let handle =
            ReceptorHandle::spawn(basket.clone(), 1, move || Some((0, vec![Column::Int(vec![7])])));
        // Let it make some progress, then drop.
        while basket.len() < 3 {
            std::thread::yield_now();
        }
        drop(handle);
        let frozen = basket.len();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // A few in-flight batches may still land, then growth stops.
        let later = basket.len();
        assert!(later <= frozen + 2, "source kept producing after drop");
    }
}
