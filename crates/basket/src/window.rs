//! Basic windows: the unit of incremental processing.
//!
//! "DataCell achieves incremental processing by partitioning a window into n
//! smaller parts, called basic windows. Each basic window is of equal size
//! to the sliding step of the window and is processed separately."
//! (paper §3, *Splitting Streams*)

use crate::basket::{BasketError, Timestamp};
use datacell_kernel::{Bat, Column, Oid};

/// An owned batch of stream tuples: the contents of one basic window (or of
/// a whole initial window before splitting).
///
/// Columns are aligned; `base_oid` is the global stream position of row 0.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicWindow {
    base_oid: Oid,
    cols: Vec<Column>,
    ts: Vec<Timestamp>,
    names: Vec<String>,
}

impl BasicWindow {
    /// Assemble a basic window. Invariants (aligned lengths) are the
    /// caller's responsibility; [`crate::Basket::read_range`] guarantees them.
    pub fn new(
        base_oid: Oid,
        cols: Vec<Column>,
        ts: Vec<Timestamp>,
        names: Vec<String>,
    ) -> BasicWindow {
        debug_assert!(cols.iter().all(|c| c.len() == ts.len()));
        BasicWindow { base_oid, cols, ts, names }
    }

    /// Global oid of the first tuple.
    pub fn base_oid(&self) -> Oid {
        self.base_oid
    }

    /// One past the global oid of the last tuple.
    pub fn end_oid(&self) -> Oid {
        self.base_oid + self.len() as u64
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the window holds no tuples (time-based windows may be
    /// empty; "Empty basic windows are recognized and simply skipped").
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Arrival timestamps.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.ts
    }

    /// Borrow column `i`.
    pub fn col(&self, i: usize) -> crate::Result<&Column> {
        self.cols.get(i).ok_or_else(|| BasketError::UnknownColumn(format!("#{i}")))
    }

    /// Borrow a column by attribute name.
    pub fn col_by_name(&self, name: &str) -> crate::Result<&Column> {
        let i = self
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| BasketError::UnknownColumn(name.to_owned()))?;
        self.col(i)
    }

    /// The attribute `i` as a BAT whose head starts at this window's global
    /// position — so selections on basic windows yield *global* candidate
    /// oids, exactly what lets intermediates from different basic windows
    /// combine safely.
    pub fn bat(&self, i: usize) -> crate::Result<Bat> {
        Ok(Bat::new(self.base_oid, self.col(i)?.clone()))
    }

    /// Like [`BasicWindow::bat`] by attribute name.
    pub fn bat_by_name(&self, name: &str) -> crate::Result<Bat> {
        Ok(Bat::new(self.base_oid, self.col_by_name(name)?.clone()))
    }

    /// Split into `n` equally sized basic windows (requires `len % n == 0`;
    /// the engine arranges `len == n * step`). This is the paper's
    /// `basket.split(input, n)` — line 7 of Algorithm 2.
    pub fn split(&self, n: usize) -> crate::Result<Vec<BasicWindow>> {
        if n == 0 || !self.len().is_multiple_of(n) {
            return Err(BasketError::Malformed(format!(
                "cannot split {} tuples into {} equal basic windows",
                self.len(),
                n
            )));
        }
        let step = self.len() / n;
        Ok((0..n).map(|i| self.slice(i * step, step)).collect())
    }

    /// Carve out rows `[offset, offset+len)` as a new window.
    pub fn slice(&self, offset: usize, len: usize) -> BasicWindow {
        BasicWindow {
            base_oid: self.base_oid + offset as u64,
            cols: self.cols.iter().map(|c| c.slice_owned(offset, len)).collect(),
            ts: self.ts[offset..offset + len].to_vec(),
            names: self.names.clone(),
        }
    }

    /// Concatenate consecutive windows (used to coalesce chunks back into a
    /// basic window in the m-chunk optimization). Windows must be contiguous
    /// in oid space.
    pub fn concat(parts: &[&BasicWindow]) -> crate::Result<BasicWindow> {
        let first =
            parts.first().ok_or_else(|| BasketError::Malformed("concat of zero windows".into()))?;
        let mut out = (*first).clone();
        for w in &parts[1..] {
            if w.base_oid != out.end_oid() {
                return Err(BasketError::Malformed(format!(
                    "windows not contiguous: {} then {}",
                    out.end_oid(),
                    w.base_oid
                )));
            }
            for (dst, src) in out.cols.iter_mut().zip(&w.cols) {
                dst.append(src)?;
            }
            out.ts.extend_from_slice(&w.ts);
        }
        Ok(out)
    }

    /// All columns (aligned).
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::DataType;

    fn window() -> BasicWindow {
        BasicWindow::new(
            100,
            vec![Column::Int(vec![1, 2, 3, 4]), Column::Float(vec![0.1, 0.2, 0.3, 0.4])],
            vec![10, 11, 12, 13],
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn accessors() {
        let w = window();
        assert_eq!(w.base_oid(), 100);
        assert_eq!(w.end_oid(), 104);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.names(), &["x".to_owned(), "y".to_owned()]);
        assert_eq!(w.col_by_name("y").unwrap(), &Column::Float(vec![0.1, 0.2, 0.3, 0.4]));
        assert!(w.col_by_name("z").is_err());
        assert!(w.col(7).is_err());
    }

    #[test]
    fn bat_preserves_global_position() {
        let w = window();
        let b = w.bat_by_name("x").unwrap();
        assert_eq!(b.hseq, 100);
        assert_eq!(b.oid_at(3), 103);
    }

    #[test]
    fn split_into_basic_windows() {
        let w = window();
        let parts = w.split(2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].base_oid(), 100);
        assert_eq!(parts[1].base_oid(), 102);
        assert_eq!(parts[1].col(0).unwrap(), &Column::Int(vec![3, 4]));
        assert_eq!(parts[1].timestamps(), &[12, 13]);
    }

    #[test]
    fn split_requires_divisibility() {
        let w = window();
        assert!(w.split(3).is_err());
        assert!(w.split(0).is_err());
        assert!(w.split(4).is_ok());
    }

    #[test]
    fn slice_arbitrary_range() {
        let w = window();
        let s = w.slice(1, 2);
        assert_eq!(s.base_oid(), 101);
        assert_eq!(s.col(0).unwrap(), &Column::Int(vec![2, 3]));
    }

    #[test]
    fn concat_contiguous() {
        let w = window();
        let parts = w.split(4).unwrap();
        let refs: Vec<&BasicWindow> = parts.iter().collect();
        let back = BasicWindow::concat(&refs).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn concat_rejects_gaps() {
        let w = window();
        let a = w.slice(0, 1);
        let c = w.slice(2, 1);
        assert!(BasicWindow::concat(&[&a, &c]).is_err());
        assert!(BasicWindow::concat(&[]).is_err());
    }

    #[test]
    fn empty_window_is_recognized() {
        let w = BasicWindow::new(5, vec![Column::empty(DataType::Int)], vec![], vec!["x".into()]);
        assert!(w.is_empty());
        assert_eq!(w.end_oid(), 5);
    }
}
