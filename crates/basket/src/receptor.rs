//! Receptors: the ingress edge of DataCell.
//!
//! "It contains receptors and emitters, i.e., a set of separate processes
//! per stream and per client, respectively, to listen for new data and to
//! deliver results." (paper §2)
//!
//! Two receptor flavours are provided:
//!
//! * [`CsvReceptor`] — parses CSV text ("The input file is organized in
//!   rows, i.e., a typical csv file. DataCell has to parse the file and load
//!   the proper column/baskets for each batch", paper §4.2). This is the
//!   loading path whose cost the final figure of §4.2 breaks down.
//! * [`GeneratorReceptor`] — wraps a batch-producing closure; the harnesses
//!   use it to feed synthetic workloads without I/O.

use crate::basket::Timestamp;
use crate::sharded::Ingest;
use datacell_kernel::{Column, DataType, Oid};
use datacell_telemetry::Counter;
use std::fmt;
use std::sync::OnceLock;

/// Process-wide count of rows rejected by CSV receptors (malformed or
/// schema-mismatched), on the global telemetry registry. Wire-fed ingest
/// surfaces data loss here even when the caller ignores the per-call
/// [`ParseOutcome`].
fn rejected_counter() -> &'static Counter {
    static REJECTED: OnceLock<Counter> = OnceLock::new();
    REJECTED.get_or_init(|| {
        datacell_telemetry::global().counter(
            "datacell_receptor_rows_rejected_total",
            "Rows rejected by CSV receptors: malformed fields, wrong arity, or schema-mismatched values.",
        )
    })
}

/// How a CSV receptor treats rows that fail to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedPolicy {
    /// Skip bad rows, counting them.
    Skip,
    /// Abort ingestion with an error.
    Fail,
}

/// CSV parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// What one [`CsvReceptor::parse`] call did: rows that made it into the
/// pending batch and rows that were rejected (malformed, wrong arity, or
/// schema-mismatched). Under [`MalformedPolicy::Fail`] a rejection raises
/// [`CsvError`] instead, so `rejected` is only ever nonzero when skipping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseOutcome {
    /// Rows parsed into the pending batch by this call.
    pub rows: usize,
    /// Rows rejected by this call.
    pub rejected: usize,
}

/// Parses delimiter-separated rows into typed columns according to a schema.
///
/// The receptor is incremental: feed it text with [`CsvReceptor::parse`],
/// then deliver the accumulated batch to a basket with
/// [`CsvReceptor::flush_into`]. Statistics (rows parsed / skipped) support
/// failure-injection tests and operational visibility.
#[derive(Debug)]
pub struct CsvReceptor {
    schema: Vec<DataType>,
    delimiter: char,
    policy: MalformedPolicy,
    pending: Vec<Column>,
    rows_ok: usize,
    rows_skipped: usize,
    lines_seen: usize,
}

impl CsvReceptor {
    /// A receptor for the given column types, comma-delimited, skipping
    /// malformed rows.
    pub fn new(schema: &[DataType]) -> CsvReceptor {
        CsvReceptor {
            schema: schema.to_vec(),
            delimiter: ',',
            policy: MalformedPolicy::Skip,
            pending: schema.iter().map(|t| Column::empty(*t)).collect(),
            rows_ok: 0,
            rows_skipped: 0,
            lines_seen: 0,
        }
    }

    /// Use a different delimiter.
    pub fn with_delimiter(mut self, d: char) -> CsvReceptor {
        self.delimiter = d;
        self
    }

    /// Use a different malformed-row policy.
    pub fn with_policy(mut self, p: MalformedPolicy) -> CsvReceptor {
        self.policy = p;
        self
    }

    /// Rows successfully parsed since creation.
    pub fn rows_ok(&self) -> usize {
        self.rows_ok
    }

    /// Rows skipped as malformed.
    pub fn rows_skipped(&self) -> usize {
        self.rows_skipped
    }

    /// Rows currently buffered and not yet flushed.
    pub fn pending_rows(&self) -> usize {
        self.pending.first().map_or(0, datacell_kernel::Column::len)
    }

    /// Parse a chunk of CSV text (possibly many lines; blank lines are
    /// ignored) into the pending batch.
    ///
    /// Returns how many rows parsed **and** how many were rejected — under
    /// [`MalformedPolicy::Skip`] bad rows used to vanish silently unless
    /// the caller polled [`CsvReceptor::rows_skipped`]; wire-fed ingest
    /// must see the loss on every call. Each rejection also bumps the
    /// process-wide `datacell_receptor_rows_rejected_total` counter.
    pub fn parse(&mut self, text: &str) -> Result<ParseOutcome, CsvError> {
        let mut out = ParseOutcome::default();
        for line in text.lines() {
            self.lines_seen += 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match self.parse_line(line) {
                Ok(()) => {
                    self.rows_ok += 1;
                    out.rows += 1;
                }
                Err(msg) => {
                    self.rows_skipped += 1;
                    out.rejected += 1;
                    rejected_counter().inc();
                    if self.policy == MalformedPolicy::Fail {
                        return Err(CsvError { line: self.lines_seen, message: msg });
                    }
                }
            }
        }
        Ok(out)
    }

    fn parse_line(&mut self, line: &str) -> Result<(), String> {
        let fields: Vec<&str> = line.split(self.delimiter).collect();
        if fields.len() != self.schema.len() {
            return Err(format!("expected {} fields, found {}", self.schema.len(), fields.len()));
        }
        // Two-phase: validate everything first so a bad row never leaves a
        // partially appended batch behind.
        let mut ints = Vec::new();
        let mut floats = Vec::new();
        let mut bools = Vec::new();
        for (f, t) in fields.iter().zip(&self.schema) {
            let f = f.trim();
            match t {
                DataType::Int => {
                    ints.push(f.parse::<i64>().map_err(|e| format!("int `{f}`: {e}"))?);
                }
                DataType::Float => {
                    floats.push(f.parse::<f64>().map_err(|e| format!("float `{f}`: {e}"))?);
                }
                DataType::Bool => {
                    bools.push(f.parse::<bool>().map_err(|e| format!("bool `{f}`: {e}"))?);
                }
                DataType::Oid => {
                    ints.push(f.parse::<i64>().map_err(|e| format!("oid `{f}`: {e}"))?);
                }
                DataType::Str => {}
            }
        }
        let row_base = self.pending.first().map_or(0, Column::len);
        let (mut ii, mut fi, mut bi) = (0, 0, 0);
        for ((f, t), col) in fields.iter().zip(&self.schema).zip(&mut self.pending) {
            let v = match t {
                DataType::Int => {
                    ii += 1;
                    datacell_kernel::Value::Int(ints[ii - 1])
                }
                DataType::Oid => {
                    ii += 1;
                    datacell_kernel::Value::Oid(ints[ii - 1] as u64)
                }
                DataType::Float => {
                    fi += 1;
                    datacell_kernel::Value::Float(floats[fi - 1])
                }
                DataType::Bool => {
                    bi += 1;
                    datacell_kernel::Value::Bool(bools[bi - 1])
                }
                DataType::Str => datacell_kernel::Value::Str(f.trim().to_owned()),
            };
            if let Err(e) = col.push(v) {
                // A value/column type mismatch (schema drifted under us, or
                // a receptor was built with a schema its columns disagree
                // with). Off a socket this must reject the *row*, never
                // abort the engine: roll back the columns already pushed so
                // no partial row survives, and report it like any other
                // malformed line.
                for c in &mut self.pending {
                    c.truncate(row_base);
                }
                return Err(format!("schema mismatch: {e}"));
            }
        }
        Ok(())
    }

    /// Move the pending batch into a basket, stamping all rows `now`.
    /// Returns the first assigned oid (or the basket end when empty).
    ///
    /// Generic over the ingest edge: a [`crate::SharedBasket`] (the
    /// classic single-mutex path) or a [`crate::ShardedBasket`] (the
    /// contention-free sharded path) both work unchanged.
    pub fn flush_into(&mut self, basket: &impl Ingest, now: Timestamp) -> crate::Result<Oid> {
        let batch: Vec<Column> = std::mem::replace(
            &mut self.pending,
            self.schema.iter().map(|t| Column::empty(*t)).collect(),
        );
        basket.ingest(&batch, now)
    }
}

/// A receptor producing synthetic batches from a closure — one call per
/// "network read". Returns `None` when the source is exhausted.
pub struct GeneratorReceptor {
    gen: Box<dyn FnMut() -> Option<Vec<Column>> + Send>,
    produced: usize,
}

impl fmt::Debug for GeneratorReceptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GeneratorReceptor").field("produced", &self.produced).finish()
    }
}

impl GeneratorReceptor {
    /// Wrap a batch generator.
    pub fn new(gen: impl FnMut() -> Option<Vec<Column>> + Send + 'static) -> GeneratorReceptor {
        GeneratorReceptor { gen: Box::new(gen), produced: 0 }
    }

    /// Pull one batch and append it to the basket (either ingest edge —
    /// see [`CsvReceptor::flush_into`]). Returns how many tuples were
    /// delivered, or `None` when the generator is exhausted.
    pub fn pump(&mut self, basket: &impl Ingest, now: Timestamp) -> crate::Result<Option<usize>> {
        match (self.gen)() {
            None => Ok(None),
            Some(batch) => {
                let n = batch.first().map_or(0, datacell_kernel::Column::len);
                basket.ingest(&batch, now)?;
                self.produced += n;
                Ok(Some(n))
            }
        }
    }

    /// Total tuples produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basket::{Basket, SharedBasket};
    use crate::sharded::ShardedBasket;

    fn shared() -> SharedBasket {
        SharedBasket::new(Basket::new("s", &[("x", DataType::Int), ("y", DataType::Float)]))
    }

    #[test]
    fn csv_parses_well_formed_rows() {
        let mut r = CsvReceptor::new(&[DataType::Int, DataType::Float]);
        let n = r.parse("1,0.5\n2,1.5\n").unwrap();
        assert_eq!(n, ParseOutcome { rows: 2, rejected: 0 });
        assert_eq!(r.pending_rows(), 2);
        let b = shared();
        r.flush_into(&b, 3).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(r.pending_rows(), 0);
        b.with(|bk| {
            let w = bk.snapshot();
            assert_eq!(w.col(0).unwrap(), &Column::Int(vec![1, 2]));
            assert_eq!(w.col(1).unwrap(), &Column::Float(vec![0.5, 1.5]));
        });
    }

    #[test]
    fn csv_skips_malformed_by_default() {
        let mut r = CsvReceptor::new(&[DataType::Int, DataType::Float]);
        let before = crate::receptor::rejected_counter().get();
        let out = r.parse("1,0.5\nbogus,row,extra\nnotanint,1.0\n3,3.0").unwrap();
        assert_eq!(out, ParseOutcome { rows: 2, rejected: 2 });
        assert_eq!(r.rows_ok(), 2);
        assert_eq!(r.rows_skipped(), 2);
        // Every rejection is also visible process-wide for wire-fed ingest
        // (>=: sibling tests share the global counter under parallel runs).
        assert!(crate::receptor::rejected_counter().get() >= before + 2);
    }

    #[test]
    fn csv_fail_policy_reports_line() {
        let mut r = CsvReceptor::new(&[DataType::Int]).with_policy(MalformedPolicy::Fail);
        r.parse("1").unwrap();
        let err = r.parse("2\nbad\n3").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("int"));
    }

    #[test]
    fn csv_malformed_row_leaves_no_partial_data() {
        let mut r = CsvReceptor::new(&[DataType::Int, DataType::Int]);
        // First field parses, second does not: nothing may be appended.
        r.parse("5,oops").unwrap();
        assert_eq!(r.pending_rows(), 0);
    }

    #[test]
    fn schema_mismatched_push_rejects_the_row_without_panicking() {
        // Build a receptor whose pending columns disagree with its schema —
        // the situation that used to hit `expect("schema-aligned push")`.
        let mut r = CsvReceptor::new(&[DataType::Int, DataType::Int]);
        r.pending[1] = Column::empty(DataType::Float);
        let out = r.parse("1,2\n3,4\n").unwrap();
        assert_eq!(out, ParseOutcome { rows: 0, rejected: 2 });
        // The rollback left no partial rows behind.
        assert_eq!(r.pending_rows(), 0);
        assert!(r.pending.iter().all(Column::is_empty));
    }

    #[test]
    fn csv_custom_delimiter_and_strings() {
        let mut r = CsvReceptor::new(&[DataType::Str, DataType::Int]).with_delimiter(';');
        r.parse("hello; 7\nworld;8").unwrap();
        assert_eq!(r.pending_rows(), 2);
    }

    #[test]
    fn csv_blank_lines_ignored() {
        let mut r = CsvReceptor::new(&[DataType::Int]);
        r.parse("\n1\n\n2\n\n").unwrap();
        assert_eq!(r.rows_ok(), 2);
    }

    #[test]
    fn csv_bool_and_oid_fields() {
        let mut r = CsvReceptor::new(&[DataType::Bool, DataType::Oid]);
        r.parse("true,42").unwrap();
        assert_eq!(r.rows_ok(), 1);
        assert_eq!(r.rows_skipped(), 0);
    }

    #[test]
    fn receptors_feed_sharded_baskets_through_the_same_api() {
        // The ingest edges are interchangeable: the same receptor code
        // flushes into a sharded basket, which seals to the same view.
        let mut r = CsvReceptor::new(&[DataType::Int, DataType::Float]);
        r.parse("1,0.5\n2,1.5\n").unwrap();
        let sb = ShardedBasket::new(
            Basket::new("s", &[("x", DataType::Int), ("y", DataType::Float)]),
            4,
        );
        assert_eq!(r.flush_into(&sb, 3).unwrap(), 0);
        assert_eq!(sb.len(), 2); // ordered path seals synchronously
        let mut g = GeneratorReceptor::new({
            let mut left = 1;
            move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                Some(vec![Column::Int(vec![9]), Column::Float(vec![0.9])])
            }
        });
        assert_eq!(g.pump(&sb, 4).unwrap(), Some(1));
        assert_eq!(g.pump(&sb, 5).unwrap(), None);
        assert_eq!(sb.len(), 3);
        sb.with(|bk| {
            let w = bk.snapshot();
            assert_eq!(w.col(0).unwrap(), &Column::Int(vec![1, 2, 9]));
        });
    }

    #[test]
    fn generator_pumps_until_exhausted() {
        let mut left = 3;
        let mut g = GeneratorReceptor::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some(vec![Column::Int(vec![1, 2]), Column::Float(vec![0.1, 0.2])])
        });
        let b = shared();
        let mut t = 0;
        while let Some(n) = g.pump(&b, t).unwrap() {
            assert_eq!(n, 2);
            t += 1;
        }
        assert_eq!(b.len(), 6);
        assert_eq!(g.produced(), 6);
    }
}
