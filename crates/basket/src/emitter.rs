//! Emitters: the egress edge of DataCell.
//!
//! Factories place each window result in an *output basket*; emitters drain
//! output baskets and deliver the rows to clients (paper §2: "a set of
//! separate processes … per client … to deliver results").

use crate::basket::{SharedBasket, Timestamp};
use crate::sharded::ShardedBasket;
use datacell_kernel::Value;

/// One delivered result row.
pub type Row = Vec<Value>;

/// Something that consumes result batches from an output basket.
pub trait Emitter {
    /// Drain everything currently resident in the output basket, marking it
    /// consumed (expired). Returns the number of rows delivered.
    fn drain(&mut self, out: &SharedBasket) -> crate::Result<usize>;

    /// Drain a sharded output basket: seal staged shard segments first so
    /// the client sees every delivered row, then drain the merged view.
    /// Provided for all emitters; `drain` does the per-implementation work.
    fn drain_sharded(&mut self, out: &ShardedBasket) -> crate::Result<usize> {
        out.seal();
        self.drain(&out.shared())
    }
}

/// Collects delivered rows in memory — the default client used by tests,
/// examples and the benchmark harnesses.
#[derive(Debug, Default)]
pub struct CollectEmitter {
    rows: Vec<(Timestamp, Row)>,
}

impl CollectEmitter {
    /// A fresh, empty collector.
    pub fn new() -> CollectEmitter {
        CollectEmitter::default()
    }

    /// All rows delivered so far, with their result timestamps.
    pub fn rows(&self) -> &[(Timestamp, Row)] {
        &self.rows
    }

    /// Rows only (drop timestamps).
    pub fn values(&self) -> Vec<Row> {
        self.rows.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Number of delivered rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Forget everything collected so far.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

impl Emitter for CollectEmitter {
    fn drain(&mut self, out: &SharedBasket) -> crate::Result<usize> {
        out.with(|b| {
            let w = b.snapshot();
            let n = w.len();
            for i in 0..n {
                let mut row = Row::with_capacity(w.columns().len());
                for c in w.columns() {
                    row.push(c.get(i).expect("aligned"));
                }
                self.rows.push((w.timestamps()[i], row));
            }
            b.expire_upto(b.end_oid());
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basket::Basket;
    use datacell_kernel::{Column, DataType};

    #[test]
    fn collect_emitter_drains_and_expires() {
        let out = SharedBasket::new(Basket::new("out", &[("sum", DataType::Int)]));
        out.append(&[Column::Int(vec![10, 20])], 5).unwrap();
        let mut e = CollectEmitter::new();
        assert_eq!(e.drain(&out).unwrap(), 2);
        assert_eq!(out.len(), 0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.rows()[0], (5, vec![Value::Int(10)]));
        assert_eq!(e.values(), vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
        // Draining again is a no-op.
        assert_eq!(e.drain(&out).unwrap(), 0);
        assert_eq!(e.len(), 2);
        e.clear();
        assert!(e.is_empty());
    }

    #[test]
    fn drain_sharded_seals_then_delivers() {
        use crate::sharded::ShardedBasket;
        let out = ShardedBasket::new(Basket::new("out", &[("sum", DataType::Int)]), 2);
        out.append_shard(0, &[Column::Int(vec![10])], 1).unwrap();
        out.append_shard(1, &[Column::Int(vec![20])], 2).unwrap();
        assert_eq!(out.len(), 0); // everything still staged
        let mut e = CollectEmitter::new();
        assert_eq!(e.drain_sharded(&out).unwrap(), 2);
        assert_eq!(e.values(), vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
        assert_eq!(out.len(), 0);
        assert_eq!(out.staged_len(), 0);
    }

    #[test]
    fn drain_multi_column_rows() {
        let out =
            SharedBasket::new(Basket::new("out", &[("k", DataType::Int), ("v", DataType::Float)]));
        out.append(&[Column::Int(vec![1]), Column::Float(vec![0.5])], 0).unwrap();
        let mut e = CollectEmitter::new();
        e.drain(&out).unwrap();
        assert_eq!(e.rows()[0].1, vec![Value::Int(1), Value::Float(0.5)]);
    }
}
