//! MAL-like physical plans.
//!
//! MonetDB compiles SQL into MAL: a flat program of columnar kernel calls
//! where **every instruction materializes its result into a variable**. The
//! DataCell rewriter needs exactly this representation — the explicit
//! intermediates are the "breakpoints in multiple parts of a query plan"
//! (paper §3) where execution can be frozen, partial results cached, and
//! processing resumed when the window slides.
//!
//! A [`MalPlan`] is a straight-line SSA-ish program: each [`Instr`] writes
//! one or more fresh [`VarId`]s and reads earlier ones. The final
//! result-set columns are designated by `result_vars`.

use datacell_kernel::algebra::{AggKind, ArithOp, Groups, Predicate};
use datacell_kernel::{Bat, Value};
use std::fmt;

/// Index of a MAL variable.
pub type VarId = usize;

/// A runtime value bound to a MAL variable.
#[derive(Debug, Clone, PartialEq)]
pub enum MalValue {
    /// A columnar intermediate.
    Bat(Bat),
    /// A grouping structure (`group.new` result).
    Groups(Groups),
    /// A scalar (aggregate result).
    Scalar(Value),
    /// An absent scalar: aggregate over an empty window (`min`/`max`/`avg`
    /// of nothing). Plans propagate absence; a fully absent scalar result
    /// row is simply not emitted.
    Absent,
}

impl MalValue {
    /// Borrow as BAT or fail with a message naming `what`.
    pub fn as_bat(&self, what: &str) -> crate::Result<&Bat> {
        match self {
            MalValue::Bat(b) => Ok(b),
            other => {
                Err(crate::PlanError::Internal(format!("{what}: expected BAT, got {other:?}")))
            }
        }
    }

    /// Borrow as Groups or fail.
    pub fn as_groups(&self, what: &str) -> crate::Result<&Groups> {
        match self {
            MalValue::Groups(g) => Ok(g),
            other => {
                Err(crate::PlanError::Internal(format!("{what}: expected groups, got {other:?}")))
            }
        }
    }

    /// Borrow as scalar (or `None` when absent) or fail.
    pub fn as_scalar(&self, what: &str) -> crate::Result<Option<&Value>> {
        match self {
            MalValue::Scalar(v) => Ok(Some(v)),
            MalValue::Absent => Ok(None),
            other => {
                Err(crate::PlanError::Internal(format!("{what}: expected scalar, got {other:?}")))
            }
        }
    }
}

/// A MAL operator. Variables referenced are listed by [`MalOp::args`].
#[derive(Debug, Clone, PartialEq)]
pub enum MalOp {
    /// `basket.bind(stream, attr)` — the window content of one stream
    /// attribute (whole window for one-shot execution; one basic window in
    /// incremental mode).
    BindStream {
        /// Stream name.
        stream: String,
        /// Attribute name.
        attr: String,
    },
    /// `sql.bind(table, attr)` — a persistent table column.
    BindTable {
        /// Table name.
        table: String,
        /// Attribute name.
        attr: String,
    },
    /// `algebra.select(input, pred)` → candidate oids.
    Select {
        /// Values searched.
        input: VarId,
        /// Selection predicate.
        pred: Predicate,
    },
    /// `algebra.fetch(cands, values)` — late tuple reconstruction.
    Fetch {
        /// Candidate oids.
        cands: VarId,
        /// Values fetched through the candidates.
        values: VarId,
    },
    /// `algebra.join(left, right)` → two aligned oid BATs (2 dests).
    Join {
        /// Left values.
        left: VarId,
        /// Right values.
        right: VarId,
    },
    /// `group.new(keys)` → grouping structure.
    Group {
        /// Grouping keys.
        keys: VarId,
    },
    /// Materialize per-group key values from a grouping.
    GroupKeys {
        /// The grouping.
        groups: VarId,
        /// The key column that was grouped.
        keys: VarId,
    },
    /// Per-group aggregate (`aggr.sum` etc.). `vals` is `None` for
    /// `count(*)` which needs no value column.
    GroupedAgg {
        /// Aggregate function.
        kind: AggKind,
        /// Aggregated values (aligned with the grouping input).
        vals: Option<VarId>,
        /// The grouping.
        groups: VarId,
    },
    /// Fused group-and-aggregate: one grouping pass over `keys` feeding
    /// every aggregate in `aggs`. Writes `1 + aggs.len()` destinations —
    /// the distinct group keys (first-occurrence order) followed by one
    /// aggregate column per entry, aligned with the keys. This is the
    /// node the incremental rewriter consumes directly (the Fig. 3d
    /// cluster as a single operator) and the one `plan::exec` fans out
    /// through `kernel::par::grouped_agg_multi` at partitions > 1.
    /// `Group`/`GroupKeys`/`GroupedAgg` stay legal standalone nodes; the
    /// `fuse_group_agg` pass in [`crate::optimize`] lowers their chains
    /// to this form.
    GroupAgg {
        /// Grouping key column.
        keys: VarId,
        /// Aggregates: function plus value column (`None` for `count`).
        aggs: Vec<(AggKind, Option<VarId>)>,
    },
    /// Scalar aggregate over a whole BAT.
    ScalarAgg {
        /// Aggregate function.
        kind: AggKind,
        /// Aggregated values.
        vals: VarId,
    },
    /// `algebra.concat(parts...)` — the merge operator of incremental plans.
    Concat {
        /// Parts, concatenated in order.
        parts: Vec<VarId>,
    },
    /// Element-wise arithmetic over two aligned BATs.
    MapArith {
        /// Left operand.
        left: VarId,
        /// Right operand.
        right: VarId,
        /// Operator.
        op: ArithOp,
    },
    /// Element-wise arithmetic with a constant.
    MapScalar {
        /// Input BAT.
        input: VarId,
        /// Operator.
        op: ArithOp,
        /// Constant operand (right side).
        value: Value,
    },
    /// Scalar division — the final merge step of an expanded `avg`.
    DivScalar {
        /// Numerator scalar.
        num: VarId,
        /// Denominator scalar.
        den: VarId,
    },
    /// Sorted copy of a BAT.
    Sort {
        /// Input BAT.
        input: VarId,
        /// Descending?
        desc: bool,
    },
    /// The permutation (as positional oids) that sorts `input`.
    SortPerm {
        /// Input BAT.
        input: VarId,
        /// Descending?
        desc: bool,
    },
    /// Distinct values (first-occurrence order).
    Distinct {
        /// Input BAT.
        input: VarId,
    },
    /// First `n` rows of a BAT (LIMIT).
    Slice {
        /// Input BAT.
        input: VarId,
        /// Row budget.
        n: usize,
    },
}

impl MalOp {
    /// The variables this operator reads, in a fixed order (used by both
    /// the executor and the incremental rewriter's dataflow analysis).
    pub fn args(&self) -> Vec<VarId> {
        match self {
            MalOp::BindStream { .. } | MalOp::BindTable { .. } => vec![],
            MalOp::Select { input, .. } => vec![*input],
            MalOp::Fetch { cands, values } => vec![*cands, *values],
            MalOp::Join { left, right } => vec![*left, *right],
            MalOp::Group { keys } => vec![*keys],
            MalOp::GroupKeys { groups, keys } => vec![*groups, *keys],
            MalOp::GroupedAgg { vals, groups, .. } => match vals {
                Some(v) => vec![*v, *groups],
                None => vec![*groups],
            },
            MalOp::GroupAgg { keys, aggs } => {
                let mut out = vec![*keys];
                out.extend(aggs.iter().filter_map(|(_, v)| *v));
                out
            }
            MalOp::ScalarAgg { vals, .. } => vec![*vals],
            MalOp::Concat { parts } => parts.clone(),
            MalOp::MapArith { left, right, .. } => vec![*left, *right],
            MalOp::MapScalar { input, .. } => vec![*input],
            MalOp::DivScalar { num, den } => vec![*num, *den],
            MalOp::Sort { input, .. }
            | MalOp::SortPerm { input, .. }
            | MalOp::Distinct { input }
            | MalOp::Slice { input, .. } => vec![*input],
        }
    }

    /// Number of variables this operator writes.
    pub fn n_dests(&self) -> usize {
        match self {
            MalOp::Join { .. } => 2,
            MalOp::GroupAgg { aggs, .. } => 1 + aggs.len(),
            _ => 1,
        }
    }

    /// Operator name in MAL-ish rendering.
    pub fn name(&self) -> &'static str {
        match self {
            MalOp::BindStream { .. } => "basket.bind",
            MalOp::BindTable { .. } => "sql.bind",
            MalOp::Select { .. } => "algebra.select",
            MalOp::Fetch { .. } => "algebra.fetch",
            MalOp::Join { .. } => "algebra.join",
            MalOp::Group { .. } => "group.new",
            MalOp::GroupKeys { .. } => "group.keys",
            MalOp::GroupedAgg { .. } => "aggr.grouped",
            MalOp::GroupAgg { .. } => "group.agg",
            MalOp::ScalarAgg { .. } => "aggr.scalar",
            MalOp::Concat { .. } => "algebra.concat",
            MalOp::MapArith { .. } => "batcalc.arith",
            MalOp::MapScalar { .. } => "batcalc.arith_const",
            MalOp::DivScalar { .. } => "calc.div",
            MalOp::Sort { .. } => "algebra.sort",
            MalOp::SortPerm { .. } => "algebra.sortperm",
            MalOp::Distinct { .. } => "algebra.distinct",
            MalOp::Slice { .. } => "algebra.slice",
        }
    }
}

/// One MAL instruction: `dests := op(args)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Destination variables (2 for joins, 1 otherwise).
    pub dests: Vec<VarId>,
    /// The operator.
    pub op: MalOp,
}

/// A straight-line MAL program plus its result designation.
#[derive(Debug, Clone, PartialEq)]
pub struct MalPlan {
    /// Instructions in execution order; instruction `i` may only read
    /// variables written by instructions `< i`.
    pub instrs: Vec<Instr>,
    /// Output column names.
    pub result_names: Vec<String>,
    /// Variables holding the output columns/scalars.
    pub result_vars: Vec<VarId>,
    /// Total number of variables.
    pub nvars: usize,
    /// Streams read by the plan (scan order).
    pub streams: Vec<String>,
}

impl MalPlan {
    /// MAL-ish textual rendering, one instruction per line. Each line
    /// leads with the instruction index in the same numbering the
    /// [`crate::verify`] diagnostics use (`instr 2` points at the `[02]`
    /// line), and every destination the op writes is listed, so explain
    /// output and verifier output name the same `X_n` variables.
    ///
    /// ```text
    /// [00] X_0 := basket.bind(s, x1)
    /// [01] X_1 := algebra.select(X_0, > 10)
    /// ...
    /// return sum_x2 := X_5
    /// ```
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            let dests: Vec<String> = ins.dests.iter().map(|d| format!("X_{d}")).collect();
            let extra = match &ins.op {
                MalOp::BindStream { stream, attr } => format!("({stream}, {attr})"),
                MalOp::BindTable { table, attr } => format!("({table}, {attr})"),
                MalOp::Select { input, pred } => format!("(X_{input}, {pred:?})"),
                MalOp::GroupedAgg { kind, vals, groups } => match vals {
                    Some(v) => format!("[{}](X_{v}, X_{groups})", kind.sql()),
                    None => format!("[{}](X_{groups})", kind.sql()),
                },
                MalOp::GroupAgg { keys, aggs } => {
                    let parts: Vec<String> = aggs
                        .iter()
                        .map(|(kind, vals)| match vals {
                            Some(v) => format!("{}(X_{v})", kind.sql()),
                            None => format!("{}()", kind.sql()),
                        })
                        .collect();
                    format!("[{}](X_{keys})", parts.join(", "))
                }
                MalOp::ScalarAgg { kind, vals } => format!("[{}](X_{vals})", kind.sql()),
                MalOp::MapArith { left, right, op } => {
                    format!("(X_{left} {} X_{right})", op.symbol())
                }
                MalOp::MapScalar { input, op, value } => {
                    format!("(X_{input} {} {value})", op.symbol())
                }
                MalOp::Slice { input, n } => format!("(X_{input}, {n})"),
                op => {
                    let args: Vec<String> = op.args().iter().map(|a| format!("X_{a}")).collect();
                    format!("({})", args.join(", "))
                }
            };
            out.push_str(&format!("[{i:02}] {} := {}{}\n", dests.join(", "), ins.op.name(), extra));
        }
        for (name, var) in self.result_names.iter().zip(&self.result_vars) {
            out.push_str(&format!("return {name} := X_{var}\n"));
        }
        out
    }

    /// Sanity check the SSA-ish invariants: each var written once, reads
    /// only after writes, result vars written. Delegates to the structural
    /// layer of [`crate::verify`] so there is a single implementation of
    /// the rules; use [`crate::verify::verify_all`] for the full typed
    /// analysis and the complete diagnostic list.
    pub fn validate(&self) -> crate::Result<()> {
        match crate::verify::verify_structural(self).into_iter().next() {
            None => Ok(()),
            Some(e) => Err(crate::PlanError::Verify(Box::new(e))),
        }
    }
}

impl fmt::Display for MalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Incremental builder for MAL programs (used by the compiler and tests).
#[derive(Debug, Default)]
pub struct MalBuilder {
    instrs: Vec<Instr>,
    nvars: usize,
    streams: Vec<String>,
}

impl MalBuilder {
    /// Fresh builder.
    pub fn new() -> MalBuilder {
        MalBuilder::default()
    }

    /// Allocate a fresh variable.
    pub fn fresh(&mut self) -> VarId {
        let v = self.nvars;
        self.nvars += 1;
        v
    }

    /// Emit a single-dest instruction, returning its destination.
    pub fn emit(&mut self, op: MalOp) -> VarId {
        if let MalOp::BindStream { stream, .. } = &op {
            if !self.streams.contains(stream) {
                self.streams.push(stream.clone());
            }
        }
        debug_assert_eq!(op.n_dests(), 1);
        let d = self.fresh();
        self.instrs.push(Instr { dests: vec![d], op });
        d
    }

    /// Emit a join (two destinations: left oids, right oids).
    pub fn emit_join(&mut self, left: VarId, right: VarId) -> (VarId, VarId) {
        let dl = self.fresh();
        let dr = self.fresh();
        self.instrs.push(Instr { dests: vec![dl, dr], op: MalOp::Join { left, right } });
        (dl, dr)
    }

    /// Emit a fused group-and-aggregate node; returns the group-keys
    /// destination plus one destination per aggregate, in `aggs` order.
    pub fn emit_group_agg(
        &mut self,
        keys: VarId,
        aggs: Vec<(AggKind, Option<VarId>)>,
    ) -> (VarId, Vec<VarId>) {
        let kd = self.fresh();
        let ads: Vec<VarId> = aggs.iter().map(|_| self.fresh()).collect();
        let mut dests = vec![kd];
        dests.extend(&ads);
        self.instrs.push(Instr { dests, op: MalOp::GroupAgg { keys, aggs } });
        (kd, ads)
    }

    /// Finish the program.
    pub fn finish(self, result_names: Vec<String>, result_vars: Vec<VarId>) -> MalPlan {
        MalPlan {
            instrs: self.instrs,
            result_names,
            result_vars,
            nvars: self.nvars,
            streams: self.streams,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::Column;

    fn tiny_plan() -> MalPlan {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x".into() });
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(10) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
        b.finish(vec!["sum_x".into()], vec![s])
    }

    #[test]
    fn builder_assigns_sequential_vars() {
        let p = tiny_plan();
        assert_eq!(p.nvars, 4);
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.streams, vec!["s".to_owned()]);
        p.validate().unwrap();
    }

    #[test]
    fn join_has_two_dests() {
        let mut b = MalBuilder::new();
        let l = b.emit(MalOp::BindStream { stream: "a".into(), attr: "k".into() });
        let r = b.emit(MalOp::BindStream { stream: "b".into(), attr: "k".into() });
        let (jl, jr) = b.emit_join(l, r);
        let p = b.finish(vec!["l".into(), "r".into()], vec![jl, jr]);
        p.validate().unwrap();
        assert_eq!(p.instrs[2].dests, vec![jl, jr]);
        assert_eq!(p.streams, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn explain_renders_mal_text() {
        let p = tiny_plan();
        let e = p.explain();
        // Instruction lines carry the verifier's op-index numbering.
        assert!(e.contains("[00] X_0 := basket.bind(s, x)"));
        assert!(e.contains("[03] X_3 := aggr.scalar"));
        assert!(e.contains("algebra.select(X_0"));
        assert!(e.contains("aggr.scalar[sum](X_2)"));
        assert!(e.contains("return sum_x := X_3"));
    }

    #[test]
    fn validate_catches_read_before_write() {
        let p = MalPlan {
            instrs: vec![Instr { dests: vec![0], op: MalOp::Distinct { input: 1 } }],
            result_names: vec![],
            result_vars: vec![],
            nvars: 2,
            streams: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_double_write() {
        let p = MalPlan {
            instrs: vec![
                Instr {
                    dests: vec![0],
                    op: MalOp::BindStream { stream: "s".into(), attr: "x".into() },
                },
                Instr {
                    dests: vec![0],
                    op: MalOp::BindStream { stream: "s".into(), attr: "y".into() },
                },
            ],
            result_names: vec![],
            result_vars: vec![],
            nvars: 1,
            streams: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_missing_result() {
        let p = MalPlan {
            instrs: vec![],
            result_names: vec!["x".into()],
            result_vars: vec![0],
            nvars: 1,
            streams: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn malvalue_accessors() {
        let b = MalValue::Bat(Bat::transient(Column::Int(vec![1])));
        assert!(b.as_bat("t").is_ok());
        assert!(b.as_groups("t").is_err());
        assert!(b.as_scalar("t").is_err());
        assert_eq!(MalValue::Absent.as_scalar("t").unwrap(), None);
        let s = MalValue::Scalar(Value::Int(5));
        assert_eq!(s.as_scalar("t").unwrap(), Some(&Value::Int(5)));
    }

    #[test]
    fn op_args_ordering() {
        let op = MalOp::Fetch { cands: 3, values: 7 };
        assert_eq!(op.args(), vec![3, 7]);
        let op = MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: 2 };
        assert_eq!(op.args(), vec![2]);
        let op = MalOp::Concat { parts: vec![5, 6, 7] };
        assert_eq!(op.args(), vec![5, 6, 7]);
    }

    #[test]
    fn group_agg_writes_keys_plus_one_dest_per_aggregate() {
        let mut b = MalBuilder::new();
        let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
        let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
        let (kd, ads) = b.emit_group_agg(
            k,
            vec![(AggKind::Sum, Some(v)), (AggKind::Count, None), (AggKind::Avg, Some(v))],
        );
        assert_eq!(ads.len(), 3);
        let mut results = vec![kd];
        results.extend(&ads);
        let p = b.finish(vec!["k".into(), "s".into(), "n".into(), "a".into()], results);
        p.validate().unwrap();
        let op = &p.instrs[2].op;
        assert_eq!(op.n_dests(), 4);
        // args: keys first, then only the Some value columns in order.
        assert_eq!(op.args(), vec![k, v, v]);
        assert!(p.explain().contains("group.agg[sum(X_1), count(), avg(X_1)](X_0)"));
    }
}
