//! Window specifications for continuous queries.
//!
//! The paper's evaluation covers all three shapes (§3):
//!
//! * **count-based sliding** windows — size and step in tuples; the window
//!   is split into `n = size / step` basic windows;
//! * **time-based sliding** windows — size and step in time units; basic
//!   windows are arrival-time slices and may be unequally filled or empty;
//! * **landmark** windows — a fixed starting point; tuples never expire
//!   (until an explicit landmark reset), results are cumulative.

use crate::PlanError;

/// How a continuous query windows its input stream(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Sliding window of `size` tuples advancing by `step` tuples.
    /// `step == size` is a tumbling window.
    CountSliding {
        /// Window size in tuples (`|W|`).
        size: usize,
        /// Slide step in tuples (`|w|`).
        step: usize,
    },
    /// Sliding window of `size_ms` milliseconds advancing by `step_ms`.
    TimeSliding {
        /// Window length in milliseconds.
        size_ms: u64,
        /// Slide step in milliseconds.
        step_ms: u64,
    },
    /// Landmark window: starts at the landmark (stream start) and grows;
    /// results are produced every `step` tuples.
    CountLandmark {
        /// Result cadence in tuples.
        step: usize,
    },
    /// Landmark window with a time-based result cadence.
    TimeLandmark {
        /// Result cadence in milliseconds.
        step_ms: u64,
    },
}

impl WindowSpec {
    /// Validate the shape: sizes/steps must be positive, the step must
    /// divide a sliding window's size (the paper's `n = |W|/|w|` split
    /// requires it), and the step cannot exceed the size.
    pub fn validate(&self) -> crate::Result<()> {
        match *self {
            WindowSpec::CountSliding { size, step } => {
                if size == 0 || step == 0 {
                    return Err(PlanError::Unsupported("window size/step must be positive".into()));
                }
                if step > size {
                    return Err(PlanError::Unsupported(format!(
                        "window step {step} exceeds size {size} (tuples would be skipped)"
                    )));
                }
                if size % step != 0 {
                    return Err(PlanError::Unsupported(format!(
                        "window size {size} must be a multiple of step {step} \
                         (DataCell splits the window into n = size/step basic windows)"
                    )));
                }
                Ok(())
            }
            WindowSpec::TimeSliding { size_ms, step_ms } => {
                if size_ms == 0 || step_ms == 0 {
                    return Err(PlanError::Unsupported("window size/step must be positive".into()));
                }
                if step_ms > size_ms {
                    return Err(PlanError::Unsupported(format!(
                        "window step {step_ms}ms exceeds size {size_ms}ms"
                    )));
                }
                if size_ms % step_ms != 0 {
                    return Err(PlanError::Unsupported(format!(
                        "window size {size_ms}ms must be a multiple of step {step_ms}ms"
                    )));
                }
                Ok(())
            }
            WindowSpec::CountLandmark { step } => {
                if step == 0 {
                    return Err(PlanError::Unsupported("landmark step must be positive".into()));
                }
                Ok(())
            }
            WindowSpec::TimeLandmark { step_ms } => {
                if step_ms == 0 {
                    return Err(PlanError::Unsupported("landmark step must be positive".into()));
                }
                Ok(())
            }
        }
    }

    /// Number of basic windows `n = |W|/|w|` for sliding windows; `None`
    /// for landmark windows (which keep one cumulative intermediate).
    pub fn basic_windows(&self) -> Option<usize> {
        match *self {
            WindowSpec::CountSliding { size, step } => Some(size / step),
            WindowSpec::TimeSliding { size_ms, step_ms } => Some((size_ms / step_ms) as usize),
            WindowSpec::CountLandmark { .. } | WindowSpec::TimeLandmark { .. } => None,
        }
    }

    /// Is this a landmark window?
    pub fn is_landmark(&self) -> bool {
        matches!(self, WindowSpec::CountLandmark { .. } | WindowSpec::TimeLandmark { .. })
    }

    /// Is this window time-based (vs count-based)?
    pub fn is_time_based(&self) -> bool {
        matches!(self, WindowSpec::TimeSliding { .. } | WindowSpec::TimeLandmark { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sliding_validation() {
        assert!(WindowSpec::CountSliding { size: 100, step: 10 }.validate().is_ok());
        assert!(WindowSpec::CountSliding { size: 100, step: 100 }.validate().is_ok()); // tumbling
        assert!(WindowSpec::CountSliding { size: 100, step: 0 }.validate().is_err());
        assert!(WindowSpec::CountSliding { size: 0, step: 1 }.validate().is_err());
        assert!(WindowSpec::CountSliding { size: 100, step: 30 }.validate().is_err()); // no divide
        assert!(WindowSpec::CountSliding { size: 10, step: 100 }.validate().is_err());
        // step > size
    }

    #[test]
    fn time_sliding_validation() {
        assert!(WindowSpec::TimeSliding { size_ms: 60_000, step_ms: 10_000 }.validate().is_ok());
        assert!(WindowSpec::TimeSliding { size_ms: 60_000, step_ms: 7_000 }.validate().is_err());
        assert!(WindowSpec::TimeSliding { size_ms: 0, step_ms: 1 }.validate().is_err());
    }

    #[test]
    fn landmark_validation() {
        assert!(WindowSpec::CountLandmark { step: 10 }.validate().is_ok());
        assert!(WindowSpec::CountLandmark { step: 0 }.validate().is_err());
        assert!(WindowSpec::TimeLandmark { step_ms: 5 }.validate().is_ok());
        assert!(WindowSpec::TimeLandmark { step_ms: 0 }.validate().is_err());
    }

    #[test]
    fn basic_window_counts() {
        assert_eq!(WindowSpec::CountSliding { size: 100, step: 10 }.basic_windows(), Some(10));
        assert_eq!(WindowSpec::TimeSliding { size_ms: 60, step_ms: 10 }.basic_windows(), Some(6));
        assert_eq!(WindowSpec::CountLandmark { step: 10 }.basic_windows(), None);
    }

    #[test]
    fn kind_predicates() {
        assert!(WindowSpec::CountLandmark { step: 1 }.is_landmark());
        assert!(!WindowSpec::CountSliding { size: 2, step: 1 }.is_landmark());
        assert!(WindowSpec::TimeSliding { size_ms: 2, step_ms: 1 }.is_time_based());
        assert!(!WindowSpec::CountSliding { size: 2, step: 1 }.is_time_based());
    }
}
