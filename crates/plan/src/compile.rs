//! Lowering logical plans to MAL programs.
//!
//! The compiler follows MonetDB's columnar compilation scheme: selections
//! produce candidate lists, every later attribute access goes through a
//! `fetch`, and joins produce aligned oid pairs that act as row mappings
//! back into each side's base columns. The output program is exactly the
//! kind of "normal database query plan" the DataCell rewriter consumes
//! (paper Fig. 3, left-hand sides).

use crate::logical::{AggExpr, ColumnRef, LogicalPlan};
use crate::mal::{MalBuilder, MalOp, MalPlan, VarId};
use crate::PlanError;
use datacell_kernel::algebra::Predicate;
use std::collections::HashMap;

/// Compile a logical plan into a MAL program.
pub fn compile(plan: &LogicalPlan) -> crate::Result<MalPlan> {
    let mut c =
        Compiler { b: MalBuilder::new(), binds: HashMap::new(), fetch_cache: HashMap::new() };
    let scope = c.compile_rel(plan)?;
    let (names, vars) = match scope.output {
        Output::Columns(cols) => {
            let mut names = Vec::new();
            let mut vars = Vec::new();
            for (name, var) in cols {
                names.push(name);
                vars.push(var);
            }
            (names, vars)
        }
    };
    if names.is_empty() {
        return Err(PlanError::Unsupported(
            "plan produces no output columns; add a projection or aggregation".into(),
        ));
    }
    let plan = c.b.finish(names, vars);
    // Compilation is itself a pass boundary: a structurally or shape-wise
    // broken program here is a compiler bug, caught before it can reach
    // the optimizer or the executor.
    if crate::verify::enabled() {
        crate::verify::verify(&plan)?;
    }
    Ok(plan)
}

/// Where values of one base relation live inside a scope.
#[derive(Debug, Clone)]
struct SideBinding {
    /// The base stream/table.
    source: String,
    /// Is it a stream (vs a persistent table)?
    is_stream: bool,
    /// Row mapping: a candidate BAT of global oids into `source`, aligned
    /// with all other sides of the scope. `None` = identity (whole input).
    cands: Option<VarId>,
}

/// The result of compiling a relational subtree.
struct Scope {
    /// One entry per reachable base relation; all `cands` aligned.
    sides: Vec<SideBinding>,
    /// Materialized output (set by projection-like nodes).
    output: Output,
}

enum Output {
    /// Named output columns.
    Columns(Vec<(String, VarId)>),
}

struct Compiler {
    b: MalBuilder,
    /// Cache of raw binds: (source, attr) → var.
    binds: HashMap<(String, String), VarId>,
    /// Cache of fetches: (cands, bind) → var.
    fetch_cache: HashMap<(VarId, VarId), VarId>,
}

impl Compiler {
    fn bind(&mut self, side: &SideBinding, attr: &str) -> VarId {
        let key = (side.source.clone(), attr.to_owned());
        if let Some(v) = self.binds.get(&key) {
            return *v;
        }
        let op = if side.is_stream {
            MalOp::BindStream { stream: side.source.clone(), attr: attr.to_owned() }
        } else {
            MalOp::BindTable { table: side.source.clone(), attr: attr.to_owned() }
        };
        let v = self.b.emit(op);
        self.binds.insert(key, v);
        v
    }

    /// The values of `col` aligned with the scope's current rows.
    fn values(&mut self, scope: &Scope, col: &ColumnRef) -> crate::Result<VarId> {
        let side = scope
            .sides
            .iter()
            .find(|s| s.source == col.source)
            .ok_or_else(|| PlanError::UnknownColumn(col.to_string()))?
            .clone();
        let raw = self.bind(&side, &col.attr);
        match side.cands {
            None => Ok(raw),
            Some(c) => Ok(self.fetch(c, raw)),
        }
    }

    fn fetch(&mut self, cands: VarId, values: VarId) -> VarId {
        if let Some(v) = self.fetch_cache.get(&(cands, values)) {
            return *v;
        }
        let v = self.b.emit(MalOp::Fetch { cands, values });
        self.fetch_cache.insert((cands, values), v);
        v
    }

    fn compile_rel(&mut self, plan: &LogicalPlan) -> crate::Result<Scope> {
        match plan {
            LogicalPlan::ScanStream { stream } => Ok(Scope {
                sides: vec![SideBinding { source: stream.clone(), is_stream: true, cands: None }],
                output: Output::Columns(vec![]),
            }),
            LogicalPlan::ScanTable { table } => Ok(Scope {
                sides: vec![SideBinding { source: table.clone(), is_stream: false, cands: None }],
                output: Output::Columns(vec![]),
            }),
            LogicalPlan::Filter { input, column, pred } => {
                let scope = self.compile_rel(input)?;
                self.compile_filter(scope, column, pred)
            }
            LogicalPlan::Join { left, right, left_on, right_on } => {
                let ls = self.compile_rel(left)?;
                let rs = self.compile_rel(right)?;
                self.compile_join(ls, rs, left_on, right_on)
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let scope = self.compile_rel(input)?;
                self.compile_aggregate(scope, group_by.as_ref(), aggs)
            }
            LogicalPlan::Project { input, columns } => {
                let scope = self.compile_rel(input)?;
                let mut out = Vec::with_capacity(columns.len());
                for (col, alias) in columns {
                    let v = self.values(&scope, col)?;
                    out.push((alias.clone(), v));
                }
                Ok(Scope { sides: scope.sides, output: Output::Columns(out) })
            }
            LogicalPlan::Distinct { input } => {
                let scope = self.compile_rel(input)?;
                let Output::Columns(cols) = &scope.output;
                if cols.len() != 1 {
                    return Err(PlanError::Unsupported(
                        "distinct requires exactly one projected column".into(),
                    ));
                }
                let (name, var) = cols[0].clone();
                let d = self.b.emit(MalOp::Distinct { input: var });
                Ok(Scope { sides: scope.sides, output: Output::Columns(vec![(name, d)]) })
            }
            LogicalPlan::OrderBy { input, column, desc } => {
                let scope = self.compile_rel(input)?;
                let Output::Columns(cols) = &scope.output;
                if cols.is_empty() {
                    return Err(PlanError::Unsupported("order by requires a projection".into()));
                }
                // Sort key: prefer an already-projected column with this
                // attribute name; otherwise fetch it through the scope.
                let cols = cols.clone();
                let key_var = match cols.iter().find(|(n, _)| *n == column.attr) {
                    Some((_, v)) => *v,
                    None => self.values(&scope, column)?,
                };
                let perm = self.b.emit(MalOp::SortPerm { input: key_var, desc: *desc });
                let mut out = Vec::with_capacity(cols.len());
                for (name, var) in cols {
                    out.push((name, self.fetch(perm, var)));
                }
                Ok(Scope { sides: scope.sides, output: Output::Columns(out) })
            }
            LogicalPlan::Limit { input, n } => {
                let scope = self.compile_rel(input)?;
                let Output::Columns(cols) = &scope.output;
                let cols = cols.clone();
                if cols.is_empty() {
                    return Err(PlanError::Unsupported("limit requires a projection".into()));
                }
                let mut out = Vec::with_capacity(cols.len());
                for (name, var) in cols {
                    out.push((name, self.b.emit(MalOp::Slice { input: var, n: *n })));
                }
                Ok(Scope { sides: scope.sides, output: Output::Columns(out) })
            }
        }
    }

    fn compile_filter(
        &mut self,
        scope: Scope,
        column: &ColumnRef,
        pred: &Predicate,
    ) -> crate::Result<Scope> {
        let vals = self.values(&scope, column)?;
        let sel = self.b.emit(MalOp::Select { input: vals, pred: pred.clone() });
        // `sel` is positional when `vals` was fetched (hseq 0) and global
        // when `vals` was a raw bind. Re-map every side's candidates.
        let mut sides = Vec::with_capacity(scope.sides.len());
        for side in &scope.sides {
            let new_cands = match side.cands {
                // Raw bind: `sel` holds global oids into this side already —
                // but only the side the predicate touched. For other
                // unfiltered sides this cannot happen (a multi-side scope
                // always has materialized cands).
                None => sel,
                Some(c) => self.fetch(sel, c),
            };
            sides.push(SideBinding { cands: Some(new_cands), ..side.clone() });
        }
        Ok(Scope { sides, output: scope.output })
    }

    fn compile_join(
        &mut self,
        ls: Scope,
        rs: Scope,
        left_on: &ColumnRef,
        right_on: &ColumnRef,
    ) -> crate::Result<Scope> {
        let lv = self.values(&ls, left_on)?;
        let rv = self.values(&rs, right_on)?;
        let (jl, jr) = self.b.emit_join(lv, rv);
        // Join oids are positional into lv/rv when those were fetched;
        // remap to global candidate lists per side.
        let mut sides = Vec::new();
        for side in &ls.sides {
            let cands = match side.cands {
                None => jl,
                Some(c) => self.fetch(jl, c),
            };
            sides.push(SideBinding { cands: Some(cands), ..side.clone() });
        }
        for side in &rs.sides {
            let cands = match side.cands {
                None => jr,
                Some(c) => self.fetch(jr, c),
            };
            sides.push(SideBinding { cands: Some(cands), ..side.clone() });
        }
        Ok(Scope { sides, output: Output::Columns(vec![]) })
    }

    fn compile_aggregate(
        &mut self,
        scope: Scope,
        group_by: Option<&ColumnRef>,
        aggs: &[AggExpr],
    ) -> crate::Result<Scope> {
        let mut out = Vec::new();
        match group_by {
            None => {
                for agg in aggs {
                    let vals = match &agg.input {
                        Some(col) => self.values(&scope, col)?,
                        None => {
                            // count(*): count any side's candidate list; with
                            // no candidates, count the first bound column.
                            match scope.sides.first().and_then(|s| s.cands) {
                                Some(c) => c,
                                None => {
                                    let side = scope.sides.first().ok_or_else(|| {
                                        PlanError::Unsupported("count(*) without input".into())
                                    })?;
                                    return Err(PlanError::Unsupported(format!(
                                        "count(*) over unfiltered scan of {} — name a column instead",
                                        side.source
                                    )));
                                }
                            }
                        }
                    };
                    let v = self.b.emit(MalOp::ScalarAgg { kind: agg.kind, vals });
                    out.push((agg.alias.clone(), v));
                }
            }
            Some(gcol) => {
                // One fused group-and-aggregate node: a single grouping
                // pass feeds every aggregate (and the parallel kernel's
                // partial/merge path at partitions > 1).
                let keys = self.values(&scope, gcol)?;
                let mut agg_specs = Vec::with_capacity(aggs.len());
                for agg in aggs {
                    let vals = match &agg.input {
                        Some(col) => Some(self.values(&scope, col)?),
                        None => None,
                    };
                    agg_specs.push((agg.kind, vals));
                }
                let (k, avars) = self.b.emit_group_agg(keys, agg_specs);
                out.push((gcol.attr.clone(), k));
                for (agg, v) in aggs.iter().zip(avars) {
                    out.push((agg.alias.clone(), v));
                }
            }
        }
        Ok(Scope { sides: scope.sides, output: Output::Columns(out) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, WindowCtx};
    use datacell_basket::BasicWindow;
    use datacell_kernel::algebra::AggKind;
    use datacell_kernel::{Column, Value};

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    fn window(xs: Vec<i64>, ys: Vec<i64>) -> BasicWindow {
        let n = xs.len();
        BasicWindow::new(
            0,
            vec![Column::Int(xs), Column::Int(ys)],
            vec![0; n],
            vec!["x1".into(), "x2".into()],
        )
    }

    #[test]
    fn q1_compiles_and_runs() {
        // Q1: SELECT x1, sum(x2) FROM s WHERE x1 > 10 GROUP BY x1
        let p = LogicalPlan::stream("s").filter(col("s", "x1"), Predicate::gt(10)).aggregate(
            Some(col("s", "x1")),
            vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "sum_x2")],
        );
        let mal = compile(&p).unwrap();
        mal.validate().unwrap();
        assert_eq!(mal.result_names, vec!["x1".to_owned(), "sum_x2".to_owned()]);

        let w = window(vec![20, 5, 20, 30], vec![1, 2, 3, 4]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&mal, &ctx).unwrap();
        assert_eq!(
            rs.sorted_rows(),
            vec![vec![Value::Int(20), Value::Int(4)], vec![Value::Int(30), Value::Int(4)]]
        );
    }

    #[test]
    fn q2_join_compiles_and_runs() {
        // Q2: SELECT max(s1.x1), avg(s2.x1) FROM s1, s2 WHERE s1.x2 = s2.x2
        let p = LogicalPlan::stream("s1").join(
            LogicalPlan::stream("s2"),
            col("s1", "x2"),
            col("s2", "x2"),
        );
        let p = p.aggregate(
            None,
            vec![
                AggExpr::new(AggKind::Max, col("s1", "x1"), "max1"),
                AggExpr::new(AggKind::Avg, col("s2", "x1"), "avg2"),
            ],
        );
        let mal = compile(&p).unwrap();
        let w1 = window(vec![100, 200, 300], vec![1, 2, 9]);
        let w2 = window(vec![10, 20, 30], vec![2, 1, 7]);
        let ctx = WindowCtx::new().with_stream("s1", &w1).with_stream("s2", &w2);
        let rs = execute(&mal, &ctx).unwrap();
        // Matches: s1 rows (x2=1,2) with s2 rows (x2=1,2): max(s1.x1 of
        // matches {100,200}) = 200; avg(s2.x1 of matches {20,10}) = 15.
        assert_eq!(rs.rows(), vec![vec![Value::Int(200), Value::Float(15.0)]]);
    }

    #[test]
    fn projection_of_filtered_stream() {
        // Fig 3a: SELECT a FROM s WHERE a < v1
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x1"), Predicate::lt(10))
            .project(vec![(col("s", "x1"), "a".into())]);
        let mal = compile(&p).unwrap();
        let w = window(vec![5, 20, 7], vec![0, 0, 0]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&mal, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(5)], vec![Value::Int(7)]]);
    }

    #[test]
    fn two_filters_chain_candidates() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x1"), Predicate::gt(1))
            .filter(col("s", "x2"), Predicate::lt(30))
            .project(vec![(col("s", "x1"), "a".into()), (col("s", "x2"), "b".into())]);
        let mal = compile(&p).unwrap();
        let w = window(vec![1, 2, 3, 4], vec![10, 20, 30, 40]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&mal, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(2), Value::Int(20)]]);
    }

    #[test]
    fn filtered_join_both_sides() {
        let p = LogicalPlan::stream("s1")
            .filter(col("s1", "x1"), Predicate::gt(0))
            .join(
                LogicalPlan::stream("s2").filter(col("s2", "x1"), Predicate::gt(0)),
                col("s1", "x2"),
                col("s2", "x2"),
            )
            .aggregate(None, vec![AggExpr::new(AggKind::Count, col("s1", "x1"), "n")]);
        let mal = compile(&p).unwrap();
        let w1 = window(vec![1, -1, 2], vec![7, 7, 8]);
        let w2 = window(vec![5, 6], vec![8, 7]);
        let ctx = WindowCtx::new().with_stream("s1", &w1).with_stream("s2", &w2);
        let rs = execute(&mal, &ctx).unwrap();
        // s1 keeps rows (x1>0): x2 in {7, 8}; s2 keeps both: x2 in {8, 7}.
        // matches: 7-7 and 8-8 -> 2 pairs.
        assert_eq!(rs.rows(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn distinct_and_order_and_limit() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "x1"), "a".into())])
            .distinct()
            .order_by(col("s", "a"), false)
            .limit(2);
        let mal = compile(&p).unwrap();
        let w = window(vec![3, 1, 3, 2], vec![0, 0, 0, 0]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&mal, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn distinct_requires_single_column() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "x1"), "a".into()), (col("s", "x2"), "b".into())])
            .distinct();
        assert!(matches!(compile(&p), Err(PlanError::Unsupported(_))));
    }

    #[test]
    fn unknown_column_rejected() {
        let p = LogicalPlan::stream("s").filter(col("zzz", "x"), Predicate::gt(0));
        let p = p.project(vec![(col("s", "x1"), "a".into())]);
        assert!(matches!(compile(&p), Err(PlanError::UnknownColumn(_))));
    }

    #[test]
    fn bare_scan_has_no_output() {
        let p = LogicalPlan::stream("s");
        assert!(matches!(compile(&p), Err(PlanError::Unsupported(_))));
    }

    #[test]
    fn fetch_cache_avoids_duplicate_instructions() {
        // x1 used twice under same candidates: only one fetch emitted.
        let p = LogicalPlan::stream("s").filter(col("s", "x1"), Predicate::gt(0)).aggregate(
            None,
            vec![
                AggExpr::new(AggKind::Min, col("s", "x1"), "lo"),
                AggExpr::new(AggKind::Max, col("s", "x1"), "hi"),
            ],
        );
        let mal = compile(&p).unwrap();
        let fetches = mal.instrs.iter().filter(|i| matches!(i.op, MalOp::Fetch { .. })).count();
        assert_eq!(fetches, 1);
    }

    #[test]
    fn stream_table_join() {
        let p = LogicalPlan::stream("s")
            .join(LogicalPlan::table("dim"), col("s", "x1"), col("dim", "k"))
            .aggregate(None, vec![AggExpr::new(AggKind::Count, col("dim", "k"), "n")]);
        let mal = compile(&p).unwrap();
        assert_eq!(mal.streams, vec!["s".to_owned()]);
        assert!(mal.instrs.iter().any(|i| matches!(i.op, MalOp::BindTable { .. })));
    }
}
