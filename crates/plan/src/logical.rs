//! Logical (relational) plans.
//!
//! The tree the SQL front-end produces and the optimizer massages. A
//! logical plan references stream/table attributes via [`ColumnRef`]s that
//! carry their source qualifier, so multi-stream queries are unambiguous.

use datacell_kernel::algebra::{AggKind, Predicate};
use std::fmt;

/// A qualified column reference, e.g. `s1.x2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// The stream or table the attribute belongs to.
    pub source: String,
    /// Attribute name.
    pub attr: String,
}

impl ColumnRef {
    /// Build a reference.
    pub fn new(source: impl Into<String>, attr: impl Into<String>) -> ColumnRef {
        ColumnRef { source: source.into(), attr: attr.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.source, self.attr)
    }
}

/// One aggregate expression in a query's select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub kind: AggKind,
    /// The aggregated column. `None` only for `count(*)`.
    pub input: Option<ColumnRef>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// `kind(col) AS alias`.
    pub fn new(kind: AggKind, input: ColumnRef, alias: impl Into<String>) -> AggExpr {
        AggExpr { kind, input: Some(input), alias: alias.into() }
    }

    /// `count(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> AggExpr {
        AggExpr { kind: AggKind::Count, input: None, alias: alias.into() }
    }
}

/// A relational plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a registered stream; in a continuous query this is the window
    /// content at each firing.
    ScanStream {
        /// Stream name.
        stream: String,
    },
    /// Scan a persistent catalog table.
    ScanTable {
        /// Table name.
        table: String,
    },
    /// Filter tuples of `input` by a predicate over one column.
    Filter {
        /// Child plan.
        input: Box<LogicalPlan>,
        /// The filtered column.
        column: ColumnRef,
        /// The predicate.
        pred: Predicate,
    },
    /// Equi-join two inputs.
    Join {
        /// Left child.
        left: Box<LogicalPlan>,
        /// Right child.
        right: Box<LogicalPlan>,
        /// Join key on the left.
        left_on: ColumnRef,
        /// Join key on the right.
        right_on: ColumnRef,
    },
    /// Grouped or scalar aggregation.
    Aggregate {
        /// Child plan.
        input: Box<LogicalPlan>,
        /// Group-by column; `None` for scalar aggregation over the window.
        group_by: Option<ColumnRef>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Project columns (the non-aggregate select list).
    Project {
        /// Child plan.
        input: Box<LogicalPlan>,
        /// Columns to emit, with output names.
        columns: Vec<(ColumnRef, String)>,
    },
    /// Remove duplicate rows (single-column form).
    Distinct {
        /// Child plan (must project exactly one column).
        input: Box<LogicalPlan>,
    },
    /// Order the output by one column.
    OrderBy {
        /// Child plan.
        input: Box<LogicalPlan>,
        /// Sort column.
        column: ColumnRef,
        /// Descending?
        desc: bool,
    },
    /// Keep only the first `n` rows.
    Limit {
        /// Child plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl LogicalPlan {
    /// All streams scanned by this plan, in left-to-right scan order.
    pub fn streams(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_streams(&mut out);
        out
    }

    fn collect_streams(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::ScanStream { stream } => {
                if !out.contains(stream) {
                    out.push(stream.clone());
                }
            }
            LogicalPlan::ScanTable { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_streams(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_streams(out);
                right.collect_streams(out);
            }
        }
    }

    /// Pretty, indented rendering (used by `EXPLAIN` output and tests).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.fmt_tree(&mut s, 0);
        s
    }

    fn fmt_tree(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::ScanStream { stream } => {
                out.push_str(&format!("{pad}scan stream {stream}\n"));
            }
            LogicalPlan::ScanTable { table } => {
                out.push_str(&format!("{pad}scan table {table}\n"));
            }
            LogicalPlan::Filter { input, column, pred } => {
                out.push_str(&format!("{pad}filter {column} {pred:?}\n"));
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Join { left, right, left_on, right_on } => {
                out.push_str(&format!("{pad}join {left_on} = {right_on}\n"));
                left.fmt_tree(out, depth + 1);
                right.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let aggs_s: Vec<String> = aggs
                    .iter()
                    .map(|a| match &a.input {
                        Some(c) => format!("{}({}) as {}", a.kind.sql(), c, a.alias),
                        None => format!("count(*) as {}", a.alias),
                    })
                    .collect();
                match group_by {
                    Some(g) => out.push_str(&format!(
                        "{pad}aggregate [{}] group by {g}\n",
                        aggs_s.join(", ")
                    )),
                    None => out.push_str(&format!("{pad}aggregate [{}]\n", aggs_s.join(", "))),
                }
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Project { input, columns } => {
                let cols: Vec<String> =
                    columns.iter().map(|(c, a)| format!("{c} as {a}")).collect();
                out.push_str(&format!("{pad}project [{}]\n", cols.join(", ")));
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}distinct\n"));
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::OrderBy { input, column, desc } => {
                out.push_str(&format!(
                    "{pad}order by {column}{}\n",
                    if *desc { " desc" } else { "" }
                ));
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}limit {n}\n"));
                input.fmt_tree(out, depth + 1);
            }
        }
    }
}

/// Builder helpers so examples/tests can assemble plans tersely.
impl LogicalPlan {
    /// `scan stream`.
    pub fn stream(name: impl Into<String>) -> LogicalPlan {
        LogicalPlan::ScanStream { stream: name.into() }
    }

    /// `scan table`.
    pub fn table(name: impl Into<String>) -> LogicalPlan {
        LogicalPlan::ScanTable { table: name.into() }
    }

    /// Add a filter on top.
    pub fn filter(self, column: ColumnRef, pred: Predicate) -> LogicalPlan {
        LogicalPlan::Filter { input: Box::new(self), column, pred }
    }

    /// Join with another plan.
    pub fn join(self, right: LogicalPlan, left_on: ColumnRef, right_on: ColumnRef) -> LogicalPlan {
        LogicalPlan::Join { left: Box::new(self), right: Box::new(right), left_on, right_on }
    }

    /// Aggregate on top.
    pub fn aggregate(self, group_by: Option<ColumnRef>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate { input: Box::new(self), group_by, aggs }
    }

    /// Project on top.
    pub fn project(self, columns: Vec<(ColumnRef, String)>) -> LogicalPlan {
        LogicalPlan::Project { input: Box::new(self), columns }
    }

    /// Distinct on top.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct { input: Box::new(self) }
    }

    /// Order-by on top.
    pub fn order_by(self, column: ColumnRef, desc: bool) -> LogicalPlan {
        LogicalPlan::OrderBy { input: Box::new(self), column, desc }
    }

    /// Limit on top.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit { input: Box::new(self), n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(col("s1", "x2").to_string(), "s1.x2");
    }

    #[test]
    fn streams_deduplicated_in_order() {
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .join(LogicalPlan::stream("a"), col("a", "k"), col("a", "k"));
        assert_eq!(p.streams(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn tables_are_not_streams() {
        let p =
            LogicalPlan::stream("s").join(LogicalPlan::table("t"), col("s", "k"), col("t", "k"));
        assert_eq!(p.streams(), vec!["s".to_owned()]);
    }

    #[test]
    fn explain_renders_tree() {
        let p = LogicalPlan::stream("s").filter(col("s", "x1"), Predicate::gt(10)).aggregate(
            Some(col("s", "x1")),
            vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "s2")],
        );
        let e = p.explain();
        assert!(e.contains("aggregate [sum(s.x2) as s2] group by s.x1"));
        assert!(e.contains("filter s.x1"));
        assert!(e.contains("scan stream s"));
        // Indentation increases with depth.
        assert!(e.lines().nth(1).unwrap().starts_with("  "));
    }

    #[test]
    fn count_star_has_no_input() {
        let a = AggExpr::count_star("n");
        assert_eq!(a.kind, AggKind::Count);
        assert!(a.input.is_none());
    }

    #[test]
    fn builders_compose() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "a"), "a".into())])
            .distinct()
            .order_by(col("s", "a"), true)
            .limit(5);
        assert!(matches!(p, LogicalPlan::Limit { n: 5, .. }));
        assert!(p.explain().contains("order by s.a desc"));
    }
}
