//! Plan-layer errors.

use datacell_basket::BasketError;
use datacell_kernel::KernelError;
use std::fmt;

/// Errors raised while building, compiling or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A column reference could not be resolved against the plan's inputs.
    UnknownColumn(String),
    /// A stream or table referenced by the plan is missing from the context.
    UnknownSource(String),
    /// The plan shape is not supported by the compiler.
    Unsupported(String),
    /// The executor found an uninitialized variable — a compiler bug.
    Internal(String),
    /// Error surfaced from the kernel.
    Kernel(KernelError),
    /// Error surfaced from the basket layer.
    Basket(BasketError),
    /// A static-analysis diagnostic from [`crate::verify`]: the plan
    /// violated a structural, typing, or incremental-safety rule.
    Verify(Box<crate::verify::VerifyError>),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            PlanError::UnknownSource(s) => write!(f, "unknown stream/table: {s}"),
            PlanError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
            PlanError::Internal(m) => write!(f, "internal plan error: {m}"),
            PlanError::Kernel(e) => write!(f, "kernel: {e}"),
            PlanError::Basket(e) => write!(f, "basket: {e}"),
            PlanError::Verify(e) => write!(f, "plan verification failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<KernelError> for PlanError {
    fn from(e: KernelError) -> Self {
        PlanError::Kernel(e)
    }
}

impl From<BasketError> for PlanError {
    fn from(e: BasketError) -> Self {
        PlanError::Basket(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(PlanError::UnknownColumn("x".into()).to_string(), "unknown column: x");
        assert_eq!(PlanError::UnknownSource("s".into()).to_string(), "unknown stream/table: s");
        assert!(PlanError::Unsupported("m".into()).to_string().contains("unsupported"));
    }

    #[test]
    fn conversions() {
        let k: PlanError = KernelError::NotFound("t".into()).into();
        assert!(matches!(k, PlanError::Kernel(_)));
        let b: PlanError = BasketError::UnknownColumn("c".into()).into();
        assert!(matches!(b, PlanError::Basket(_)));
    }
}
