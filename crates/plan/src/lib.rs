//! # datacell-plan
//!
//! Query plans for DataCell, in two layers mirroring MonetDB's stack:
//!
//! * [`LogicalPlan`] — the relational tree the SQL front-end produces
//!   (scans over streams/tables, filters, joins, grouping, aggregation,
//!   projection, ordering);
//! * [`MalPlan`] — a flat, MAL-like physical program of columnar kernel
//!   calls with **explicit intermediates**: every instruction materializes
//!   its result into a named variable. The DataCell rewriter (in
//!   `datacell-core`) operates on this representation, because explicit
//!   intermediates are what make it possible to "freeze" a plan at any
//!   operator boundary and resume it with new data (paper §3).
//!
//! [`compile`](mod@compile) lowers logical plans to MAL programs; [`exec`] interprets a
//! MAL program against one set of stream windows + the catalog — this is
//! both the one-time-query path and the DataCellR re-evaluation baseline.

pub mod compile;
pub mod error;
pub mod exec;
pub mod logical;
pub mod mal;
pub mod optimize;
pub mod result;
pub mod verify;
pub mod window;

pub use compile::compile;
pub use error::PlanError;
pub use exec::{execute, ExecCtx};
pub use logical::{AggExpr, ColumnRef, LogicalPlan};
pub use mal::{Instr, MalOp, MalPlan, MalValue, VarId};
pub use optimize::{fuse_group_agg, fuse_group_agg_diag, optimize};
pub use result::ResultSet;
pub use verify::{
    checked_pass, lint_incremental, partition_safety, verify_all, NoSchema, ParSafety, Rule,
    SchemaOverlay, SchemaSource, VerifyError,
};
pub use window::WindowSpec;

/// Result alias for plan operations.
pub type Result<T> = std::result::Result<T, PlanError>;
