//! The MAL interpreter: one-shot plan execution.
//!
//! [`execute`] runs a [`MalPlan`] against a set of stream windows and the
//! catalog. This is exactly how DataCellR (the re-evaluation baseline)
//! evaluates a continuous query: "every time a window is complete ... we
//! compute the result over all tuples in the window" (paper §3).
//!
//! [`eval_op`] — the single-instruction evaluator — is shared with the
//! incremental runtime in `datacell-core`, which feeds it *basic windows*
//! instead of whole windows and caches the per-instruction intermediates.

use crate::mal::{MalOp, MalPlan, MalValue};
use crate::result::ResultSet;
use crate::PlanError;
use datacell_basket::BasicWindow;
use datacell_kernel::algebra::{self, AggKind, ArithOp};
use datacell_kernel::par::{self, ParConfig};
#[cfg(test)]
use datacell_kernel::Value;
use datacell_kernel::{Bat, Catalog, Column, Table};
use std::collections::HashMap;

/// Execution context: where `basket.bind` and `sql.bind` find their data.
pub trait ExecCtx {
    /// The window content of a stream (whole window for one-shot execution,
    /// a basic window in incremental mode).
    fn stream_window(&self, stream: &str) -> Option<&BasicWindow>;
    /// A persistent table.
    fn table(&self, name: &str) -> Option<&Table>;
    /// Intra-operator parallelism: join/select/fetch/sort and fused
    /// grouped-aggregation nodes switch to the `kernel::par` entry points
    /// when this reports partitions > 1; the config also carries the
    /// placement mode and the aligned-input mark the scatter-elision fast
    /// paths key off. Sequential by default.
    fn par_config(&self) -> ParConfig {
        ParConfig::sequential()
    }
}

/// A simple context over borrowed windows and an optional catalog.
#[derive(Default)]
pub struct WindowCtx<'a> {
    windows: HashMap<String, &'a BasicWindow>,
    catalog: Option<&'a Catalog>,
    par: ParConfig,
}

impl<'a> WindowCtx<'a> {
    /// Empty context.
    pub fn new() -> WindowCtx<'a> {
        WindowCtx::default()
    }

    /// Bind a stream name to a window.
    pub fn with_stream(mut self, name: impl Into<String>, w: &'a BasicWindow) -> WindowCtx<'a> {
        self.windows.insert(name.into(), w);
        self
    }

    /// Attach a catalog.
    pub fn with_catalog(mut self, cat: &'a Catalog) -> WindowCtx<'a> {
        self.catalog = Some(cat);
        self
    }

    /// Enable intra-operator parallelism with this partition fan-out.
    pub fn with_partitions(mut self, partitions: usize) -> WindowCtx<'a> {
        self.par = ParConfig::new(partitions);
        self
    }

    /// Use a full parallel-runtime config (partitions, placement mode,
    /// aligned-input mark) instead of the bare fan-out.
    pub fn with_par_config(mut self, par: ParConfig) -> WindowCtx<'a> {
        self.par = par;
        self
    }
}

impl<'a> ExecCtx for WindowCtx<'a> {
    fn stream_window(&self, stream: &str) -> Option<&BasicWindow> {
        self.windows.get(stream).copied()
    }

    fn table(&self, name: &str) -> Option<&Table> {
        self.catalog.and_then(|c| c.table(name).ok())
    }

    fn par_config(&self) -> ParConfig {
        self.par
    }
}

/// Evaluate one MAL operator given its argument values (in [`MalOp::args`]
/// order). Returns one value per destination.
pub fn eval_op(op: &MalOp, args: &[&MalValue], ctx: &dyn ExecCtx) -> crate::Result<Vec<MalValue>> {
    let out = match op {
        MalOp::BindStream { stream, attr } => {
            let w = ctx
                .stream_window(stream)
                .ok_or_else(|| PlanError::UnknownSource(stream.clone()))?;
            vec![MalValue::Bat(w.bat_by_name(attr)?)]
        }
        MalOp::BindTable { table, attr } => {
            let t = ctx.table(table).ok_or_else(|| PlanError::UnknownSource(table.clone()))?;
            vec![MalValue::Bat(t.bat(attr)?)]
        }
        MalOp::Select { pred, .. } => {
            let b = args[0].as_bat("select input")?;
            vec![MalValue::Bat(par::select(b, pred, &ctx.par_config())?)]
        }
        MalOp::Fetch { .. } => {
            let cands = args[0].as_bat("fetch cands")?;
            let values = args[1].as_bat("fetch values")?;
            vec![MalValue::Bat(par::fetch(cands, values, &ctx.par_config())?)]
        }
        MalOp::Join { .. } => {
            let l = args[0].as_bat("join left")?;
            let r = args[1].as_bat("join right")?;
            let (lo, ro) = par::hashjoin(l, r, &ctx.par_config())?;
            vec![MalValue::Bat(lo), MalValue::Bat(ro)]
        }
        MalOp::Group { .. } => {
            let keys = args[0].as_bat("group keys")?;
            vec![MalValue::Groups(algebra::group(keys)?)]
        }
        MalOp::GroupKeys { .. } => {
            let groups = args[0].as_groups("groupkeys")?;
            let keys = args[1].as_bat("groupkeys source")?;
            vec![MalValue::Bat(Bat::transient(groups.keys(keys)?))]
        }
        MalOp::GroupedAgg { kind, vals, groups: _ } => {
            // args order: [vals?, groups]
            let (vals_bat, groups) = match vals {
                Some(_) => {
                    (Some(args[0].as_bat("grouped agg vals")?), args[1].as_groups("grouped agg")?)
                }
                None => (None, args[0].as_groups("grouped agg")?),
            };
            let col = match kind {
                AggKind::Count => algebra::count_grouped(groups),
                AggKind::Sum => algebra::sum_grouped(req(vals_bat, "sum")?, groups)?,
                AggKind::Min => algebra::min_grouped(req(vals_bat, "min")?, groups)?,
                AggKind::Max => algebra::max_grouped(req(vals_bat, "max")?, groups)?,
                AggKind::Avg => {
                    let v = req(vals_bat, "avg")?;
                    let sums = algebra::sum_grouped(v, groups)?;
                    let counts = algebra::count_grouped(groups);
                    let sums_b = Bat::transient(sums);
                    let counts_b = Bat::transient(counts);
                    algebra::map_arith(&sums_b, &counts_b, ArithOp::Div)?.tail
                }
            };
            vec![MalValue::Bat(Bat::transient(col))]
        }
        MalOp::GroupAgg { aggs, .. } => {
            // args order: [keys, then one entry per Some(vals) in agg order]
            let keys = args[0].as_bat("group agg keys")?;
            let mut rest = args[1..].iter();
            let mut val_bats: Vec<Option<&Bat>> = Vec::with_capacity(aggs.len());
            for (_, vals) in aggs {
                val_bats.push(match vals {
                    Some(_) => {
                        Some(rest.next().expect("args match specs").as_bat("group agg vals")?)
                    }
                    None => None,
                });
            }
            let specs: Vec<par::AggSpec> =
                aggs.iter().zip(&val_bats).map(|(&(kind, _), &v)| (kind, v)).collect();
            let (out_keys, cols) = par::grouped_agg_multi(keys, &specs, &ctx.par_config())?;
            let mut out = Vec::with_capacity(1 + cols.len());
            out.push(MalValue::Bat(Bat::transient(out_keys)));
            out.extend(cols.into_iter().map(|c| MalValue::Bat(Bat::transient(c))));
            out
        }
        MalOp::ScalarAgg { kind, .. } => {
            let b = args[0].as_bat("scalar agg")?;
            vec![scalar_agg(*kind, b)?]
        }
        MalOp::Concat { parts } => {
            if parts.is_empty() {
                return Err(PlanError::Internal("concat of zero parts".into()));
            }
            let bats: Vec<&Bat> =
                args.iter().map(|v| v.as_bat("concat part")).collect::<crate::Result<_>>()?;
            vec![MalValue::Bat(algebra::concat(&bats)?)]
        }
        MalOp::MapArith { op, .. } => {
            let l = args[0].as_bat("map left")?;
            let r = args[1].as_bat("map right")?;
            vec![MalValue::Bat(algebra::map_arith(l, r, *op)?)]
        }
        MalOp::MapScalar { op, value, .. } => {
            let b = args[0].as_bat("map input")?;
            vec![MalValue::Bat(algebra::map_arith_scalar(b, *op, value)?)]
        }
        MalOp::DivScalar { .. } => {
            let num = args[0].as_scalar("div num")?;
            let den = args[1].as_scalar("div den")?;
            match (num, den) {
                (Some(n), Some(d)) => match algebra::div_values(n, d)? {
                    Some(v) => vec![MalValue::Scalar(v)],
                    None => vec![MalValue::Absent],
                },
                _ => vec![MalValue::Absent],
            }
        }
        MalOp::Sort { desc, .. } => {
            let b = args[0].as_bat("sort")?;
            vec![MalValue::Bat(par::sort(b, *desc, &ctx.par_config())?)]
        }
        MalOp::SortPerm { desc, .. } => {
            let b = args[0].as_bat("sortperm")?;
            let perm = par::sort_perm(b, *desc, &ctx.par_config())?;
            // Emit head oids (not positions) so a later Fetch against the
            // same input resolves regardless of the input's hseq.
            let col = Column::Oid(perm.into_iter().map(|p| b.hseq + p as u64).collect());
            vec![MalValue::Bat(Bat::transient(col))]
        }
        MalOp::Distinct { .. } => {
            let b = args[0].as_bat("distinct")?;
            vec![MalValue::Bat(algebra::distinct(b)?)]
        }
        MalOp::Slice { n, .. } => {
            let b = args[0].as_bat("slice")?;
            let take = (*n).min(b.len());
            vec![MalValue::Bat(Bat::transient(b.tail.slice_owned(0, take)))]
        }
    };
    Ok(out)
}

fn req<'a>(b: Option<&'a Bat>, kind: &str) -> crate::Result<&'a Bat> {
    b.ok_or_else(|| PlanError::Internal(format!("grouped {kind} requires a value column")))
}

/// Scalar aggregation with SQL empty-set semantics: `count` of nothing is
/// 0; `sum`/`min`/`max`/`avg` of nothing are absent.
pub fn scalar_agg(kind: AggKind, b: &Bat) -> crate::Result<MalValue> {
    Ok(match kind {
        AggKind::Count => MalValue::Scalar(algebra::count(b)),
        AggKind::Sum => {
            if b.is_empty() {
                MalValue::Absent
            } else {
                MalValue::Scalar(algebra::sum(b)?)
            }
        }
        AggKind::Min => algebra::min(b)?.map_or(MalValue::Absent, MalValue::Scalar),
        AggKind::Max => algebra::max(b)?.map_or(MalValue::Absent, MalValue::Scalar),
        AggKind::Avg => algebra::avg(b)?.map_or(MalValue::Absent, MalValue::Scalar),
    })
}

/// Execute a whole MAL program against a context.
pub fn execute(plan: &MalPlan, ctx: &dyn ExecCtx) -> crate::Result<ResultSet> {
    // Last line of defense: under `debug_assertions` or `DATACELL_VERIFY`,
    // refuse to interpret a plan the static analyzer rejects — a verifier
    // diagnostic with an op index beats an executor panic mid-program.
    if crate::verify::enabled() {
        crate::verify::verify(plan)?;
    }
    let mut env: Vec<Option<MalValue>> = vec![None; plan.nvars];
    for ins in &plan.instrs {
        let arg_ids = ins.op.args();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in &arg_ids {
            args.push(
                env[*a]
                    .as_ref()
                    .ok_or_else(|| PlanError::Internal(format!("X_{a} read before write")))?,
            );
        }
        let outs = eval_op(&ins.op, &args, ctx)?;
        debug_assert_eq!(outs.len(), ins.dests.len());
        for (d, v) in ins.dests.iter().zip(outs) {
            env[*d] = Some(v);
        }
    }
    let mut vals = Vec::with_capacity(plan.result_vars.len());
    for v in &plan.result_vars {
        vals.push(
            env[*v]
                .take()
                .ok_or_else(|| PlanError::Internal(format!("result X_{v} never written")))?,
        );
    }
    ResultSet::from_mal(plan.result_names.clone(), vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mal::MalBuilder;
    use datacell_kernel::algebra::Predicate;
    use datacell_kernel::DataType;

    fn window(xs: Vec<i64>, ys: Vec<i64>) -> BasicWindow {
        let n = xs.len();
        BasicWindow::new(
            0,
            vec![Column::Int(xs), Column::Int(ys)],
            vec![0; n],
            vec!["x1".into(), "x2".into()],
        )
    }

    #[test]
    fn execute_select_sum() {
        // SELECT sum(x2) FROM s WHERE x1 > 10
        let mut b = MalBuilder::new();
        let x1 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let x2 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x2".into() });
        let c = b.emit(MalOp::Select { input: x1, pred: Predicate::gt(10) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x2 });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
        let plan = b.finish(vec!["sum_x2".into()], vec![s]);
        plan.validate().unwrap();

        let w = window(vec![5, 20, 30, 7], vec![1, 2, 3, 4]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(5)]]);
    }

    #[test]
    fn execute_grouped_aggregate() {
        // SELECT x1, sum(x2) FROM s GROUP BY x1
        let mut b = MalBuilder::new();
        let x1 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let x2 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x2".into() });
        let g = b.emit(MalOp::Group { keys: x1 });
        let k = b.emit(MalOp::GroupKeys { groups: g, keys: x1 });
        let s = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: Some(x2), groups: g });
        let plan = b.finish(vec!["x1".into(), "sum_x2".into()], vec![k, s]);

        let w = window(vec![1, 2, 1], vec![10, 20, 30]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(
            rs.sorted_rows(),
            vec![vec![Value::Int(1), Value::Int(40)], vec![Value::Int(2), Value::Int(20)]]
        );
    }

    #[test]
    fn execute_join() {
        let mut b = MalBuilder::new();
        let a = b.emit(MalOp::BindStream { stream: "s1".into(), attr: "x1".into() });
        let c = b.emit(MalOp::BindStream { stream: "s2".into(), attr: "x1".into() });
        let (jl, _jr) = b.emit_join(a, c);
        let v = b.emit(MalOp::Fetch { cands: jl, values: a });
        let m = b.emit(MalOp::ScalarAgg { kind: AggKind::Max, vals: v });
        let plan = b.finish(vec!["max".into()], vec![m]);

        let w1 =
            BasicWindow::new(0, vec![Column::Int(vec![1, 2, 3])], vec![0; 3], vec!["x1".into()]);
        let w2 =
            BasicWindow::new(0, vec![Column::Int(vec![2, 3, 4])], vec![0; 3], vec!["x1".into()]);
        let ctx = WindowCtx::new().with_stream("s1", &w1).with_stream("s2", &w2);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn scalar_agg_empty_semantics() {
        let empty = Bat::empty(DataType::Int);
        assert_eq!(scalar_agg(AggKind::Count, &empty).unwrap(), MalValue::Scalar(Value::Int(0)));
        assert_eq!(scalar_agg(AggKind::Sum, &empty).unwrap(), MalValue::Absent);
        assert_eq!(scalar_agg(AggKind::Min, &empty).unwrap(), MalValue::Absent);
        assert_eq!(scalar_agg(AggKind::Avg, &empty).unwrap(), MalValue::Absent);
    }

    #[test]
    fn avg_scalar_and_grouped() {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let a = b.emit(MalOp::ScalarAgg { kind: AggKind::Avg, vals: x });
        let plan = b.finish(vec!["a".into()], vec![a]);
        let w =
            BasicWindow::new(0, vec![Column::Int(vec![1, 2, 3])], vec![0; 3], vec!["x1".into()]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        assert_eq!(execute(&plan, &ctx).unwrap().rows(), vec![vec![Value::Float(2.0)]]);

        let mut b = MalBuilder::new();
        let x1 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let g = b.emit(MalOp::Group { keys: x1 });
        let a = b.emit(MalOp::GroupedAgg { kind: AggKind::Avg, vals: Some(x1), groups: g });
        let plan = b.finish(vec!["a".into()], vec![a]);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn missing_stream_is_unknown_source() {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "ghost".into(), attr: "x".into() });
        let plan = b.finish(vec!["x".into()], vec![x]);
        let ctx = WindowCtx::new();
        assert!(matches!(execute(&plan, &ctx), Err(PlanError::UnknownSource(_))));
    }

    #[test]
    fn bind_table_from_catalog() {
        let mut cat = Catalog::new();
        let mut t = Table::new("dim", &[("k", DataType::Int)]);
        t.append(&[Column::Int(vec![7, 8])]).unwrap();
        cat.create_table(t).unwrap();

        let mut b = MalBuilder::new();
        let k = b.emit(MalOp::BindTable { table: "dim".into(), attr: "k".into() });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: k });
        let plan = b.finish(vec!["s".into()], vec![s]);
        let ctx = WindowCtx::new().with_catalog(&cat);
        assert_eq!(execute(&plan, &ctx).unwrap().rows(), vec![vec![Value::Int(15)]]);
    }

    #[test]
    fn sort_and_slice_ops() {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let srt = b.emit(MalOp::Sort { input: x, desc: true });
        let top = b.emit(MalOp::Slice { input: srt, n: 2 });
        let plan = b.finish(vec!["x".into()], vec![top]);
        let w =
            BasicWindow::new(0, vec![Column::Int(vec![5, 9, 1])], vec![0; 3], vec!["x1".into()]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(9)], vec![Value::Int(5)]]);
    }

    #[test]
    fn sortperm_applies_via_fetch() {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let y = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x2".into() });
        let p = b.emit(MalOp::SortPerm { input: x, desc: false });
        let ys = b.emit(MalOp::Fetch { cands: p, values: y });
        let plan = b.finish(vec!["y".into()], vec![ys]);
        let w = window(vec![3, 1, 2], vec![30, 10, 20]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        let rs = execute(&plan, &ctx).unwrap();
        assert_eq!(
            rs.rows(),
            vec![vec![Value::Int(10)], vec![Value::Int(20)], vec![Value::Int(30)]]
        );
    }

    #[test]
    fn partitioned_ctx_agrees_with_sequential() {
        // SELECT sum(x2) FROM s WHERE x1 > 10 — select byte-identical, and
        // the aggregate over the (order-insensitive) join/select output
        // must match the sequential run exactly.
        let mut b = MalBuilder::new();
        let x1 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let x2 = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x2".into() });
        let c = b.emit(MalOp::Select { input: x1, pred: Predicate::gt(10) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x2 });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
        let plan = b.finish(vec!["sum_x2".into()], vec![s]);

        let xs: Vec<i64> = (0..64).map(|i| i % 21).collect();
        let ys: Vec<i64> = (0..64).collect();
        let w = window(xs, ys);
        let seq = execute(&plan, &WindowCtx::new().with_stream("s", &w)).unwrap();
        for p in [1, 4] {
            let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(p);
            assert_eq!(execute(&plan, &ctx).unwrap().rows(), seq.rows(), "partitions={p}");
        }

        // Two-stream join: pair sets agree (scalar agg makes it exact).
        let mut b = MalBuilder::new();
        let a = b.emit(MalOp::BindStream { stream: "s1".into(), attr: "x1".into() });
        let c = b.emit(MalOp::BindStream { stream: "s2".into(), attr: "x1".into() });
        let (jl, _jr) = b.emit_join(a, c);
        let v = b.emit(MalOp::Fetch { cands: jl, values: a });
        let n = b.emit(MalOp::ScalarAgg { kind: AggKind::Count, vals: v });
        let m = b.emit(MalOp::ScalarAgg { kind: AggKind::Max, vals: v });
        let plan = b.finish(vec!["n".into(), "max".into()], vec![n, m]);
        let w1 = window((0..40).map(|i| i % 9).collect(), vec![0; 40]);
        let w2 = window((0..32).map(|i| i % 6).collect(), vec![0; 32]);
        let seq = execute(&plan, &WindowCtx::new().with_stream("s1", &w1).with_stream("s2", &w2))
            .unwrap();
        let ctx = WindowCtx::new().with_stream("s1", &w1).with_stream("s2", &w2).with_partitions(4);
        assert_eq!(execute(&plan, &ctx).unwrap().rows(), seq.rows());
    }

    #[test]
    fn sort_ops_partitioned_agree_with_sequential() {
        // ORDER BY x1 DESC projecting x2 through SortPerm -> Fetch, plus a
        // direct Sort of x1 — all byte-identical across partition counts.
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let y = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x2".into() });
        let p = b.emit(MalOp::SortPerm { input: x, desc: true });
        let ys = b.emit(MalOp::Fetch { cands: p, values: y });
        let srt = b.emit(MalOp::Sort { input: x, desc: true });
        let plan = b.finish(vec!["y".into(), "x".into()], vec![ys, srt]);
        let w = window((0..40).map(|i| (i * 7) % 11).collect(), (0..40).collect());
        let seq = execute(&plan, &WindowCtx::new().with_stream("s", &w)).unwrap();
        for parts in [2, 4, 8] {
            let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(parts);
            assert_eq!(execute(&plan, &ctx).unwrap().rows(), seq.rows(), "partitions={parts}");
        }
    }

    #[test]
    fn div_scalar_absent_propagation() {
        let mut b = MalBuilder::new();
        let x = b.emit(MalOp::BindStream { stream: "s".into(), attr: "x1".into() });
        let sum = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: x });
        let cnt = b.emit(MalOp::ScalarAgg { kind: AggKind::Count, vals: x });
        let d = b.emit(MalOp::DivScalar { num: sum, den: cnt });
        let plan = b.finish(vec!["avg".into()], vec![d]);
        let w = BasicWindow::new(0, vec![Column::empty(DataType::Int)], vec![], vec!["x1".into()]);
        let ctx = WindowCtx::new().with_stream("s", &w);
        // Empty window: sum is absent -> avg row dropped.
        assert!(execute(&plan, &ctx).unwrap().is_empty());
    }
}
