//! Logical plan optimization.
//!
//! DataCell "leverag\[es\] the algebraic query optimization performed by the
//! DBMS's query optimizer" (paper §3): the incremental rewriter runs *after*
//! ordinary relational optimization. This module provides the standard
//! rewrites that matter for the supported plan shapes:
//!
//! * **filter pushdown** through projections and below joins (a filter that
//!   touches only one join side moves onto that side);
//! * **trivial filter elimination** (`Predicate::True`);
//! * **filter ordering**: equality predicates before range predicates on the
//!   same input (cheapest-first heuristic without statistics).

use crate::logical::LogicalPlan;
use datacell_kernel::algebra::Predicate;

/// Apply all rewrites until fixpoint (the pass set is terminating: each
/// rewrite strictly reduces a measure — filter depth or plan size).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    loop {
        let (next, changed) = pass(plan);
        plan = next;
        if !changed {
            return plan;
        }
    }
}

fn pass(plan: LogicalPlan) -> (LogicalPlan, bool) {
    match plan {
        // -- trivial filter elimination ---------------------------------
        LogicalPlan::Filter { input, pred: Predicate::True, .. } => {
            let (inner, _) = pass(*input);
            (inner, true)
        }
        // -- pushdown through project -----------------------------------
        LogicalPlan::Filter { input, column, pred } => match *input {
            LogicalPlan::Project { input: pinput, columns } => {
                // The filter references base columns (qualified), which are
                // still available below the projection.
                let pushed = LogicalPlan::Filter { input: pinput, column, pred };
                (LogicalPlan::Project { input: Box::new(pushed), columns }, true)
            }
            LogicalPlan::Join { left, right, left_on, right_on } => {
                let on_left = plan_has_source(&left, &column.source);
                let on_right = plan_has_source(&right, &column.source);
                match (on_left, on_right) {
                    (true, false) => {
                        let new_left = LogicalPlan::Filter { input: left, column, pred };
                        (
                            LogicalPlan::Join {
                                left: Box::new(new_left),
                                right,
                                left_on,
                                right_on,
                            },
                            true,
                        )
                    }
                    (false, true) => {
                        let new_right = LogicalPlan::Filter { input: right, column, pred };
                        (
                            LogicalPlan::Join {
                                left,
                                right: Box::new(new_right),
                                left_on,
                                right_on,
                            },
                            true,
                        )
                    }
                    // Ambiguous or unresolvable: keep above the join.
                    _ => {
                        let (l, cl) = pass(*left);
                        let (r, cr) = pass(*right);
                        (
                            LogicalPlan::Filter {
                                input: Box::new(LogicalPlan::Join {
                                    left: Box::new(l),
                                    right: Box::new(r),
                                    left_on,
                                    right_on,
                                }),
                                column,
                                pred,
                            },
                            cl || cr,
                        )
                    }
                }
            }
            // -- equality-first ordering of adjacent filters -------------
            LogicalPlan::Filter { input: inner_input, column: inner_col, pred: inner_pred } => {
                let outer_is_eq = is_equality(&pred);
                let inner_is_eq = is_equality(&inner_pred);
                if outer_is_eq && !inner_is_eq {
                    // Swap: run the (cheaper, usually more selective)
                    // equality filter first.
                    let swapped = LogicalPlan::Filter {
                        input: Box::new(LogicalPlan::Filter { input: inner_input, column, pred }),
                        column: inner_col,
                        pred: inner_pred,
                    };
                    (swapped, true)
                } else {
                    let (inner, changed) = pass(LogicalPlan::Filter {
                        input: inner_input,
                        column: inner_col,
                        pred: inner_pred,
                    });
                    (LogicalPlan::Filter { input: Box::new(inner), column, pred }, changed)
                }
            }
            other => {
                let (inner, changed) = pass(other);
                (LogicalPlan::Filter { input: Box::new(inner), column, pred }, changed)
            }
        },
        // -- recurse ------------------------------------------------------
        LogicalPlan::Join { left, right, left_on, right_on } => {
            let (l, cl) = pass(*left);
            let (r, cr) = pass(*right);
            (
                LogicalPlan::Join { left: Box::new(l), right: Box::new(r), left_on, right_on },
                cl || cr,
            )
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Aggregate { input: Box::new(i), group_by, aggs }, c)
        }
        LogicalPlan::Project { input, columns } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Project { input: Box::new(i), columns }, c)
        }
        LogicalPlan::Distinct { input } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Distinct { input: Box::new(i) }, c)
        }
        LogicalPlan::OrderBy { input, column, desc } => {
            let (i, c) = pass(*input);
            (LogicalPlan::OrderBy { input: Box::new(i), column, desc }, c)
        }
        LogicalPlan::Limit { input, n } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Limit { input: Box::new(i), n }, c)
        }
        leaf @ (LogicalPlan::ScanStream { .. } | LogicalPlan::ScanTable { .. }) => (leaf, false),
    }
}

fn is_equality(p: &Predicate) -> bool {
    matches!(p, Predicate::Cmp(datacell_kernel::algebra::CmpOp::Eq, _))
}

fn plan_has_source(plan: &LogicalPlan, source: &str) -> bool {
    match plan {
        LogicalPlan::ScanStream { stream } => stream == source,
        LogicalPlan::ScanTable { table } => table == source,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. } => plan_has_source(input, source),
        LogicalPlan::Join { left, right, .. } => {
            plan_has_source(left, source) || plan_has_source(right, source)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ColumnRef;

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    #[test]
    fn true_filter_removed() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x"), Predicate::True)
            .project(vec![(col("s", "x"), "x".into())]);
        let o = optimize(p);
        assert!(!o.explain().contains("filter"));
    }

    #[test]
    fn filter_pushed_below_join_left() {
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("a", "x"), Predicate::gt(5));
        let o = optimize(p);
        // After pushdown the filter sits directly above "scan stream a".
        let text = o.explain();
        let filter_line = text.lines().position(|l| l.contains("filter a.x")).unwrap();
        let scan_a_line = text.lines().position(|l| l.contains("scan stream a")).unwrap();
        assert_eq!(scan_a_line, filter_line + 1);
    }

    #[test]
    fn filter_pushed_below_join_right() {
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("b", "y"), Predicate::lt(3));
        let o = optimize(p);
        let text = o.explain();
        let filter_line = text.lines().position(|l| l.contains("filter b.y")).unwrap();
        let scan_b_line = text.lines().position(|l| l.contains("scan stream b")).unwrap();
        assert_eq!(scan_b_line, filter_line + 1);
    }

    #[test]
    fn filter_pushed_through_project() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "x"), "x".into())])
            .filter(col("s", "x"), Predicate::gt(1));
        let o = optimize(p);
        let text = o.explain();
        // project ends up on top.
        assert!(text.starts_with("project"));
    }

    #[test]
    fn equality_filter_ordered_first() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::gt(1)) // range (inner, runs first pre-opt)
            .filter(col("s", "b"), Predicate::eq(2)) // equality (outer)
            .project(vec![(col("s", "a"), "a".into())]);
        let o = optimize(p);
        let text = o.explain();
        let eq_line = text.lines().position(|l| l.contains("filter s.b")).unwrap();
        let range_line = text.lines().position(|l| l.contains("filter s.a")).unwrap();
        // Equality is now deeper (closer to the scan) => runs first.
        assert!(eq_line > range_line);
    }

    #[test]
    fn optimize_reaches_fixpoint_on_clean_plan() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x"), Predicate::gt(0))
            .project(vec![(col("s", "x"), "x".into())]);
        let o = optimize(p.clone());
        assert_eq!(o, p);
    }

    #[test]
    fn ambiguous_filter_stays_above_join() {
        // Column source matches neither side: filter cannot move.
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("c", "x"), Predicate::gt(5));
        let o = optimize(p);
        assert!(o.explain().starts_with("filter c.x"));
    }
}
