//! Logical plan optimization.
//!
//! DataCell "leverag\[es\] the algebraic query optimization performed by the
//! DBMS's query optimizer" (paper §3): the incremental rewriter runs *after*
//! ordinary relational optimization. This module provides the standard
//! rewrites that matter for the supported plan shapes:
//!
//! * **filter pushdown** through projections and below joins (a filter that
//!   touches only one join side moves onto that side);
//! * **trivial filter elimination** (`Predicate::True`);
//! * **filter ordering**: equality predicates before range predicates on the
//!   same input (cheapest-first heuristic without statistics);
//! * **filter merging**: adjacent filters on the *same* column collapse
//!   into one conjunction ([`Predicate::and`]), so `a > v1 AND a < v2`
//!   becomes a single range select instead of a select + fetch + select
//!   chain — and downstream MAL passes see canonical plan shapes.
//!
//! The module also hosts the MAL-level **group-agg fusion pass**
//! ([`fuse_group_agg`]): the compatibility shim that lowers standalone
//! `Group`/`GroupKeys`/`GroupedAgg` chains (hand-built MAL plans, older
//! compilers) into the fused [`MalOp::GroupAgg`] node the incremental
//! rewriter and the parallel aggregation kernel consume.

use crate::logical::LogicalPlan;
use crate::mal::{Instr, MalOp, MalPlan, VarId};
use crate::verify::{Rule, VerifyError};
use datacell_kernel::algebra::Predicate;
use std::collections::{HashMap, HashSet};

/// Apply all rewrites until fixpoint (the pass set is terminating: each
/// rewrite strictly reduces a measure — filter depth or plan size).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    loop {
        let (next, changed) = pass(plan);
        plan = next;
        if !changed {
            return plan;
        }
    }
}

fn pass(plan: LogicalPlan) -> (LogicalPlan, bool) {
    match plan {
        // -- trivial filter elimination ---------------------------------
        LogicalPlan::Filter { input, pred: Predicate::True, .. } => {
            let (inner, _) = pass(*input);
            (inner, true)
        }
        // -- pushdown through project -----------------------------------
        LogicalPlan::Filter { input, column, pred } => match *input {
            LogicalPlan::Project { input: pinput, columns } => {
                // The filter references base columns (qualified), which are
                // still available below the projection.
                let pushed = LogicalPlan::Filter { input: pinput, column, pred };
                (LogicalPlan::Project { input: Box::new(pushed), columns }, true)
            }
            LogicalPlan::Join { left, right, left_on, right_on } => {
                let on_left = plan_has_source(&left, &column.source);
                let on_right = plan_has_source(&right, &column.source);
                match (on_left, on_right) {
                    (true, false) => {
                        let new_left = LogicalPlan::Filter { input: left, column, pred };
                        (
                            LogicalPlan::Join {
                                left: Box::new(new_left),
                                right,
                                left_on,
                                right_on,
                            },
                            true,
                        )
                    }
                    (false, true) => {
                        let new_right = LogicalPlan::Filter { input: right, column, pred };
                        (
                            LogicalPlan::Join {
                                left,
                                right: Box::new(new_right),
                                left_on,
                                right_on,
                            },
                            true,
                        )
                    }
                    // Ambiguous or unresolvable: keep above the join.
                    _ => {
                        let (l, cl) = pass(*left);
                        let (r, cr) = pass(*right);
                        (
                            LogicalPlan::Filter {
                                input: Box::new(LogicalPlan::Join {
                                    left: Box::new(l),
                                    right: Box::new(r),
                                    left_on,
                                    right_on,
                                }),
                                column,
                                pred,
                            },
                            cl || cr,
                        )
                    }
                }
            }
            // -- same-column filters merge into one conjunction ----------
            LogicalPlan::Filter { input: inner_input, column: inner_col, pred: inner_pred }
                if inner_col == column =>
            {
                let merged = LogicalPlan::Filter {
                    input: inner_input,
                    column,
                    pred: Predicate::and(inner_pred, pred),
                };
                (merged, true)
            }
            // -- equality-first ordering of adjacent filters -------------
            LogicalPlan::Filter { input: inner_input, column: inner_col, pred: inner_pred } => {
                let outer_is_eq = is_equality(&pred);
                let inner_is_eq = is_equality(&inner_pred);
                if outer_is_eq && !inner_is_eq {
                    // Swap: run the (cheaper, usually more selective)
                    // equality filter first.
                    let swapped = LogicalPlan::Filter {
                        input: Box::new(LogicalPlan::Filter { input: inner_input, column, pred }),
                        column: inner_col,
                        pred: inner_pred,
                    };
                    (swapped, true)
                } else {
                    let (inner, changed) = pass(LogicalPlan::Filter {
                        input: inner_input,
                        column: inner_col,
                        pred: inner_pred,
                    });
                    (LogicalPlan::Filter { input: Box::new(inner), column, pred }, changed)
                }
            }
            other => {
                let (inner, changed) = pass(other);
                (LogicalPlan::Filter { input: Box::new(inner), column, pred }, changed)
            }
        },
        // -- recurse ------------------------------------------------------
        LogicalPlan::Join { left, right, left_on, right_on } => {
            let (l, cl) = pass(*left);
            let (r, cr) = pass(*right);
            (
                LogicalPlan::Join { left: Box::new(l), right: Box::new(r), left_on, right_on },
                cl || cr,
            )
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Aggregate { input: Box::new(i), group_by, aggs }, c)
        }
        LogicalPlan::Project { input, columns } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Project { input: Box::new(i), columns }, c)
        }
        LogicalPlan::Distinct { input } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Distinct { input: Box::new(i) }, c)
        }
        LogicalPlan::OrderBy { input, column, desc } => {
            let (i, c) = pass(*input);
            (LogicalPlan::OrderBy { input: Box::new(i), column, desc }, c)
        }
        LogicalPlan::Limit { input, n } => {
            let (i, c) = pass(*input);
            (LogicalPlan::Limit { input: Box::new(i), n }, c)
        }
        leaf @ (LogicalPlan::ScanStream { .. } | LogicalPlan::ScanTable { .. }) => (leaf, false),
    }
}

fn is_equality(p: &Predicate) -> bool {
    matches!(p, Predicate::Cmp(datacell_kernel::algebra::CmpOp::Eq, _))
}

/// Lower `Group`/`GroupKeys`/`GroupedAgg` chains into fused
/// [`MalOp::GroupAgg`] nodes — the compatibility shim for plans built
/// directly in MAL (the SQL compiler already emits the fused form).
///
/// A chain is fused when it is *closed*: the `Groups` variable is read
/// only by its own `GroupKeys`/`GroupedAgg` members (and is not a result
/// variable), there is at most one `GroupKeys` and it materializes the
/// same key column that was grouped, and no member's destination is read
/// before the fusion site (the position of the last member, where every
/// input is available). Chains that fail these checks are left untouched
/// — the standalone nodes remain legal and executable; they just do not
/// reach the fused parallel path.
pub fn fuse_group_agg(plan: &MalPlan) -> MalPlan {
    fuse_group_agg_diag(plan).0
}

/// [`fuse_group_agg`] with diagnostics: alongside the (possibly) fused
/// plan, return one [`VerifyError`] per grouping chain the pass had to
/// *decline*, each naming the op index and variable that broke the
/// closed-chain precondition. Declined chains are not errors — the
/// standalone nodes still execute — but the incremental rewriter uses
/// these diagnostics to explain *why* an unfused chain ended up crossing
/// its merge frontier instead of reporting a bare string.
pub fn fuse_group_agg_diag(plan: &MalPlan) -> (MalPlan, Vec<VerifyError>) {
    // Position of each instruction that writes a given variable, and the
    // set of (reader instr, arg) pairs per variable.
    let mut readers: HashMap<VarId, Vec<usize>> = HashMap::new();
    for (i, ins) in plan.instrs.iter().enumerate() {
        for a in ins.op.args() {
            readers.entry(a).or_default().push(i);
        }
    }

    let mut nvars = plan.nvars;
    let mut dropped: HashSet<usize> = HashSet::new();
    let mut fused_at: HashMap<usize, Instr> = HashMap::new();
    let mut declined: Vec<VerifyError> = Vec::new();

    'groups: for (gi, gins) in plan.instrs.iter().enumerate() {
        let MalOp::Group { keys } = gins.op else { continue };
        let gvar = gins.dests[0];
        if plan.result_vars.contains(&gvar) {
            declined.push(
                VerifyError::at(
                    plan,
                    gi,
                    Rule::OpenGroupChain,
                    "not fused: grouping structure is a result variable",
                )
                .with_var(gvar),
            );
            continue;
        }
        // Collect members; any non-member reader of the Groups var
        // disqualifies the chain.
        let mut keys_member: Option<(usize, VarId)> = None;
        let mut agg_members: Vec<(usize, VarId, datacell_kernel::algebra::AggKind, Option<VarId>)> =
            Vec::new();
        for &ri in readers.get(&gvar).map(std::vec::Vec::as_slice).unwrap_or_default() {
            match &plan.instrs[ri].op {
                MalOp::GroupKeys { groups, keys: k2 } if *groups == gvar && *k2 == keys => {
                    if keys_member.is_some() {
                        declined.push(
                            VerifyError::at(
                                plan,
                                ri,
                                Rule::OpenGroupChain,
                                "not fused: second group.keys on one grouping is ambiguous",
                            )
                            .with_var(gvar),
                        );
                        continue 'groups;
                    }
                    keys_member = Some((ri, plan.instrs[ri].dests[0]));
                }
                MalOp::GroupedAgg { kind, vals, groups } if *groups == gvar => {
                    agg_members.push((ri, plan.instrs[ri].dests[0], *kind, *vals));
                }
                _ => {
                    declined.push(
                        VerifyError::at(
                            plan,
                            ri,
                            Rule::OpenGroupChain,
                            format!(
                                "not fused: {} is a foreign consumer of the grouping",
                                plan.instrs[ri].op.name()
                            ),
                        )
                        .with_var(gvar),
                    );
                    continue 'groups;
                }
            }
        }
        if agg_members.is_empty() && keys_member.is_none() {
            continue; // dead grouping: nothing to fuse
        }
        // The fusion site: the last member, where all inputs are written.
        let member_idxs: HashSet<usize> = keys_member
            .iter()
            .map(|&(i, _)| i)
            .chain(agg_members.iter().map(|&(i, ..)| i))
            .collect();
        let site = *member_idxs.iter().max().expect("at least one member");
        // No member destination may be read at or before the fusion site
        // — by outsiders (the write would move past the read) or by the
        // members themselves (every member index is ≤ site, so a member
        // aggregating another member's output would fuse into a node
        // that reads its own destination).
        let member_dests: Vec<VarId> = keys_member
            .iter()
            .map(|&(_, d)| d)
            .chain(agg_members.iter().map(|&(_, d, ..)| d))
            .collect();
        for d in member_dests {
            for &ri in readers.get(&d).map(std::vec::Vec::as_slice).unwrap_or_default() {
                if ri <= site {
                    declined.push(
                        VerifyError::at(
                            plan,
                            ri,
                            Rule::OpenGroupChain,
                            "not fused: a member destination is read at or before the fusion site",
                        )
                        .with_var(d),
                    );
                    continue 'groups;
                }
            }
        }
        // Build the fused node: keys dest reuses the GroupKeys dest (or a
        // fresh, unread variable when the chain had no GroupKeys).
        let keys_dest = match keys_member {
            Some((_, d)) => d,
            None => {
                let v = nvars;
                nvars += 1;
                v
            }
        };
        let mut dests = vec![keys_dest];
        let mut aggs = Vec::with_capacity(agg_members.len());
        for &(_, d, kind, vals) in &agg_members {
            dests.push(d);
            aggs.push((kind, vals));
        }
        dropped.insert(gi);
        dropped.extend(&member_idxs);
        fused_at.insert(site, Instr { dests, op: MalOp::GroupAgg { keys, aggs } });
    }

    if fused_at.is_empty() {
        return (plan.clone(), declined);
    }
    let mut instrs = Vec::with_capacity(plan.instrs.len());
    for (i, ins) in plan.instrs.iter().enumerate() {
        if let Some(fused) = fused_at.remove(&i) {
            instrs.push(fused);
        } else if !dropped.contains(&i) {
            instrs.push(ins.clone());
        }
    }
    let out = MalPlan {
        instrs,
        result_names: plan.result_names.clone(),
        result_vars: plan.result_vars.clone(),
        nvars,
        streams: plan.streams.clone(),
    };
    debug_assert!(out.validate().is_ok(), "fusion produced invalid MAL:\n{}", out.explain());
    (out, declined)
}

fn plan_has_source(plan: &LogicalPlan, source: &str) -> bool {
    match plan {
        LogicalPlan::ScanStream { stream } => stream == source,
        LogicalPlan::ScanTable { table } => table == source,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. } => plan_has_source(input, source),
        LogicalPlan::Join { left, right, .. } => {
            plan_has_source(left, source) || plan_has_source(right, source)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ColumnRef;

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    #[test]
    fn true_filter_removed() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x"), Predicate::True)
            .project(vec![(col("s", "x"), "x".into())]);
        let o = optimize(p);
        assert!(!o.explain().contains("filter"));
    }

    #[test]
    fn filter_pushed_below_join_left() {
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("a", "x"), Predicate::gt(5));
        let o = optimize(p);
        // After pushdown the filter sits directly above "scan stream a".
        let text = o.explain();
        let filter_line = text.lines().position(|l| l.contains("filter a.x")).unwrap();
        let scan_a_line = text.lines().position(|l| l.contains("scan stream a")).unwrap();
        assert_eq!(scan_a_line, filter_line + 1);
    }

    #[test]
    fn filter_pushed_below_join_right() {
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("b", "y"), Predicate::lt(3));
        let o = optimize(p);
        let text = o.explain();
        let filter_line = text.lines().position(|l| l.contains("filter b.y")).unwrap();
        let scan_b_line = text.lines().position(|l| l.contains("scan stream b")).unwrap();
        assert_eq!(scan_b_line, filter_line + 1);
    }

    #[test]
    fn filter_pushed_through_project() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "x"), "x".into())])
            .filter(col("s", "x"), Predicate::gt(1));
        let o = optimize(p);
        let text = o.explain();
        // project ends up on top.
        assert!(text.starts_with("project"));
    }

    #[test]
    fn equality_filter_ordered_first() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::gt(1)) // range (inner, runs first pre-opt)
            .filter(col("s", "b"), Predicate::eq(2)) // equality (outer)
            .project(vec![(col("s", "a"), "a".into())]);
        let o = optimize(p);
        let text = o.explain();
        let eq_line = text.lines().position(|l| l.contains("filter s.b")).unwrap();
        let range_line = text.lines().position(|l| l.contains("filter s.a")).unwrap();
        // Equality is now deeper (closer to the scan) => runs first.
        assert!(eq_line > range_line);
    }

    #[test]
    fn optimize_reaches_fixpoint_on_clean_plan() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "x"), Predicate::gt(0))
            .project(vec![(col("s", "x"), "x".into())]);
        let o = optimize(p.clone());
        assert_eq!(o, p);
    }

    #[test]
    fn ambiguous_filter_stays_above_join() {
        // Column source matches neither side: filter cannot move.
        let p = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .filter(col("c", "x"), Predicate::gt(5));
        let o = optimize(p);
        assert!(o.explain().starts_with("filter c.x"));
    }

    #[test]
    fn same_column_filters_merge_into_one_conjunction() {
        // a > 1 AND a < 5 on the same column: one filter, one Range pred.
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::gt(1))
            .filter(col("s", "a"), Predicate::lt(5))
            .project(vec![(col("s", "a"), "a".into())]);
        let o = optimize(p);
        let filters = o.explain().lines().filter(|l| l.contains("filter")).count();
        assert_eq!(filters, 1);
        let LogicalPlan::Project { input, .. } = &o else { panic!("project on top") };
        let LogicalPlan::Filter { pred, .. } = input.as_ref() else { panic!("merged filter") };
        assert!(matches!(pred, Predicate::Range { .. }), "gt+lt folded to a range: {pred:?}");
    }

    #[test]
    fn same_column_merge_keeps_residual_conjunctions() {
        // Two lower bounds cannot fold to a Range; they still merge into
        // one filter carrying a Predicate::And.
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::gt(1))
            .filter(col("s", "a"), Predicate::gt(3))
            .project(vec![(col("s", "a"), "a".into())]);
        let o = optimize(p);
        let LogicalPlan::Project { input, .. } = &o else { panic!("project on top") };
        let LogicalPlan::Filter { pred, .. } = input.as_ref() else { panic!("merged filter") };
        assert!(matches!(pred, Predicate::And(..)));
    }

    #[test]
    fn different_column_filters_do_not_merge() {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::gt(1))
            .filter(col("s", "b"), Predicate::lt(5))
            .project(vec![(col("s", "a"), "a".into())]);
        let o = optimize(p);
        let filters = o.explain().lines().filter(|l| l.contains("filter")).count();
        assert_eq!(filters, 2);
    }

    mod fusion {
        use super::*;
        use crate::mal::{MalBuilder, MalOp};
        use datacell_kernel::algebra::AggKind;

        /// A hand-built unfused chain: bind, group, keys, sum, count.
        fn unfused() -> crate::mal::MalPlan {
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let s = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: Some(v), groups: g });
            let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
            b.finish(vec!["k".into(), "s".into(), "n".into()], vec![gk, s, n])
        }

        #[test]
        fn chain_fuses_to_one_group_agg_node() {
            let fused = fuse_group_agg(&unfused());
            fused.validate().unwrap();
            assert!(!fused.instrs.iter().any(|i| matches!(
                i.op,
                MalOp::Group { .. } | MalOp::GroupKeys { .. } | MalOp::GroupedAgg { .. }
            )));
            let ga = fused
                .instrs
                .iter()
                .find(|i| matches!(i.op, MalOp::GroupAgg { .. }))
                .expect("fused node emitted");
            // Keys dest first (the GroupKeys dest), then the agg dests in
            // member order — result vars unchanged.
            assert_eq!(ga.dests, vec![3, 4, 5]);
            let MalOp::GroupAgg { keys, aggs } = &ga.op else { unreachable!() };
            assert_eq!(*keys, 0);
            assert_eq!(aggs.len(), 2);
            assert_eq!(fused.result_vars, vec![3, 4, 5]);
        }

        #[test]
        fn chain_without_groupkeys_gets_fresh_keys_dest() {
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let a = b.emit(MalOp::GroupedAgg { kind: AggKind::Avg, vals: Some(k), groups: g });
            let plan = b.finish(vec!["a".into()], vec![a]);
            let fused = fuse_group_agg(&plan);
            fused.validate().unwrap();
            assert_eq!(fused.nvars, plan.nvars + 1); // fresh, unread keys var
            assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::GroupAgg { .. })));
        }

        #[test]
        fn groups_var_as_result_blocks_fusion() {
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let mut plan = b.finish(vec!["k".into()], vec![gk]);
            plan.result_vars = vec![g]; // pathological: grouping itself is a result
            let fused = fuse_group_agg(&plan);
            assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::Group { .. })));
        }

        #[test]
        fn member_dest_read_before_site_blocks_fusion() {
            // GroupKeys dest is sorted *between* the members: fusing at
            // the last member would move the write past the read.
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let srt = b.emit(MalOp::Sort { input: gk, desc: false });
            let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
            let plan = b.finish(vec!["k".into(), "n".into()], vec![srt, n]);
            let fused = fuse_group_agg(&plan);
            fused.validate().unwrap();
            assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::Group { .. })));
        }

        #[test]
        fn member_aggregating_another_members_dest_blocks_fusion() {
            // A GroupedAgg whose value column *is* the GroupKeys output:
            // fusing would emit a node that reads its own destination.
            // The chain must stay unfused (and keep executing as-is).
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: Some(gk), groups: g });
            let plan = b.finish(vec!["k".into(), "n".into()], vec![gk, n]);
            let fused = fuse_group_agg(&plan);
            fused.validate().unwrap();
            assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::Group { .. })));
            assert!(!fused.instrs.iter().any(|i| matches!(i.op, MalOp::GroupAgg { .. })));
        }

        #[test]
        fn declined_chains_report_located_diagnostics() {
            use crate::verify::Rule;
            // Result-var grouping: diagnostic anchored at the Group node.
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let mut plan = b.finish(vec!["k".into()], vec![gk]);
            plan.result_vars = vec![g];
            let (_, diags) = fuse_group_agg_diag(&plan);
            assert_eq!(diags.len(), 1);
            assert_eq!(diags[0].rule, Rule::OpenGroupChain);
            assert_eq!(diags[0].instr, Some(1));
            assert_eq!(diags[0].var, Some(g));
            assert_eq!(diags[0].op, Some("group.new"));

            // Member dest read before the fusion site: diagnostic anchored
            // at the offending reader, naming the read variable.
            let mut b = MalBuilder::new();
            let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
            let g = b.emit(MalOp::Group { keys: k });
            let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
            let srt = b.emit(MalOp::Sort { input: gk, desc: false });
            let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
            let plan = b.finish(vec!["k".into(), "n".into()], vec![srt, n]);
            let (_, diags) = fuse_group_agg_diag(&plan);
            assert_eq!(diags.len(), 1);
            assert_eq!(diags[0].rule, Rule::OpenGroupChain);
            assert_eq!(diags[0].instr, Some(3));
            assert_eq!(diags[0].var, Some(gk));

            // A cleanly fused chain produces no diagnostics.
            let (_, diags) = fuse_group_agg_diag(&unfused());
            assert!(diags.is_empty());
        }

        #[test]
        fn fused_plan_executes_identically() {
            use crate::exec::{execute, WindowCtx};
            use datacell_basket::BasicWindow;
            use datacell_kernel::Column;
            let plan = unfused();
            let fused = fuse_group_agg(&plan);
            let w = BasicWindow::new(
                0,
                vec![Column::Int(vec![1, 2, 1, 3, 2]), Column::Int(vec![10, 20, 30, 40, 50])],
                vec![0; 5],
                vec!["k".into(), "v".into()],
            );
            let ctx = WindowCtx::new().with_stream("s", &w);
            let a = execute(&plan, &ctx).unwrap();
            let b = execute(&fused, &ctx).unwrap();
            assert_eq!(a.rows(), b.rows());
        }
    }
}
