//! Result sets: the rows a query (or one window firing) produces.

use crate::mal::MalValue;
use crate::PlanError;
use datacell_kernel::{Column, Value};

/// Named, aligned output columns of one query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    names: Vec<String>,
    cols: Vec<Column>,
}

impl ResultSet {
    /// Build from aligned columns.
    pub fn new(names: Vec<String>, cols: Vec<Column>) -> crate::Result<ResultSet> {
        if names.len() != cols.len() {
            return Err(PlanError::Internal(format!(
                "result arity mismatch: {} names vs {} columns",
                names.len(),
                cols.len()
            )));
        }
        if let Some(first) = cols.first() {
            if cols.iter().any(|c| c.len() != first.len()) {
                return Err(PlanError::Internal("result columns not aligned".into()));
            }
        }
        Ok(ResultSet { names, cols })
    }

    /// An empty (zero-column, zero-row) result.
    pub fn empty() -> ResultSet {
        ResultSet { names: vec![], cols: vec![] }
    }

    /// Assemble from MAL result variables: BAT vars become columns, scalar
    /// vars become single-value columns. A mix of multi-row BATs and
    /// scalars broadcasts scalars; an `Absent` scalar collapses the whole
    /// result to zero rows (SQL's empty-window aggregate row is dropped —
    /// continuous queries emit nothing for windows with no qualifying data).
    pub fn from_mal(names: Vec<String>, vals: Vec<MalValue>) -> crate::Result<ResultSet> {
        // Determine row count: max BAT length, scalars broadcast.
        let mut nrows: Option<usize> = None;
        let mut any_absent = false;
        for v in &vals {
            match v {
                MalValue::Bat(b) => match nrows {
                    None => nrows = Some(b.len()),
                    Some(n) if n == b.len() => {}
                    Some(n) => {
                        return Err(PlanError::Internal(format!(
                            "result BATs misaligned: {n} vs {}",
                            b.len()
                        )))
                    }
                },
                MalValue::Scalar(_) => {}
                MalValue::Absent => any_absent = true,
                MalValue::Groups(_) => {
                    return Err(PlanError::Internal("groups cannot be a result column".into()))
                }
            }
        }
        let nrows = if any_absent { 0 } else { nrows.unwrap_or(1) };
        let mut cols = Vec::with_capacity(vals.len());
        for v in vals {
            let col = match v {
                MalValue::Bat(b) => b.tail,
                MalValue::Scalar(s) => {
                    let mut c = Column::empty(s.data_type());
                    for _ in 0..nrows {
                        c.push(s.clone()).expect("same type");
                    }
                    c
                }
                MalValue::Absent => Column::empty(datacell_kernel::DataType::Float),
                MalValue::Groups(_) => unreachable!("rejected above"),
            };
            cols.push(col);
        }
        // When absent collapsed the row count, truncate BAT columns too
        // (they are necessarily empty in well-formed plans, but be safe).
        if any_absent {
            for c in &mut cols {
                if !c.is_empty() {
                    *c = Column::empty(c.data_type());
                }
            }
        }
        ResultSet::new(names, cols)
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, datacell_kernel::Column::len)
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column by name.
    pub fn col(&self, name: &str) -> crate::Result<&Column> {
        let i = self
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| PlanError::UnknownColumn(name.to_owned()))?;
        Ok(&self.cols[i])
    }

    /// Row `i` as values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i).expect("row in range")).collect()
    }

    /// All rows (tests / small results).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Rows sorted lexicographically — order-insensitive comparison helper
    /// for tests comparing incremental vs re-evaluation output.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::Bat;

    #[test]
    fn new_validates_arity_and_alignment() {
        assert!(ResultSet::new(vec!["a".into()], vec![]).is_err());
        assert!(ResultSet::new(
            vec!["a".into(), "b".into()],
            vec![Column::Int(vec![1]), Column::Int(vec![1, 2])]
        )
        .is_err());
        let rs = ResultSet::new(vec!["a".into()], vec![Column::Int(vec![1, 2])]).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn from_mal_scalars_make_one_row() {
        let rs = ResultSet::from_mal(
            vec!["m".into(), "n".into()],
            vec![MalValue::Scalar(Value::Int(5)), MalValue::Scalar(Value::Float(1.5))],
        )
        .unwrap();
        assert_eq!(rs.rows(), vec![vec![Value::Int(5), Value::Float(1.5)]]);
    }

    #[test]
    fn from_mal_absent_drops_row() {
        let rs = ResultSet::from_mal(
            vec!["m".into(), "n".into()],
            vec![MalValue::Scalar(Value::Int(5)), MalValue::Absent],
        )
        .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn from_mal_bats_align() {
        let rs = ResultSet::from_mal(
            vec!["k".into(), "v".into()],
            vec![
                MalValue::Bat(Bat::transient(Column::Int(vec![1, 2]))),
                MalValue::Bat(Bat::transient(Column::Int(vec![10, 20]))),
            ],
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.row(1), vec![Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn from_mal_misaligned_bats_error() {
        let r = ResultSet::from_mal(
            vec!["k".into(), "v".into()],
            vec![
                MalValue::Bat(Bat::transient(Column::Int(vec![1, 2]))),
                MalValue::Bat(Bat::transient(Column::Int(vec![10]))),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn from_mal_scalar_broadcasts_across_bat_rows() {
        let rs = ResultSet::from_mal(
            vec!["k".into(), "c".into()],
            vec![
                MalValue::Bat(Bat::transient(Column::Int(vec![1, 2]))),
                MalValue::Scalar(Value::Int(7)),
            ],
        )
        .unwrap();
        assert_eq!(rs.col("c").unwrap(), &Column::Int(vec![7, 7]));
    }

    #[test]
    fn col_lookup_and_sorted_rows() {
        let rs = ResultSet::new(vec!["a".into()], vec![Column::Int(vec![3, 1, 2])]).unwrap();
        assert_eq!(rs.col("a").unwrap().len(), 3);
        assert!(rs.col("zz").is_err());
        assert_eq!(
            rs.sorted_rows(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn empty_result() {
        let rs = ResultSet::empty();
        assert!(rs.is_empty());
        assert_eq!(rs.names().len(), 0);
    }
}
