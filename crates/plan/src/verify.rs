//! Static analysis over MAL plans: the pass-boundary verifier.
//!
//! Every plan transformation in the stack — `compile`, the MAL-level
//! [`fuse_group_agg`](crate::optimize::fuse_group_agg) fusion, the
//! rewriter's `expand_avg`, the incremental clustering in `datacell-core`
//! — rewrites a [`MalPlan`] under invariants that used to be enforced only
//! by scattered ad-hoc checks and executor panics. This module makes them
//! a single static analyzer that runs at pass boundaries:
//!
//! 1. **Structural (SSA) rules** — every variable is written exactly once,
//!    read only after its write, destination counts match
//!    [`MalOp::n_dests`], and every result variable is written
//!    ([`verify_structural`]).
//! 2. **Operand-kind and arity rules** — `Select` reads a value BAT, not a
//!    candidate list; `Fetch` candidates are oid-kind; `Join` writes two
//!    aligned oid dests; grouped aggregates other than `count` carry a
//!    value column; `Group` outputs feed only grouping consumers
//!    ([`verify_typed`]).
//! 3. **Type/shape inference** — column types are seeded from a
//!    [`SchemaSource`] at `BindStream`/`BindTable` and propagated through
//!    select/fetch/join/group/map ops; mismatches are reported with the
//!    op index and `X_n` names matching [`MalPlan::explain`].
//! 4. **Incremental-safety lints** — open (non-closed) grouping chains
//!    that the fusion pass must decline and the rewriter cannot merge
//!    ([`lint_incremental`]), plus a partition-safety classification
//!    ([`partition_safety`]) of which nodes may take the `kernel::par`
//!    path.
//!
//! [`checked_pass`] is the differential harness: it asserts
//! verifier-cleanliness before *and* after a MAL→MAL pass, on by default
//! under `debug_assertions` and switchable in release builds with
//! `DATACELL_VERIFY=1`.

use crate::mal::{MalOp, MalPlan, VarId};
use crate::PlanError;
use datacell_kernel::algebra::{AggKind, ArithOp, Predicate};
use datacell_kernel::{Catalog, DataType};
use std::fmt;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Which verifier rule a diagnostic comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A variable is read before any instruction writes it.
    UseBeforeDef,
    /// A variable is written by more than one instruction.
    DoubleAssign,
    /// An instruction's destination count disagrees with its operator.
    DestArity,
    /// A variable id is out of the plan's `nvars` range.
    VarRange,
    /// A result variable is never written.
    ResultUnwritten,
    /// An operand has the wrong kind (BAT/groups/scalar/candidate list).
    OperandKind,
    /// Inferred column/scalar types disagree.
    TypeMismatch,
    /// A grouping chain is not closed (foreign consumer, result-var
    /// grouping, ambiguous or mismatched `GroupKeys`).
    OpenGroupChain,
    /// Ring-variable discipline of an incremental plan is violated.
    RingDiscipline,
}

impl Rule {
    /// Stable kebab-case label used in rendered diagnostics and tests.
    pub fn label(self) -> &'static str {
        match self {
            Rule::UseBeforeDef => "use-before-def",
            Rule::DoubleAssign => "double-assign",
            Rule::DestArity => "dest-arity",
            Rule::VarRange => "var-range",
            Rule::ResultUnwritten => "result-unwritten",
            Rule::OperandKind => "operand-kind",
            Rule::TypeMismatch => "type-mismatch",
            Rule::OpenGroupChain => "open-group-chain",
            Rule::RingDiscipline => "ring-discipline",
        }
    }
}

/// One verifier diagnostic with a precise location: the instruction index
/// (matching the `[nn]` prefixes of [`MalPlan::explain`]), the operator
/// name, and the offending variable in `X_n` notation.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Index of the offending instruction, when attributable.
    pub instr: Option<usize>,
    /// Operator name (`MalOp::name`) at that instruction.
    pub op: Option<&'static str>,
    /// The offending variable.
    pub var: Option<VarId>,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub message: String,
    /// The pass at whose boundary the error was detected (set by
    /// [`checked_pass`]).
    pub pass: Option<String>,
}

impl VerifyError {
    /// A diagnostic anchored to instruction `instr` of `plan`.
    pub fn at(plan: &MalPlan, instr: usize, rule: Rule, message: impl Into<String>) -> VerifyError {
        VerifyError {
            instr: Some(instr),
            op: plan.instrs.get(instr).map(|i| i.op.name()),
            var: None,
            rule,
            message: message.into(),
            pass: None,
        }
    }

    /// A plan-level diagnostic not tied to one instruction.
    pub fn plan_level(rule: Rule, message: impl Into<String>) -> VerifyError {
        VerifyError { instr: None, op: None, var: None, rule, message: message.into(), pass: None }
    }

    /// Attach the offending variable.
    pub fn with_var(mut self, var: VarId) -> VerifyError {
        self.var = Some(var);
        self
    }

    /// Attach the pass name ([`checked_pass`] boundary attribution).
    pub fn in_pass(mut self, pass: &str) -> VerifyError {
        self.pass = Some(pass.to_owned());
        self
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.pass {
            write!(f, "[pass {p}] ")?;
        }
        match (self.instr, self.op) {
            (Some(i), Some(op)) => write!(f, "instr {i} ({op}): ")?,
            (Some(i), None) => write!(f, "instr {i}: ")?,
            _ => write!(f, "plan: ")?,
        }
        write!(f, "{}", self.message)?;
        if let Some(v) = self.var {
            write!(f, " (X_{v})")?;
        }
        write!(f, " [{}]", self.rule.label())
    }
}

impl std::error::Error for VerifyError {}

// ---------------------------------------------------------------------------
// Schema sources
// ---------------------------------------------------------------------------

/// Where `BindStream`/`BindTable` column types come from during type
/// inference. Unknown attributes return `None` and the inferred type stays
/// open (checks involving it are skipped, not failed).
pub trait SchemaSource {
    /// The type of one stream attribute, if known.
    fn stream_attr_type(&self, stream: &str, attr: &str) -> Option<DataType>;
    /// The type of one persistent-table attribute, if known.
    fn table_attr_type(&self, table: &str, attr: &str) -> Option<DataType>;
}

/// A schema source that knows nothing: every bind type stays open.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSchema;

impl SchemaSource for NoSchema {
    fn stream_attr_type(&self, _stream: &str, _attr: &str) -> Option<DataType> {
        None
    }

    fn table_attr_type(&self, _table: &str, _attr: &str) -> Option<DataType> {
        None
    }
}

/// The kernel catalog resolves table attributes; stream types stay open
/// (pair it with engine-side stream schemas via [`SchemaOverlay`]).
impl SchemaSource for Catalog {
    fn stream_attr_type(&self, _stream: &str, _attr: &str) -> Option<DataType> {
        None
    }

    fn table_attr_type(&self, table: &str, attr: &str) -> Option<DataType> {
        self.table(table).ok().and_then(|t| t.column_type(attr).ok())
    }
}

/// Combine explicit stream schemas with a table-side source (typically the
/// catalog): the full engine view of plan types.
pub struct SchemaOverlay<'a> {
    streams: Vec<(String, Vec<(String, DataType)>)>,
    tables: &'a dyn SchemaSource,
}

impl<'a> SchemaOverlay<'a> {
    /// An overlay over `tables` with no stream schemas yet.
    pub fn new(tables: &'a dyn SchemaSource) -> SchemaOverlay<'a> {
        SchemaOverlay { streams: Vec::new(), tables }
    }

    /// Register one stream schema.
    pub fn with_stream(
        mut self,
        name: impl Into<String>,
        schema: Vec<(String, DataType)>,
    ) -> SchemaOverlay<'a> {
        self.streams.push((name.into(), schema));
        self
    }
}

impl SchemaSource for SchemaOverlay<'_> {
    fn stream_attr_type(&self, stream: &str, attr: &str) -> Option<DataType> {
        self.streams
            .iter()
            .find(|(n, _)| n == stream)
            .and_then(|(_, s)| s.iter().find(|(a, _)| a == attr))
            .map(|&(_, t)| t)
    }

    fn table_attr_type(&self, table: &str, attr: &str) -> Option<DataType> {
        self.tables.table_attr_type(table, attr)
    }
}

// ---------------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------------

/// The inferred shape of a MAL variable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    /// A columnar BAT. `dt` is the tail type when known; `cands` marks
    /// candidate lists (select/join/sortperm outputs and re-mapped
    /// candidate fetches) as opposed to value BATs.
    Bat { dt: Option<DataType>, cands: bool },
    /// A grouping structure.
    Groups,
    /// A scalar aggregate result (possibly absent at runtime).
    Scalar { dt: Option<DataType> },
}

impl Shape {
    fn value_bat(dt: Option<DataType>) -> Shape {
        Shape::Bat { dt, cands: false }
    }

    fn cand_list() -> Shape {
        Shape::Bat { dt: Some(DataType::Oid), cands: true }
    }

    fn describe(&self) -> String {
        match self {
            Shape::Bat { dt, cands: true } => format!("candidate list ({})", fmt_dt(*dt)),
            Shape::Bat { dt, cands: false } => format!("value BAT ({})", fmt_dt(*dt)),
            Shape::Groups => "grouping structure".into(),
            Shape::Scalar { dt } => format!("scalar ({})", fmt_dt(*dt)),
        }
    }
}

fn fmt_dt(dt: Option<DataType>) -> String {
    dt.map_or_else(|| "?".to_owned(), |d| d.to_string())
}

/// The result type of an aggregate over a column of type `input`.
fn agg_result(kind: AggKind, input: Option<DataType>) -> Option<DataType> {
    match kind {
        AggKind::Count => Some(DataType::Int),
        AggKind::Avg => Some(DataType::Float),
        AggKind::Sum | AggKind::Min | AggKind::Max => input,
    }
}

/// `sum`/`avg` add their inputs, so a known non-numeric input type is a
/// type error; `min`/`max`/`count` work on any column.
fn agg_input_ok(kind: AggKind, input: Option<DataType>) -> bool {
    match kind {
        AggKind::Sum | AggKind::Avg => input.is_none_or(numeric),
        AggKind::Count | AggKind::Min | AggKind::Max => true,
    }
}

/// Numeric types the arithmetic kernels accept.
fn numeric(dt: DataType) -> bool {
    matches!(dt, DataType::Int | DataType::Float)
}

/// Can a predicate/join constant of type `b` be compared against a column
/// of type `a`? Equal types always; ints and floats compare across.
fn comparable(a: DataType, b: DataType) -> bool {
    a == b || (numeric(a) && numeric(b))
}

// ---------------------------------------------------------------------------
// Structural verification
// ---------------------------------------------------------------------------

/// Check the SSA-style structural rules only: single assignment,
/// def-before-use, destination arity, variable ranges, result vars
/// written. Returns every violation (empty = clean).
pub fn verify_structural(plan: &MalPlan) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let mut written = vec![false; plan.nvars];
    for (i, ins) in plan.instrs.iter().enumerate() {
        for a in ins.op.args() {
            if a >= plan.nvars {
                errs.push(
                    VerifyError::at(plan, i, Rule::VarRange, "argument out of variable range")
                        .with_var(a),
                );
            } else if !written[a] {
                errs.push(
                    VerifyError::at(plan, i, Rule::UseBeforeDef, "read before any write")
                        .with_var(a),
                );
            }
        }
        if ins.dests.len() != ins.op.n_dests() {
            errs.push(VerifyError::at(
                plan,
                i,
                Rule::DestArity,
                format!("{} destinations, operator writes {}", ins.dests.len(), ins.op.n_dests()),
            ));
        }
        for &d in &ins.dests {
            if d >= plan.nvars {
                errs.push(
                    VerifyError::at(plan, i, Rule::VarRange, "destination out of variable range")
                        .with_var(d),
                );
            } else if written[d] {
                errs.push(
                    VerifyError::at(plan, i, Rule::DoubleAssign, "written a second time")
                        .with_var(d),
                );
            } else {
                written[d] = true;
            }
        }
    }
    for &v in &plan.result_vars {
        if v >= plan.nvars || !written[v] {
            errs.push(
                VerifyError::plan_level(Rule::ResultUnwritten, "result variable never written")
                    .with_var(v),
            );
        }
    }
    if plan.result_names.len() != plan.result_vars.len() {
        errs.push(VerifyError::plan_level(
            Rule::DestArity,
            format!(
                "{} result names for {} result variables",
                plan.result_names.len(),
                plan.result_vars.len()
            ),
        ));
    }
    errs
}

// ---------------------------------------------------------------------------
// Typed verification (shape + type inference)
// ---------------------------------------------------------------------------

/// Operand-kind and type/shape checks. Assumes the plan is structurally
/// clean (run [`verify_structural`] first; [`verify_all`] does).
pub fn verify_typed(plan: &MalPlan, schema: &dyn SchemaSource) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let mut shapes: Vec<Option<Shape>> = vec![None; plan.nvars];

    // Borrow an argument's shape; arguments are known-written here.
    let shape_of = |shapes: &[Option<Shape>], v: VarId| -> Shape {
        shapes.get(v).copied().flatten().unwrap_or(Shape::Bat { dt: None, cands: false })
    };
    let want_bat = |errs: &mut Vec<VerifyError>,
                    shapes: &[Option<Shape>],
                    plan: &MalPlan,
                    i: usize,
                    v: VarId,
                    what: &str|
     -> Option<DataType> {
        match shape_of(shapes, v) {
            Shape::Bat { dt, .. } => dt,
            other => {
                errs.push(
                    VerifyError::at(
                        plan,
                        i,
                        Rule::OperandKind,
                        format!("{what} must be a BAT, found {}", other.describe()),
                    )
                    .with_var(v),
                );
                None
            }
        }
    };

    for (i, ins) in plan.instrs.iter().enumerate() {
        let dests: Vec<Shape> = match &ins.op {
            MalOp::BindStream { stream, attr } => {
                vec![Shape::value_bat(schema.stream_attr_type(stream, attr))]
            }
            MalOp::BindTable { table, attr } => {
                vec![Shape::value_bat(schema.table_attr_type(table, attr))]
            }
            MalOp::Select { input, pred } => {
                let dt = match shape_of(&shapes, *input) {
                    Shape::Bat { cands: true, .. } => {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                "select input must be a value BAT, found a candidate list",
                            )
                            .with_var(*input),
                        );
                        None
                    }
                    Shape::Bat { dt, cands: false } => dt,
                    other => {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!("select input must be a BAT, found {}", other.describe()),
                            )
                            .with_var(*input),
                        );
                        None
                    }
                };
                if let (Some(dt), Some(pv)) = (dt, pred_value_type(pred)) {
                    if !comparable(dt, pv) {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::TypeMismatch,
                                format!("predicate compares {pv} against a {dt} column"),
                            )
                            .with_var(*input),
                        );
                    }
                }
                vec![Shape::cand_list()]
            }
            MalOp::Fetch { cands, values } => {
                let cshape = shape_of(&shapes, *cands);
                match cshape {
                    Shape::Bat { dt, cands: c } => {
                        // Candidate input must be oid-kind: a select/join/
                        // sortperm output or an unknown-typed BAT.
                        if !c && dt.is_some() && dt != Some(DataType::Oid) {
                            errs.push(
                                VerifyError::at(
                                    plan,
                                    i,
                                    Rule::OperandKind,
                                    format!(
                                        "fetch candidates must be oid-kind, found {}",
                                        cshape.describe()
                                    ),
                                )
                                .with_var(*cands),
                            );
                        }
                    }
                    other => {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!(
                                    "fetch candidates must be a BAT, found {}",
                                    other.describe()
                                ),
                            )
                            .with_var(*cands),
                        );
                    }
                }
                match shape_of(&shapes, *values) {
                    // Fetching *through* a candidate list re-maps it: the
                    // output inherits the values side's shape entirely.
                    b @ Shape::Bat { .. } => vec![b],
                    other => {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!("fetch values must be a BAT, found {}", other.describe()),
                            )
                            .with_var(*values),
                        );
                        vec![Shape::Bat { dt: None, cands: false }]
                    }
                }
            }
            MalOp::Join { left, right } => {
                let lt = want_bat(&mut errs, &shapes, plan, i, *left, "join left");
                let rt = want_bat(&mut errs, &shapes, plan, i, *right, "join right");
                if let (Some(a), Some(b)) = (lt, rt) {
                    if !comparable(a, b) {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::TypeMismatch,
                                format!("equality join between {a} and {b} columns"),
                            )
                            .with_var(*right),
                        );
                    }
                }
                vec![Shape::cand_list(), Shape::cand_list()]
            }
            MalOp::Group { keys } => {
                want_bat(&mut errs, &shapes, plan, i, *keys, "group keys");
                vec![Shape::Groups]
            }
            MalOp::GroupKeys { groups, keys } => {
                if shape_of(&shapes, *groups) != Shape::Groups {
                    errs.push(
                        VerifyError::at(
                            plan,
                            i,
                            Rule::OperandKind,
                            format!(
                                "group.keys needs a grouping structure, found {}",
                                shape_of(&shapes, *groups).describe()
                            ),
                        )
                        .with_var(*groups),
                    );
                }
                let dt = want_bat(&mut errs, &shapes, plan, i, *keys, "group.keys source");
                vec![Shape::value_bat(dt)]
            }
            MalOp::GroupedAgg { kind, vals, groups } => {
                if shape_of(&shapes, *groups) != Shape::Groups {
                    errs.push(
                        VerifyError::at(
                            plan,
                            i,
                            Rule::OperandKind,
                            format!(
                                "grouped aggregate needs a grouping structure, found {}",
                                shape_of(&shapes, *groups).describe()
                            ),
                        )
                        .with_var(*groups),
                    );
                }
                let vdt = match vals {
                    Some(v) => want_bat(&mut errs, &shapes, plan, i, *v, "aggregate values"),
                    None => {
                        if *kind != AggKind::Count {
                            errs.push(VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!("grouped {} requires a value column", kind.sql()),
                            ));
                        }
                        None
                    }
                };
                if !agg_input_ok(*kind, vdt) {
                    errs.push(VerifyError::at(
                        plan,
                        i,
                        Rule::TypeMismatch,
                        format!("grouped {} over a {} column", kind.sql(), fmt_dt(vdt)),
                    ));
                }
                vec![Shape::value_bat(agg_result(*kind, vdt))]
            }
            MalOp::GroupAgg { keys, aggs } => {
                let kdt = want_bat(&mut errs, &shapes, plan, i, *keys, "group.agg keys");
                let mut out = vec![Shape::value_bat(kdt)];
                for (kind, vals) in aggs {
                    let vdt = match vals {
                        Some(v) => want_bat(&mut errs, &shapes, plan, i, *v, "aggregate values"),
                        None => {
                            if *kind != AggKind::Count {
                                errs.push(VerifyError::at(
                                    plan,
                                    i,
                                    Rule::OperandKind,
                                    format!("fused {} slot requires a value column", kind.sql()),
                                ));
                            }
                            None
                        }
                    };
                    if !agg_input_ok(*kind, vdt) {
                        errs.push(VerifyError::at(
                            plan,
                            i,
                            Rule::TypeMismatch,
                            format!("fused {} over a {} column", kind.sql(), fmt_dt(vdt)),
                        ));
                    }
                    out.push(Shape::value_bat(agg_result(*kind, vdt)));
                }
                out
            }
            MalOp::ScalarAgg { kind, vals } => {
                let dt = want_bat(&mut errs, &shapes, plan, i, *vals, "scalar aggregate input");
                if !agg_input_ok(*kind, dt) {
                    errs.push(
                        VerifyError::at(
                            plan,
                            i,
                            Rule::TypeMismatch,
                            format!("scalar {} over a {} column", kind.sql(), fmt_dt(dt)),
                        )
                        .with_var(*vals),
                    );
                }
                vec![Shape::Scalar { dt: agg_result(*kind, dt) }]
            }
            MalOp::Concat { parts } => {
                if parts.is_empty() {
                    errs.push(VerifyError::at(plan, i, Rule::DestArity, "concat of zero parts"));
                }
                let mut dt: Option<DataType> = None;
                let mut cands = !parts.is_empty();
                for &p in parts {
                    match shape_of(&shapes, p) {
                        Shape::Bat { dt: pdt, cands: pc } => {
                            cands &= pc;
                            match (dt, pdt) {
                                (Some(a), Some(b)) if a != b => {
                                    errs.push(
                                        VerifyError::at(
                                            plan,
                                            i,
                                            Rule::TypeMismatch,
                                            format!("concat mixes {a} and {b} parts"),
                                        )
                                        .with_var(p),
                                    );
                                }
                                (None, Some(b)) => dt = Some(b),
                                _ => {}
                            }
                        }
                        other => {
                            errs.push(
                                VerifyError::at(
                                    plan,
                                    i,
                                    Rule::OperandKind,
                                    format!(
                                        "concat part must be a BAT, found {}",
                                        other.describe()
                                    ),
                                )
                                .with_var(p),
                            );
                        }
                    }
                }
                vec![Shape::Bat { dt, cands }]
            }
            MalOp::MapArith { left, right, op } => {
                let lt = want_bat(&mut errs, &shapes, plan, i, *left, "arith left");
                let rt = want_bat(&mut errs, &shapes, plan, i, *right, "arith right");
                for (v, dt) in [(*left, lt), (*right, rt)] {
                    if let Some(d) = dt {
                        if !numeric(d) {
                            errs.push(
                                VerifyError::at(
                                    plan,
                                    i,
                                    Rule::TypeMismatch,
                                    format!("arithmetic over a {d} column"),
                                )
                                .with_var(v),
                            );
                        }
                    }
                }
                vec![Shape::value_bat(arith_result(*op, lt, rt))]
            }
            MalOp::MapScalar { input, op, value } => {
                let dt = want_bat(&mut errs, &shapes, plan, i, *input, "arith input");
                if let Some(d) = dt {
                    if !numeric(d) {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::TypeMismatch,
                                format!("arithmetic over a {d} column"),
                            )
                            .with_var(*input),
                        );
                    }
                }
                let vdt = value.data_type();
                if !numeric(vdt) {
                    errs.push(VerifyError::at(
                        plan,
                        i,
                        Rule::TypeMismatch,
                        format!("arithmetic constant of type {vdt}"),
                    ));
                }
                vec![Shape::value_bat(arith_result(*op, dt, Some(vdt)))]
            }
            MalOp::DivScalar { num, den } => {
                for (v, what) in [(*num, "division numerator"), (*den, "division denominator")] {
                    if !matches!(shape_of(&shapes, v), Shape::Scalar { .. }) {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!(
                                    "{what} must be a scalar, found {}",
                                    shape_of(&shapes, v).describe()
                                ),
                            )
                            .with_var(v),
                        );
                    }
                }
                vec![Shape::Scalar { dt: Some(DataType::Float) }]
            }
            MalOp::Sort { input, .. } | MalOp::Distinct { input } | MalOp::Slice { input, .. } => {
                match shape_of(&shapes, *input) {
                    b @ Shape::Bat { .. } => vec![b],
                    other => {
                        errs.push(
                            VerifyError::at(
                                plan,
                                i,
                                Rule::OperandKind,
                                format!(
                                    "{} input must be a BAT, found {}",
                                    ins.op.name(),
                                    other.describe()
                                ),
                            )
                            .with_var(*input),
                        );
                        vec![Shape::Bat { dt: None, cands: false }]
                    }
                }
            }
            MalOp::SortPerm { input, .. } => {
                want_bat(&mut errs, &shapes, plan, i, *input, "sortperm input");
                vec![Shape::cand_list()]
            }
        };
        for (&d, s) in ins.dests.iter().zip(dests) {
            if let Some(slot) = shapes.get_mut(d) {
                *slot = Some(s);
            }
        }
    }

    // Result variables must be presentable: BATs or scalars, not groupings.
    for (name, &v) in plan.result_names.iter().zip(&plan.result_vars) {
        if shapes.get(v).copied().flatten() == Some(Shape::Groups) {
            errs.push(
                VerifyError::plan_level(
                    Rule::OperandKind,
                    format!("result column {name} is a grouping structure"),
                )
                .with_var(v),
            );
        }
    }
    errs
}

/// The value type a predicate compares against, when uniform.
fn pred_value_type(pred: &Predicate) -> Option<DataType> {
    match pred {
        Predicate::Cmp(_, v) => Some(v.data_type()),
        Predicate::Range { lo, hi, .. } => {
            let (a, b) = (lo.data_type(), hi.data_type());
            // Mixed int/float bounds still type-check against numeric
            // columns; report the "wider" side.
            if a == b {
                Some(a)
            } else if numeric(a) && numeric(b) {
                Some(DataType::Float)
            } else {
                Some(a)
            }
        }
        Predicate::And(a, b) => pred_value_type(a).or_else(|| pred_value_type(b)),
        Predicate::True => None,
    }
}

fn arith_result(op: ArithOp, l: Option<DataType>, r: Option<DataType>) -> Option<DataType> {
    if op == ArithOp::Div {
        return Some(DataType::Float);
    }
    match (l, r) {
        (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
        (Some(a), Some(b)) if numeric(a) && numeric(b) => Some(DataType::Float),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Incremental-safety lints
// ---------------------------------------------------------------------------

/// Lint the grouping chains of a plan for *incremental safety*: a
/// standalone `Group` whose chain is not closed cannot be fused by
/// [`crate::optimize::fuse_group_agg`] and therefore cannot cross the
/// incremental rewriter's merge frontier. Open chains still execute in
/// one-shot/re-evaluation mode — these are lints, not structural errors.
///
/// A chain is *closed* when the `Groups` variable is read only by its own
/// `GroupKeys`/`GroupedAgg` members, is not itself a result variable,
/// and has at most one `GroupKeys` materializing the grouped column.
pub fn lint_incremental(plan: &MalPlan) -> Vec<VerifyError> {
    let mut lints = Vec::new();
    for (gi, gins) in plan.instrs.iter().enumerate() {
        let MalOp::Group { keys } = &gins.op else { continue };
        let gvar = gins.dests[0];
        if plan.result_vars.contains(&gvar) {
            lints.push(
                VerifyError::at(
                    plan,
                    gi,
                    Rule::OpenGroupChain,
                    "grouping structure is a result variable",
                )
                .with_var(gvar),
            );
            continue;
        }
        let mut n_groupkeys = 0usize;
        for (ri, rins) in plan.instrs.iter().enumerate() {
            if !rins.op.args().contains(&gvar) {
                continue;
            }
            match &rins.op {
                MalOp::GroupKeys { groups, keys: k2 } if *groups == gvar => {
                    n_groupkeys += 1;
                    if k2 != keys {
                        lints.push(
                            VerifyError::at(
                                plan,
                                ri,
                                Rule::OpenGroupChain,
                                "group.keys materializes a different column than was grouped",
                            )
                            .with_var(*k2),
                        );
                    }
                    if n_groupkeys > 1 {
                        lints.push(
                            VerifyError::at(
                                plan,
                                ri,
                                Rule::OpenGroupChain,
                                "second group.keys on one grouping is ambiguous",
                            )
                            .with_var(gvar),
                        );
                    }
                }
                MalOp::GroupedAgg { groups, .. } if *groups == gvar => {}
                _ => {
                    lints.push(
                        VerifyError::at(
                            plan,
                            ri,
                            Rule::OpenGroupChain,
                            format!("{} is a foreign consumer of a grouping", rins.op.name()),
                        )
                        .with_var(gvar),
                    );
                }
            }
        }
    }
    lints
}

/// Whether one MAL node may take the partitioned `kernel::par` execution
/// path at partition fan-out > 1, or always runs the sequential kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParSafety {
    /// Dispatches to `kernel::par` (select / hashjoin / grouped_agg_multi).
    Partitionable,
    /// Always runs the sequential kernel path.
    Sequential,
    /// No kernel work: pure binding against the execution context.
    Bind,
}

/// Classify every instruction of a plan by partition safety — which nodes
/// the executor may fan out across `kernel::par` partitions. Mirrors the
/// dispatch in [`crate::exec::eval_op`]; the lint binary reports it and
/// tests pin it so a new parallel entry point cannot be wired in silently
/// without the verifier knowing.
pub fn partition_safety(plan: &MalPlan) -> Vec<ParSafety> {
    plan.instrs
        .iter()
        .map(|ins| match ins.op {
            MalOp::BindStream { .. } | MalOp::BindTable { .. } => ParSafety::Bind,
            MalOp::Select { .. } | MalOp::Join { .. } | MalOp::GroupAgg { .. } => {
                ParSafety::Partitionable
            }
            _ => ParSafety::Sequential,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Full verification: structural rules first, then (only when structurally
/// clean, so shape inference can trust the SSA form) operand-kind and type
/// checks. Returns every diagnostic found.
pub fn verify_all(plan: &MalPlan, schema: &dyn SchemaSource) -> Vec<VerifyError> {
    let errs = verify_structural(plan);
    if !errs.is_empty() {
        return errs;
    }
    verify_typed(plan, schema)
}

/// Schema-less verification returning the first diagnostic as a
/// [`PlanError::Verify`]. The standard pass-boundary check.
pub fn verify(plan: &MalPlan) -> crate::Result<()> {
    match verify_all(plan, &NoSchema).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(PlanError::Verify(Box::new(e))),
    }
}

/// Is pass-boundary verification enabled? Always under
/// `debug_assertions`; in release builds when `DATACELL_VERIFY` is set to
/// `1`/`true`/`on`.
pub fn enabled() -> bool {
    cfg!(debug_assertions) || env_enabled()
}

/// The `DATACELL_VERIFY` environment override alone (release-build gate).
pub fn env_enabled() -> bool {
    matches!(
        std::env::var("DATACELL_VERIFY").ok().as_deref().map(str::trim),
        Some("1" | "true" | "on" | "yes")
    )
}

/// Differential pass validation: run a MAL→MAL pass with the verifier
/// asserting cleanliness on both sides of the boundary. When verification
/// is disabled ([`enabled`]), the pass runs unchecked at full speed.
///
/// A dirty *input* means the bug is upstream of `name`; a dirty *output*
/// convicts the pass itself — the returned diagnostic carries the pass
/// name, the op index and the offending variable either way.
pub fn checked_pass<F>(name: &str, plan: &MalPlan, pass: F) -> crate::Result<MalPlan>
where
    F: FnOnce(&MalPlan) -> MalPlan,
{
    if !enabled() {
        return Ok(pass(plan));
    }
    if let Some(e) = verify_all(plan, &NoSchema).into_iter().next() {
        return Err(PlanError::Verify(Box::new(e.in_pass(&format!("{name} (input)")))));
    }
    let out = pass(plan);
    if let Some(e) = verify_all(&out, &NoSchema).into_iter().next() {
        return Err(PlanError::Verify(Box::new(e.in_pass(name))));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mal::{Instr, MalBuilder};

    fn bind(b: &mut MalBuilder, attr: &str) -> VarId {
        b.emit(MalOp::BindStream { stream: "s".into(), attr: attr.into() })
    }

    #[test]
    fn clean_plan_verifies() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(10) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
        let plan = b.finish(vec!["s".into()], vec![s]);
        assert!(verify_all(&plan, &NoSchema).is_empty());
        verify(&plan).unwrap();
    }

    #[test]
    fn select_over_candidate_list_is_operand_kind_error() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(10) });
        let c2 = b.emit(MalOp::Select { input: c, pred: Predicate::gt(0) });
        let plan = b.finish(vec!["c".into()], vec![c2]);
        let errs = verify_all(&plan, &NoSchema);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, Rule::OperandKind);
        assert_eq!(errs[0].instr, Some(2));
        assert_eq!(errs[0].var, Some(c));
    }

    #[test]
    fn schema_types_flow_through_select_fetch() {
        let schema =
            SchemaOverlay::new(&NoSchema).with_stream("s", vec![("x".into(), DataType::Str)]);
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(10) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x });
        let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
        let plan = b.finish(vec!["s".into()], vec![s]);
        // int predicate against a str column.
        let errs = verify_all(&plan, &schema);
        assert!(
            errs.iter().any(|e| e.rule == Rule::TypeMismatch && e.instr == Some(1)),
            "{errs:?}"
        );
    }

    #[test]
    fn arith_over_strings_flagged() {
        let schema = SchemaOverlay::new(&NoSchema)
            .with_stream("s", vec![("x".into(), DataType::Str), ("y".into(), DataType::Int)]);
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let y = bind(&mut b, "y");
        let m = b.emit(MalOp::MapArith { left: x, right: y, op: ArithOp::Add });
        let plan = b.finish(vec!["m".into()], vec![m]);
        let errs = verify_all(&plan, &schema);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, Rule::TypeMismatch);
        assert_eq!(errs[0].var, Some(x));
    }

    #[test]
    fn div_scalar_wants_scalars() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let d = b.emit(MalOp::DivScalar { num: x, den: x });
        let plan = b.finish(vec!["d".into()], vec![d]);
        let errs = verify_all(&plan, &NoSchema);
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.rule == Rule::OperandKind));
    }

    #[test]
    fn grouped_min_without_values_rejected() {
        let mut b = MalBuilder::new();
        let k = bind(&mut b, "k");
        let g = b.emit(MalOp::Group { keys: k });
        let m = b.emit(MalOp::GroupedAgg { kind: AggKind::Min, vals: None, groups: g });
        let plan = b.finish(vec!["m".into()], vec![m]);
        let errs = verify_all(&plan, &NoSchema);
        assert!(errs.iter().any(|e| e.rule == Rule::OperandKind && e.instr == Some(2)));
    }

    #[test]
    fn structural_errors_win_over_type_inference() {
        // Read-before-write: typed checks must not run (shape env would
        // be incoherent), and the structural diagnostic is precise.
        let plan = MalPlan {
            instrs: vec![Instr { dests: vec![0], op: MalOp::Distinct { input: 1 } }],
            result_names: vec![],
            result_vars: vec![],
            nvars: 2,
            streams: vec![],
        };
        let errs = verify_all(&plan, &NoSchema);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, Rule::UseBeforeDef);
        assert_eq!(errs[0].var, Some(1));
        assert_eq!(errs[0].instr, Some(0));
    }

    #[test]
    fn open_group_chain_lints() {
        // Sort consumes the grouping structure directly: foreign consumer.
        let mut b = MalBuilder::new();
        let k = bind(&mut b, "k");
        let g = b.emit(MalOp::Group { keys: k });
        let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
        let plan = b.finish(vec!["k".into()], vec![gk]);
        assert!(lint_incremental(&plan).is_empty());

        // Grouping as result var.
        let mut plan2 = plan.clone();
        plan2.result_vars = vec![g];
        let lints = lint_incremental(&plan2);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].rule, Rule::OpenGroupChain);
        assert_eq!(lints[0].instr, Some(1));
    }

    #[test]
    fn partition_safety_classification() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(1) });
        let v = b.emit(MalOp::Fetch { cands: c, values: x });
        let (kd, ads) = b.emit_group_agg(v, vec![(AggKind::Count, None)]);
        let plan = b.finish(vec!["k".into(), "n".into()], vec![kd, ads[0]]);
        assert_eq!(
            partition_safety(&plan),
            vec![
                ParSafety::Bind,
                ParSafety::Partitionable,
                ParSafety::Sequential,
                ParSafety::Partitionable
            ]
        );
    }

    #[test]
    fn checked_pass_catches_a_corrupting_pass() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let plan = b.finish(vec!["x".into()], vec![x]);
        // Identity pass: clean.
        assert!(checked_pass("identity", &plan, Clone::clone).is_ok());
        // A "pass" that corrupts the program by dropping the only write.
        let res = checked_pass("drop-writes", &plan, |p| {
            let mut out = p.clone();
            out.instrs.clear();
            out
        });
        match res {
            Err(PlanError::Verify(e)) => {
                assert_eq!(e.rule, Rule::ResultUnwritten);
                assert_eq!(e.pass.as_deref(), Some("drop-writes"));
            }
            other => panic!("expected a verify error, got {other:?}"),
        }
    }

    #[test]
    fn display_carries_location() {
        let mut b = MalBuilder::new();
        let x = bind(&mut b, "x");
        let c = b.emit(MalOp::Select { input: x, pred: Predicate::gt(10) });
        let c2 = b.emit(MalOp::Select { input: c, pred: Predicate::gt(0) });
        let plan = b.finish(vec!["c".into()], vec![c2]);
        let e = verify_all(&plan, &NoSchema).remove(0);
        let text = e.to_string();
        assert!(text.contains("instr 2"), "{text}");
        assert!(text.contains("algebra.select"), "{text}");
        assert!(text.contains("(X_1)"), "{text}");
        assert!(text.contains("[operand-kind]"), "{text}");
    }
}
