//! # sysx — a specialized tuple-at-a-time stream engine
//!
//! The paper's §4.2 benchmarks DataCell against a *commercial, closed
//! source* stream engine ("Due to license restrictions we refrain from
//! revealing the actual system and we will refer to it as SystemX").
//! This crate is the reproduction's substitute: a faithful implementation
//! of the specialized-DSMS architecture that the paper contrasts against —
//! **operator-level incremental logic with tuple-at-a-time processing**:
//!
//! * every arriving tuple is pushed through the operator pipeline
//!   individually (volcano/push style, no batching);
//! * sliding windows are maintained by per-tuple *insert* and *retract*
//!   calls on stateful operators, the classic design of stream joins and
//!   sliding aggregates (Kang et al. ICDE'03, Ghanem et al. TKDE'07 — the
//!   paper's refs [25, 19]);
//! * the join is a symmetric hash join with per-tuple window eviction;
//! * `max`/`min` keep retractable multisets, `sum`/`count`/`avg` keep
//!   running scalars, grouped aggregates keep per-group state.
//!
//! This preserves exactly the trade-off the paper measures in Fig. 9: the
//! per-tuple bookkeeping has low fixed costs (wins for tiny windows) but
//! cannot amortize work over batches (loses at scale to DataCell's bulk
//! columnar processing).

pub mod aggregate;
pub mod engine;
pub mod join;
pub mod multiset;
pub mod pipeline;

pub use aggregate::{GroupedSumState, RetractableAgg};
pub use engine::{QuerySpec, SysxEngine, SysxResult};
pub use join::SymmetricHashJoin;
pub use multiset::Multiset;
pub use pipeline::{EvTuple, Event, FilterOp, Operator, Pipeline, WindowManager};
