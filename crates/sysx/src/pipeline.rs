//! The event-driven operator pipeline — the architecture of a specialized
//! tuple-at-a-time DSMS.
//!
//! The point of the paper's §4.2 comparison is *architectural*: specialized
//! stream engines of the DataCell era (Aurora/Borealis, STREAM, and the
//! commercial "SystemX") process **one tuple at a time**, routed as an
//! event through a graph of operators connected by queues, under a
//! per-tuple scheduler; window expiry flows through the same graph as
//! *negative tuples* (retraction events — Ghanem et al., the paper's ref
//! \[19\]). Every tuple therefore pays: an event allocation, queue pushes and
//! pops at each hop, dynamic dispatch into each operator, and a scheduler
//! decision. Those per-tuple costs are exactly what DataCell's batch
//! processing amortizes away ("we amortize the continuous query processing
//! costs over a large number of tuples as opposed to a single one").
//!
//! This module implements that architecture honestly: boxed events,
//! per-operator input queues, trait-object operators, a round-robin
//! one-event-per-dispatch scheduler.

use std::collections::VecDeque;

/// Which input stream a tuple belongs to (join pipelines have two).
pub type StreamId = u8;

/// A stream tuple as it travels the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvTuple {
    /// Source stream.
    pub stream: StreamId,
    /// First attribute (join key / filter+group attribute).
    pub a: i64,
    /// Second attribute (aggregated payload).
    pub b: i64,
}

/// An event: the unit of work of a tuple-at-a-time engine.
///
/// Events are heap-allocated (`Box<Event>` in the queues) on purpose: real
/// DSMS implementations allocate an event/tuple object per arrival, and
/// that allocation is part of the per-tuple cost being modelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A tuple entered the window.
    Insert(EvTuple),
    /// A tuple expired from the window (negative tuple).
    Retract(EvTuple),
    /// Punctuation: a window boundary — sinks snapshot their state.
    Flush,
}

/// A pipeline operator. One `process` call handles exactly one event —
/// there is no batch interface, faithfully to the architecture.
pub trait Operator {
    /// Handle one event, pushing any outputs for the next operator.
    fn process(&mut self, ev: Box<Event>, out: &mut VecDeque<Box<Event>>);
}

/// The operator chain plus its inter-operator queues and the scheduler.
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
    /// `queues[i]` feeds `ops[i]`; the last queue is the pipeline output.
    queues: Vec<VecDeque<Box<Event>>>,
    /// Events dispatched (scheduler work counter).
    dispatched: u64,
}

impl Pipeline {
    /// Build a pipeline from an operator chain.
    pub fn new(ops: Vec<Box<dyn Operator>>) -> Pipeline {
        let nq = ops.len() + 1;
        Pipeline { ops, queues: (0..nq).map(|_| VecDeque::new()).collect(), dispatched: 0 }
    }

    /// Inject one event at the head of the pipeline and run the scheduler
    /// until all queues are drained (the steady-state regime of a stream
    /// engine keeping up with its input).
    pub fn push(&mut self, ev: Event) {
        self.queues[0].push_back(Box::new(ev));
        self.run_until_drained();
    }

    /// Round-robin scheduler: visit operators in order, processing **one
    /// event per visit** — the per-tuple scheduling decision of a DSMS.
    fn run_until_drained(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.ops.len() {
                if let Some(ev) = self.queues[i].pop_front() {
                    self.dispatched += 1;
                    // Split borrow: operator i reads queue i, writes i+1.
                    let (_, rest) = self.queues.split_at_mut(i + 1);
                    self.ops[i].process(ev, &mut rest[0]);
                    moved = true;
                }
            }
            if !moved {
                return;
            }
        }
    }

    /// Drain the pipeline's output queue.
    pub fn take_output(&mut self) -> Vec<Box<Event>> {
        self.queues.last_mut().expect("output queue").drain(..).collect()
    }

    /// Scheduler dispatch count (events processed across all operators).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

/// Window manager: turns raw arrivals into Insert + (later) Retract
/// events for a count-based sliding window over each stream, and emits
/// `Flush` punctuation at window boundaries.
pub struct WindowManager {
    window: usize,
    step: usize,
    /// Live tuples per stream (for retraction generation).
    live: [VecDeque<EvTuple>; 2],
    consumed: [usize; 2],
    emitted: usize,
    two_streams: bool,
    /// Landmark windows never retract.
    landmark: bool,
}

impl WindowManager {
    /// Count-based sliding window manager.
    pub fn new(window: usize, step: usize, two_streams: bool, landmark: bool) -> WindowManager {
        WindowManager {
            window,
            step,
            live: [VecDeque::new(), VecDeque::new()],
            consumed: [0, 0],
            emitted: 0,
            two_streams,
            landmark,
        }
    }

    fn boundary_reached(&self) -> bool {
        if self.landmark {
            let c = self.consumed[0];
            return c > 0 && c == (self.emitted + 1) * self.step;
        }
        let need = self.window + self.emitted * self.step;
        if self.two_streams {
            self.consumed[0] >= need && self.consumed[1] >= need
        } else {
            self.consumed[0] >= need
        }
    }
}

impl Operator for WindowManager {
    fn process(&mut self, ev: Box<Event>, out: &mut VecDeque<Box<Event>>) {
        match *ev {
            Event::Insert(t) => {
                let s = t.stream as usize;
                self.consumed[s] += 1;
                if !self.landmark {
                    self.live[s].push_back(t);
                    // Expiry: the window holds the last `window` tuples.
                    if self.live[s].len() > self.window {
                        let old = self.live[s].pop_front().expect("non-empty");
                        out.push_back(Box::new(Event::Retract(old)));
                    }
                }
                out.push_back(Box::new(Event::Insert(t)));
                if self.boundary_reached() {
                    self.emitted += 1;
                    out.push_back(Box::new(Event::Flush));
                }
            }
            // Punctuation and retractions pass through.
            other => out.push_back(Box::new(other)),
        }
    }
}

/// Per-tuple selection operator.
pub struct FilterOp {
    /// Predicate threshold: keep tuples with `a > threshold`.
    pub threshold: i64,
}

impl Operator for FilterOp {
    fn process(&mut self, ev: Box<Event>, out: &mut VecDeque<Box<Event>>) {
        match *ev {
            Event::Insert(t) if t.a <= self.threshold => {}
            Event::Retract(t) if t.a <= self.threshold => {}
            other => out.push_back(Box::new(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(stream: StreamId, a: i64, b: i64) -> EvTuple {
        EvTuple { stream, a, b }
    }

    /// An operator that counts inserts and forwards everything.
    struct Counter {
        seen: u64,
    }

    impl Operator for Counter {
        fn process(&mut self, ev: Box<Event>, out: &mut VecDeque<Box<Event>>) {
            if matches!(*ev, Event::Insert(_)) {
                self.seen += 1;
            }
            out.push_back(ev);
        }
    }

    #[test]
    fn pipeline_routes_events_through_all_operators() {
        let mut p =
            Pipeline::new(vec![Box::new(Counter { seen: 0 }), Box::new(Counter { seen: 0 })]);
        p.push(Event::Insert(t(0, 1, 2)));
        p.push(Event::Flush);
        let out = p.take_output();
        assert_eq!(out.len(), 2);
        // 2 events × 2 operators = 4 dispatches.
        assert_eq!(p.dispatched(), 4);
    }

    #[test]
    fn window_manager_emits_retractions_and_flushes() {
        let mut p = Pipeline::new(vec![Box::new(WindowManager::new(2, 1, false, false))]);
        p.push(Event::Insert(t(0, 1, 0)));
        p.push(Event::Insert(t(0, 2, 0)));
        // Window of 2 complete -> flush; no retraction yet.
        let out = p.take_output();
        let flushes = out.iter().filter(|e| matches!(***e, Event::Flush)).count();
        let retracts = out.iter().filter(|e| matches!(***e, Event::Retract(_))).count();
        assert_eq!(flushes, 1);
        assert_eq!(retracts, 0);
        // Third tuple: first tuple retracts, another boundary.
        p.push(Event::Insert(t(0, 3, 0)));
        let out = p.take_output();
        assert!(out.iter().any(|e| matches!(**e, Event::Retract(x) if x.a == 1)));
        assert!(out.iter().any(|e| matches!(**e, Event::Flush)));
    }

    #[test]
    fn landmark_window_never_retracts() {
        let mut p = Pipeline::new(vec![Box::new(WindowManager::new(usize::MAX, 2, false, true))]);
        for i in 0..6 {
            p.push(Event::Insert(t(0, i, 0)));
        }
        let out = p.take_output();
        let retracts = out.iter().filter(|e| matches!(***e, Event::Retract(_))).count();
        let flushes = out.iter().filter(|e| matches!(***e, Event::Flush)).count();
        assert_eq!(retracts, 0);
        assert_eq!(flushes, 3); // every 2 tuples
    }

    #[test]
    fn filter_drops_inserts_and_matching_retractions() {
        let mut p = Pipeline::new(vec![Box::new(FilterOp { threshold: 5 })]);
        p.push(Event::Insert(t(0, 3, 0))); // dropped
        p.push(Event::Insert(t(0, 7, 0))); // kept
        p.push(Event::Retract(t(0, 3, 0))); // dropped (never passed)
        p.push(Event::Retract(t(0, 7, 0))); // kept
        p.push(Event::Flush);
        let out = p.take_output();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn two_stream_boundary_waits_for_both() {
        let mut wm = WindowManager::new(2, 1, true, false);
        let mut out = VecDeque::new();
        wm.process(Box::new(Event::Insert(t(0, 1, 0))), &mut out);
        wm.process(Box::new(Event::Insert(t(0, 2, 0))), &mut out);
        // Left has a full window, right has nothing: no flush yet.
        assert!(!out.iter().any(|e| matches!(**e, Event::Flush)));
        wm.process(Box::new(Event::Insert(t(1, 1, 0))), &mut out);
        wm.process(Box::new(Event::Insert(t(1, 2, 0))), &mut out);
        assert!(out.iter().any(|e| matches!(**e, Event::Flush)));
    }
}
