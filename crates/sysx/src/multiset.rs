//! A retractable multiset over `i64` with O(log n) min/max.
//!
//! Sliding `max`/`min` cannot be maintained with a single scalar — when the
//! current extremum expires, the next one must be found. Specialized stream
//! engines keep an ordered multiset of the window's values; this is that
//! structure (a counted `BTreeMap`, the textbook choice).

use std::collections::BTreeMap;

/// Counted ordered multiset.
#[derive(Debug, Default, Clone)]
pub struct Multiset {
    counts: BTreeMap<i64, usize>,
    len: usize,
}

impl Multiset {
    /// Empty multiset.
    pub fn new() -> Multiset {
        Multiset::default()
    }

    /// Number of elements (with multiplicity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert one occurrence.
    pub fn insert(&mut self, v: i64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.len += 1;
    }

    /// Remove one occurrence. Returns false (and changes nothing) when the
    /// value is not present — a retraction bug in the caller.
    pub fn remove(&mut self, v: i64) -> bool {
        match self.counts.get_mut(&v) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(&v);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Current maximum.
    pub fn max(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// Current minimum.
    pub fn min(&self) -> Option<i64> {
        self.counts.keys().next().copied()
    }

    /// Multiplicity of a value.
    pub fn count(&self, v: i64) -> usize {
        self.counts.get(&v).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_minmax() {
        let mut m = Multiset::new();
        assert!(m.is_empty());
        assert_eq!(m.max(), None);
        m.insert(3);
        m.insert(1);
        m.insert(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(3), 2);
        assert_eq!(m.max(), Some(3));
        assert_eq!(m.min(), Some(1));
        assert!(m.remove(3));
        assert_eq!(m.max(), Some(3)); // one occurrence left
        assert!(m.remove(3));
        assert_eq!(m.max(), Some(1));
        assert!(!m.remove(42)); // retraction of absent value reported
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn interleaved_window_slide() {
        // Simulates a sliding window: insert new, retract expired.
        let mut m = Multiset::new();
        let vals = [5, 9, 2, 9, 1, 7];
        // window of 3
        for i in 0..vals.len() {
            m.insert(vals[i]);
            if i >= 3 {
                m.remove(vals[i - 3]);
            }
            if i >= 2 {
                let lo = i.saturating_sub(2);
                let expected = *vals[lo..=i].iter().max().unwrap();
                assert_eq!(m.max(), Some(expected));
            }
        }
    }
}
