//! The SystemX query engine: per-tuple pipelines for the paper's three
//! evaluation queries, assembled from the event-driven operator
//! architecture in [`crate::pipeline`].
//!
//! Every arriving tuple becomes a boxed [`Event`]
//! that traverses window-manager → (filter/join) → aggregate-sink through
//! per-operator queues under a per-event scheduler; expirations travel as
//! negative tuples. Results are snapshot at `Flush` punctuations (window
//! boundaries).

use crate::aggregate::{GroupedSumState, RetractableAgg};
use crate::join::{JTuple, SymmetricHashJoin};
use crate::pipeline::{EvTuple, Event, FilterOp, Operator, Pipeline, WindowManager};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Which continuous query the engine instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// Q1: `SELECT x1, sum(x2) FROM s WHERE x1 > threshold GROUP BY x1`
    /// over a count-based sliding window.
    FilterGroupSum {
        /// The selection threshold.
        threshold: i64,
    },
    /// Q2: `SELECT max(s1.v), avg(s2.v) FROM s1, s2 WHERE s1.k = s2.k`
    /// over equal count-based sliding windows on both streams.
    JoinMaxAvg,
    /// Q3: `SELECT max(x1), sum(x2) FROM s WHERE x1 > threshold` over a
    /// landmark window (tuples never expire).
    LandmarkFilterMaxSum {
        /// The selection threshold.
        threshold: i64,
    },
}

/// One emitted window result.
#[derive(Debug, Clone, PartialEq)]
pub enum SysxResult {
    /// Two scalar aggregates (Q2: max/avg; Q3: max/sum). `None` = empty.
    Scalars(Option<f64>, Option<f64>),
    /// Grouped rows `(key, sum)`, sorted by key (Q1).
    Groups(Vec<(i64, i64)>),
}

/// Shared sink state (results + emission counter).
#[derive(Debug, Default)]
struct SinkState {
    results: Vec<SysxResult>,
    emitted: usize,
}

type SharedSink = Rc<RefCell<SinkState>>;

/// Symmetric hash join operator: joins Insert/Retract events of both
/// streams on attribute `a`, emitting pair events whose `a` is the left
/// payload and `b` the right payload.
struct JoinOp {
    join: SymmetricHashJoin,
}

impl Operator for JoinOp {
    fn process(&mut self, ev: Box<Event>, out: &mut VecDeque<Box<Event>>) {
        match *ev {
            Event::Insert(t) => {
                let jt = JTuple { key: t.a, val: t.b };
                if t.stream == 0 {
                    for r in self.join.insert_left(jt) {
                        out.push_back(Box::new(Event::Insert(EvTuple { stream: 0, a: t.b, b: r })));
                    }
                } else {
                    for l in self.join.insert_right(jt) {
                        out.push_back(Box::new(Event::Insert(EvTuple { stream: 0, a: l, b: t.b })));
                    }
                }
            }
            Event::Retract(t) => {
                let jt = JTuple { key: t.a, val: t.b };
                if t.stream == 0 {
                    for r in self.join.evict_left(jt) {
                        out.push_back(Box::new(Event::Retract(EvTuple {
                            stream: 0,
                            a: t.b,
                            b: r,
                        })));
                    }
                } else {
                    for l in self.join.evict_right(jt) {
                        out.push_back(Box::new(Event::Retract(EvTuple {
                            stream: 0,
                            a: l,
                            b: t.b,
                        })));
                    }
                }
            }
            Event::Flush => out.push_back(ev),
        }
    }
}

/// What the terminal aggregate sink computes at each flush.
enum SinkKind {
    /// Q2: `(max(a), avg(b))` over live join pairs.
    MaxAvg,
    /// Q3: `(max(a), sum(b))` cumulative.
    MaxSum,
    /// Q1: per-`a` sums of `b`.
    GroupSum,
}

/// Terminal operator: retractable aggregate state + result snapshots.
struct AggSink {
    kind: SinkKind,
    agg_a: RetractableAgg,
    agg_b: RetractableAgg,
    groups: GroupedSumState,
    sink: SharedSink,
}

impl AggSink {
    fn new(kind: SinkKind, sink: SharedSink) -> AggSink {
        AggSink {
            kind,
            agg_a: RetractableAgg::new(),
            agg_b: RetractableAgg::new(),
            groups: GroupedSumState::new(),
            sink,
        }
    }
}

impl Operator for AggSink {
    fn process(&mut self, ev: Box<Event>, _out: &mut VecDeque<Box<Event>>) {
        match *ev {
            Event::Insert(t) => match self.kind {
                SinkKind::GroupSum => self.groups.insert(t.a, t.b),
                _ => {
                    self.agg_a.insert(t.a);
                    self.agg_b.insert(t.b);
                }
            },
            Event::Retract(t) => match self.kind {
                SinkKind::GroupSum => {
                    self.groups.retract(t.a, t.b);
                }
                _ => {
                    self.agg_a.retract(t.a);
                    self.agg_b.retract(t.b);
                }
            },
            Event::Flush => {
                let result = match self.kind {
                    SinkKind::GroupSum => SysxResult::Groups(self.groups.rows()),
                    SinkKind::MaxAvg => {
                        SysxResult::Scalars(self.agg_a.max().map(|v| v as f64), self.agg_b.avg())
                    }
                    SinkKind::MaxSum => SysxResult::Scalars(
                        self.agg_a.max().map(|v| v as f64),
                        self.agg_b.sum().map(|v| v as f64),
                    ),
                };
                let mut s = self.sink.borrow_mut();
                s.results.push(result);
                s.emitted += 1;
            }
        }
    }
}

/// A tuple-at-a-time stream engine instance running one query.
pub struct SysxEngine {
    spec: QuerySpec,
    pipeline: Pipeline,
    sink: SharedSink,
    consumed: usize,
}

impl SysxEngine {
    /// Create an engine for `spec` with a count-based window of `window`
    /// tuples sliding by `step` (for the landmark query, `step` is the
    /// emission cadence).
    pub fn new(spec: QuerySpec, window: usize, step: usize) -> SysxEngine {
        assert!(window > 0 && step > 0, "window and step must be positive");
        let sink: SharedSink = Rc::new(RefCell::new(SinkState::default()));
        let ops: Vec<Box<dyn Operator>> = match spec {
            QuerySpec::FilterGroupSum { threshold } => vec![
                Box::new(WindowManager::new(window, step, false, false)),
                Box::new(FilterOp { threshold }),
                Box::new(AggSink::new(SinkKind::GroupSum, sink.clone())),
            ],
            QuerySpec::JoinMaxAvg => vec![
                Box::new(WindowManager::new(window, step, true, false)),
                Box::new(JoinOp { join: SymmetricHashJoin::new() }),
                Box::new(AggSink::new(SinkKind::MaxAvg, sink.clone())),
            ],
            QuerySpec::LandmarkFilterMaxSum { threshold } => vec![
                Box::new(WindowManager::new(window, step, false, true)),
                Box::new(FilterOp { threshold }),
                Box::new(AggSink::new(SinkKind::MaxSum, sink.clone())),
            ],
        };
        SysxEngine { spec, pipeline: Pipeline::new(ops), sink, consumed: 0 }
    }

    /// Push one tuple of a single-stream query (Q1/Q3).
    pub fn push(&mut self, x1: i64, x2: i64) {
        assert!(
            !matches!(self.spec, QuerySpec::JoinMaxAvg),
            "push() on a two-stream query; use push_left/push_right"
        );
        self.consumed += 1;
        self.pipeline.push(Event::Insert(EvTuple { stream: 0, a: x1, b: x2 }));
    }

    /// Push one left-stream tuple of the join query (key, payload).
    pub fn push_left(&mut self, key: i64, val: i64) {
        assert!(
            matches!(self.spec, QuerySpec::JoinMaxAvg),
            "push_left/push_right on a single-stream query"
        );
        self.consumed += 1;
        self.pipeline.push(Event::Insert(EvTuple { stream: 0, a: key, b: val }));
    }

    /// Push one right-stream tuple of the join query (key, payload).
    pub fn push_right(&mut self, key: i64, val: i64) {
        assert!(
            matches!(self.spec, QuerySpec::JoinMaxAvg),
            "push_left/push_right on a single-stream query"
        );
        self.pipeline.push(Event::Insert(EvTuple { stream: 1, a: key, b: val }));
    }

    /// Results produced so far (drains).
    pub fn drain_results(&mut self) -> Vec<SysxResult> {
        std::mem::take(&mut self.sink.borrow_mut().results)
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> usize {
        self.sink.borrow().emitted
    }

    /// Tuples consumed (left stream / the only stream).
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Scheduler dispatches so far (diagnostics: per-tuple work count).
    pub fn dispatched(&self) -> u64 {
        self.pipeline.dispatched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_matches_naive_recomputation() {
        let xs: Vec<i64> = vec![3, 7, 1, 9, 7, 2, 8, 7, 4, 9, 1, 8];
        let ys: Vec<i64> = (0..12).collect();
        let (w, s, thr) = (6, 3, 4);
        let mut e = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: thr }, w, s);
        for (&x, &y) in xs.iter().zip(&ys) {
            e.push(x, y);
        }
        let results = e.drain_results();
        assert_eq!(results.len(), 3); // windows end at 6, 9, 12
        for (k, r) in results.iter().enumerate() {
            let lo = k * s;
            let hi = lo + w;
            let mut naive: std::collections::BTreeMap<i64, i64> = Default::default();
            for i in lo..hi {
                if xs[i] > thr {
                    *naive.entry(xs[i]).or_insert(0) += ys[i];
                }
            }
            let expect: Vec<(i64, i64)> = naive.into_iter().collect();
            assert_eq!(r, &SysxResult::Groups(expect), "window {k}");
        }
    }

    #[test]
    fn q2_matches_naive_join() {
        let lk: Vec<i64> = vec![1, 2, 3, 1, 2, 3, 1, 2];
        let lv: Vec<i64> = vec![10, 20, 30, 40, 50, 60, 70, 80];
        let rk: Vec<i64> = vec![3, 1, 2, 9, 1, 3, 2, 1];
        let rv: Vec<i64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let (w, s) = (4, 2);
        let mut e = SysxEngine::new(QuerySpec::JoinMaxAvg, w, s);
        for i in 0..lk.len() {
            e.push_left(lk[i], lv[i]);
            e.push_right(rk[i], rv[i]);
        }
        let results = e.drain_results();
        assert_eq!(results.len(), 3); // windows end at 4, 6, 8
        for (k, r) in results.iter().enumerate() {
            let lo = k * s;
            let hi = lo + w;
            let mut maxv: Option<i64> = None;
            let (mut sum, mut cnt) = (0i64, 0i64);
            for i in lo..hi {
                for j in lo..hi {
                    if lk[i] == rk[j] {
                        maxv = Some(maxv.map_or(lv[i], |m| m.max(lv[i])));
                        sum += rv[j];
                        cnt += 1;
                    }
                }
            }
            let expect = SysxResult::Scalars(
                maxv.map(|v| v as f64),
                (cnt > 0).then(|| sum as f64 / cnt as f64),
            );
            assert_eq!(r, &expect, "window {k}");
        }
    }

    #[test]
    fn q3_landmark_accumulates() {
        let mut e =
            SysxEngine::new(QuerySpec::LandmarkFilterMaxSum { threshold: 0 }, usize::MAX >> 1, 2);
        e.push(3, 10);
        e.push(-1, 99); // filtered out
        e.push(9, 20);
        e.push(5, 30);
        let results = e.drain_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], SysxResult::Scalars(Some(3.0), Some(10.0)));
        assert_eq!(results[1], SysxResult::Scalars(Some(9.0), Some(60.0)));
    }

    #[test]
    fn empty_window_emits_none() {
        let mut e = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: 100 }, 2, 2);
        e.push(1, 1);
        e.push(2, 2);
        assert_eq!(e.drain_results(), vec![SysxResult::Groups(vec![])]);
    }

    #[test]
    #[should_panic(expected = "two-stream")]
    fn push_on_join_panics() {
        let mut e = SysxEngine::new(QuerySpec::JoinMaxAvg, 2, 1);
        e.push(1, 1);
    }

    #[test]
    #[should_panic(expected = "single-stream")]
    fn push_left_on_single_stream_panics() {
        let mut e = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: 0 }, 2, 1);
        e.push_left(1, 1);
    }

    #[test]
    fn drain_is_destructive_and_counters_advance() {
        let mut e = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: 0 }, 1, 1);
        e.push(1, 1);
        assert_eq!(e.drain_results().len(), 1);
        assert!(e.drain_results().is_empty());
        assert_eq!(e.emitted(), 1);
        assert_eq!(e.consumed(), 1);
        assert!(e.dispatched() >= 3, "one event through three operators");
    }

    #[test]
    fn per_event_dispatch_cost_is_visible() {
        // The architectural point: every tuple traverses every operator.
        let mut e = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: -1 }, 4, 2);
        for i in 0..100 {
            e.push(i, i);
        }
        // >= 3 dispatches per tuple (wm, filter, sink) + retractions.
        assert!(e.dispatched() >= 300, "dispatched = {}", e.dispatched());
    }
}
