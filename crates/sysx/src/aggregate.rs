//! Retractable (insert/retract) aggregate state.

use crate::multiset::Multiset;
use std::collections::HashMap;

/// Scalar aggregate state supporting per-tuple insert and retract:
/// running `sum`/`count` plus a multiset for `min`/`max`.
#[derive(Debug, Default, Clone)]
pub struct RetractableAgg {
    sum: i64,
    count: i64,
    extrema: Multiset,
}

impl RetractableAgg {
    /// Fresh, empty state.
    pub fn new() -> RetractableAgg {
        RetractableAgg::default()
    }

    /// Add one value.
    pub fn insert(&mut self, v: i64) {
        self.sum = self.sum.wrapping_add(v);
        self.count += 1;
        self.extrema.insert(v);
    }

    /// Retract one value (window expiry). Returns false on a retraction
    /// of a value that was never inserted.
    pub fn retract(&mut self, v: i64) -> bool {
        if !self.extrema.remove(v) {
            return false;
        }
        self.sum = self.sum.wrapping_sub(v);
        self.count -= 1;
        true
    }

    /// Current sum (`None` when empty — SQL semantics).
    pub fn sum(&self) -> Option<i64> {
        (self.count > 0).then_some(self.sum)
    }

    /// Current count.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Current maximum.
    pub fn max(&self) -> Option<i64> {
        self.extrema.max()
    }

    /// Current minimum.
    pub fn min(&self) -> Option<i64> {
        self.extrema.min()
    }

    /// Current average.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// True when no values are held.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Grouped sum/count state with retraction: per-group running aggregates
/// that drop groups when their count reaches zero.
#[derive(Debug, Default, Clone)]
pub struct GroupedSumState {
    groups: HashMap<i64, (i64, i64)>, // key -> (sum, count)
}

impl GroupedSumState {
    /// Fresh state.
    pub fn new() -> GroupedSumState {
        GroupedSumState::default()
    }

    /// Add `(key, value)`.
    pub fn insert(&mut self, key: i64, v: i64) {
        let e = self.groups.entry(key).or_insert((0, 0));
        e.0 = e.0.wrapping_add(v);
        e.1 += 1;
    }

    /// Retract `(key, value)`. Returns false when the group is unknown.
    pub fn retract(&mut self, key: i64, v: i64) -> bool {
        match self.groups.get_mut(&key) {
            Some(e) => {
                e.0 = e.0.wrapping_sub(v);
                e.1 -= 1;
                if e.1 <= 0 {
                    self.groups.remove(&key);
                }
                true
            }
            None => false,
        }
    }

    /// Number of live groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups are live.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Snapshot of `(key, sum)` rows, sorted by key for determinism.
    pub fn rows(&self) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self.groups.iter().map(|(k, (s, _))| (*k, *s)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_insert_retract_roundtrip() {
        let mut a = RetractableAgg::new();
        assert!(a.is_empty());
        assert_eq!(a.sum(), None);
        a.insert(5);
        a.insert(-2);
        a.insert(9);
        assert_eq!(a.sum(), Some(12));
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(9));
        assert_eq!(a.min(), Some(-2));
        assert_eq!(a.avg(), Some(4.0));
        assert!(a.retract(9));
        assert_eq!(a.max(), Some(5));
        assert_eq!(a.sum(), Some(3));
        assert!(!a.retract(100));
    }

    #[test]
    fn scalar_matches_naive_over_sliding_window() {
        let vals: Vec<i64> = vec![4, 8, 1, 9, 3, 7, 2, 6];
        let w = 4;
        let mut a = RetractableAgg::new();
        for i in 0..vals.len() {
            a.insert(vals[i]);
            if i >= w {
                a.retract(vals[i - w]);
            }
            if i + 1 >= w {
                let window = &vals[i + 1 - w..=i];
                assert_eq!(a.sum(), Some(window.iter().sum()));
                assert_eq!(a.max(), window.iter().max().copied());
                assert_eq!(a.min(), window.iter().min().copied());
            }
        }
    }

    #[test]
    fn grouped_insert_retract() {
        let mut g = GroupedSumState::new();
        g.insert(1, 10);
        g.insert(2, 20);
        g.insert(1, 30);
        assert_eq!(g.rows(), vec![(1, 40), (2, 20)]);
        assert!(g.retract(1, 10));
        assert_eq!(g.rows(), vec![(1, 30), (2, 20)]);
        assert!(g.retract(2, 20));
        assert_eq!(g.len(), 1); // group 2 dropped at count 0
        assert!(!g.retract(9, 1));
        assert!(!g.is_empty());
    }
}
