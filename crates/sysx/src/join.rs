//! Symmetric hash join with per-tuple window eviction.
//!
//! The canonical stream join (the paper's ref \[25\], Kang et al.,
//! "Evaluating Window Joins over Unbounded Streams"): each side keeps a
//! hash table over its live window; an arriving tuple probes the opposite
//! table (emitting result pairs) and inserts into its own; an expiring
//! tuple deletes from its table. Every operation is per tuple.

use std::collections::HashMap;

/// One stored tuple: join key plus payload value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JTuple {
    /// Join key.
    pub key: i64,
    /// Payload (the aggregated attribute).
    pub val: i64,
}

/// A symmetric hash join over two count-based windows.
#[derive(Debug, Default)]
pub struct SymmetricHashJoin {
    left: HashMap<i64, Vec<i64>>, // key -> payloads
    right: HashMap<i64, Vec<i64>>,
    left_len: usize,
    right_len: usize,
}

impl SymmetricHashJoin {
    /// Empty join state.
    pub fn new() -> SymmetricHashJoin {
        SymmetricHashJoin::default()
    }

    /// Live tuples on the left side.
    pub fn left_len(&self) -> usize {
        self.left_len
    }

    /// Live tuples on the right side.
    pub fn right_len(&self) -> usize {
        self.right_len
    }

    /// Insert a left tuple; returns the payloads of all matching right
    /// tuples (the new join pairs' right values).
    pub fn insert_left(&mut self, t: JTuple) -> Vec<i64> {
        let matches = self.right.get(&t.key).cloned().unwrap_or_default();
        self.left.entry(t.key).or_default().push(t.val);
        self.left_len += 1;
        matches
    }

    /// Insert a right tuple; returns the payloads of all matching left
    /// tuples.
    pub fn insert_right(&mut self, t: JTuple) -> Vec<i64> {
        let matches = self.left.get(&t.key).cloned().unwrap_or_default();
        self.right.entry(t.key).or_default().push(t.val);
        self.right_len += 1;
        matches
    }

    /// Evict a left tuple (it expired); returns the matching right
    /// payloads whose join pairs disappear with it.
    pub fn evict_left(&mut self, t: JTuple) -> Vec<i64> {
        remove_one(&mut self.left, t);
        self.left_len -= 1;
        self.right.get(&t.key).cloned().unwrap_or_default()
    }

    /// Evict a right tuple; returns the matching left payloads.
    pub fn evict_right(&mut self, t: JTuple) -> Vec<i64> {
        remove_one(&mut self.right, t);
        self.right_len -= 1;
        self.left.get(&t.key).cloned().unwrap_or_default()
    }
}

fn remove_one(side: &mut HashMap<i64, Vec<i64>>, t: JTuple) {
    if let Some(v) = side.get_mut(&t.key) {
        if let Some(pos) = v.iter().position(|&x| x == t.val) {
            v.swap_remove(pos);
        }
        if v.is_empty() {
            side.remove(&t.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: i64, val: i64) -> JTuple {
        JTuple { key, val }
    }

    #[test]
    fn probe_then_insert_symmetry() {
        let mut j = SymmetricHashJoin::new();
        assert!(j.insert_left(t(1, 10)).is_empty());
        // Right tuple with key 1 matches the stored left tuple.
        assert_eq!(j.insert_right(t(1, 99)), vec![10]);
        // Another left with key 1 matches the stored right tuple.
        assert_eq!(j.insert_left(t(1, 20)), vec![99]);
        assert_eq!(j.left_len(), 2);
        assert_eq!(j.right_len(), 1);
    }

    #[test]
    fn no_match_on_unknown_key() {
        let mut j = SymmetricHashJoin::new();
        j.insert_left(t(1, 10));
        assert!(j.insert_right(t(2, 20)).is_empty());
    }

    #[test]
    fn eviction_removes_pairs() {
        let mut j = SymmetricHashJoin::new();
        j.insert_left(t(7, 1));
        j.insert_right(t(7, 2));
        // Evicting the left tuple reports the right payloads it joined.
        assert_eq!(j.evict_left(t(7, 1)), vec![2]);
        assert_eq!(j.left_len(), 0);
        // New left insert no longer matches the evicted tuple.
        assert_eq!(j.insert_left(t(7, 3)), vec![2]); // right side still live
        assert_eq!(j.evict_right(t(7, 2)), vec![3]);
        assert_eq!(j.right_len(), 0);
    }

    #[test]
    fn duplicate_payloads_evict_one_at_a_time() {
        let mut j = SymmetricHashJoin::new();
        j.insert_left(t(1, 5));
        j.insert_left(t(1, 5));
        assert_eq!(j.insert_right(t(1, 9)).len(), 2);
        j.evict_left(t(1, 5));
        assert_eq!(j.left_len(), 1);
        assert_eq!(j.insert_right(t(1, 8)).len(), 1);
    }
}
