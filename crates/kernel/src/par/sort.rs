//! Run-parallel stable sort with a k-way position merge.
//!
//! The position space `[0, len)` is carved into `P` contiguous balanced
//! runs (the same carve as [`crate::Bat::chunks`]); each run is stably
//! sorted on its own scoped thread with the same per-variant comparators
//! the sequential [`algebra::sort_perm`] uses, then the sorted runs are
//! merged with a k-way scan over the run heads.
//!
//! **Byte-identity argument.** The merge replaces its current best head
//! only on a strict `Less`, scanning runs in ascending index order, so
//! ties resolve to the earliest run — and because runs are contiguous
//! ascending position ranges, the earliest run always holds the globally
//! smallest positions. Within a run, `std`'s stable sort over ascending
//! positions keeps equal keys in position order. Together these reproduce
//! the *exact* sequential stable permutation at every `P`; descending
//! order is the final `.reverse()` of the ascending permutation on both
//! paths, mirroring what `plan::exec` has always done for `desc`. At
//! `P = 1` both entry points dispatch to the literal sequential
//! [`algebra::sort`] / [`algebra::sort_perm`] code.

use super::{stats, ParConfig};
use crate::algebra;
use crate::column::Column;
use crate::{Bat, Result};
use std::cmp::Ordering;

/// Stable sort of the tail over `P` parallel runs; `desc` reverses the
/// ascending result (the same final-reverse semantics the executor's
/// `Sort {desc}` node has always had). Returns a fresh transient BAT.
pub fn sort(b: &Bat, desc: bool, cfg: &ParConfig) -> Result<Bat> {
    let p = cfg.partitions();
    if p <= 1 || b.len() < p {
        stats::record_sort(false);
        let start = datacell_telemetry::timer();
        let sorted = algebra::sort(b)?;
        let out = if desc { reverse_bat(&sorted) } else { sorted };
        stats::record_sort_time(false, start);
        return Ok(out);
    }
    stats::record_sort(true);
    let start = datacell_telemetry::timer();
    let mut perm = par_perm(&b.tail, p);
    if desc {
        perm.reverse();
    }
    let out = Bat::transient(b.tail.gather(&perm));
    stats::record_sort_time(true, start);
    Ok(out)
}

/// The permutation (positions) that sorts the tail, computed over `P`
/// parallel runs; stable, ascending unless `desc`. Byte-identical to
/// `algebra::sort_perm` (+ `reverse()` for `desc`) at every `P`.
pub fn sort_perm(b: &Bat, desc: bool, cfg: &ParConfig) -> Result<Vec<u32>> {
    let p = cfg.partitions();
    if p <= 1 || b.len() < p {
        stats::record_sort(false);
        let start = datacell_telemetry::timer();
        let mut perm = algebra::sort_perm(b)?;
        if desc {
            perm.reverse();
        }
        stats::record_sort_time(false, start);
        return Ok(perm);
    }
    stats::record_sort(true);
    let start = datacell_telemetry::timer();
    let mut perm = par_perm(&b.tail, p);
    if desc {
        perm.reverse();
    }
    stats::record_sort_time(true, start);
    Ok(perm)
}

/// Reverse a BAT's tail into a fresh transient BAT (descending view of an
/// ascending sort). Shared with `plan::exec`'s `Sort {desc}` node.
pub fn reverse_bat(b: &Bat) -> Bat {
    let perm: Vec<u32> = (0..b.len() as u32).rev().collect();
    Bat::transient(b.tail.gather(&perm))
}

/// Dispatch the run-parallel permutation sort per column variant, with
/// the same comparators `algebra::sort_perm` uses sequentially.
fn par_perm(col: &Column, p: usize) -> Vec<u32> {
    let len = col.len();
    match col {
        Column::Int(v) => par_perm_by(len, p, &|i, j| v[i as usize].cmp(&v[j as usize])),
        Column::Float(v) => par_perm_by(len, p, &|i, j| v[i as usize].total_cmp(&v[j as usize])),
        Column::Str(v) => par_perm_by(len, p, &|i, j| v[i as usize].cmp(&v[j as usize])),
        Column::Bool(v) => par_perm_by(len, p, &|i, j| v[i as usize].cmp(&v[j as usize])),
        Column::Oid(v) => par_perm_by(len, p, &|i, j| v[i as usize].cmp(&v[j as usize])),
    }
}

/// Sort `P` contiguous position runs on scoped threads, then k-way merge.
fn par_perm_by<F>(len: usize, p: usize, cmp: &F) -> Vec<u32>
where
    F: Fn(u32, u32) -> Ordering + Sync,
{
    // Same balanced carve as `Bat::chunks`.
    let (base, extra) = (len / p, len % p);
    let mut bounds = Vec::with_capacity(p);
    let mut off = 0usize;
    for i in 0..p {
        let size = base + usize::from(i < extra);
        bounds.push((off, size));
        off += size;
    }
    let runs: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(off, size)| {
                s.spawn(move || {
                    let mut run: Vec<u32> = (off as u32..(off + size) as u32).collect();
                    run.sort_by(|&i, &j| cmp(i, j));
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sort run panicked")).collect()
    });
    let mstart = datacell_telemetry::timer();
    let merged = kway_merge(&runs, cmp);
    stats::record_sort_merge_time(mstart);
    merged
}

/// Merge sorted runs by scanning run heads, replacing the best candidate
/// only on a strict `Less` so ties go to the earliest (lowest-position)
/// run — the stability invariant the module docs lean on.
fn kway_merge<F>(runs: &[Vec<u32>], cmp: &F) -> Vec<u32>
where
    F: Fn(u32, u32) -> Ordering,
{
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.len() {
                continue;
            }
            best = match best {
                None => Some(r),
                Some(b) if cmp(run[heads[r]], runs[b][heads[b]]) == Ordering::Less => Some(r),
                keep => keep,
            };
        }
        let r = best.expect("total accounts for every run element");
        out.push(runs[r][heads[r]]);
        heads[r] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_perm(b: &Bat, desc: bool) -> Vec<u32> {
        let mut perm = algebra::sort_perm(b).unwrap();
        if desc {
            perm.reverse();
        }
        perm
    }

    #[test]
    fn perm_identical_to_sequential_at_every_p() {
        let b = Bat::transient(Column::Int((0..101).map(|i| (i * 37) % 10).collect()));
        for desc in [false, true] {
            let seq = seq_perm(&b, desc);
            for p in [1, 2, 3, 8, 64] {
                let par = sort_perm(&b, desc, &ParConfig::new(p)).unwrap();
                assert_eq!(par, seq, "P={p} desc={desc}");
            }
        }
    }

    #[test]
    fn stability_matches_sequential_on_heavy_duplicates() {
        // Two distinct keys over 40 rows: ties must stay in position order.
        let b = Bat::transient(Column::Int((0..40).map(|i| i % 2).collect()));
        assert_eq!(sort_perm(&b, false, &ParConfig::new(8)).unwrap(), seq_perm(&b, false));
        assert_eq!(sort_perm(&b, true, &ParConfig::new(8)).unwrap(), seq_perm(&b, true));
    }

    #[test]
    fn sorted_values_identical_for_strings_and_floats() {
        let s = Bat::transient(Column::Str((0..33).map(|i| format!("k{}", (i * 7) % 5)).collect()));
        let f = Bat::transient(Column::Float((0..33).map(|i| f64::from(50 - i) * 0.5).collect()));
        for desc in [false, true] {
            assert_eq!(
                sort(&s, desc, &ParConfig::new(4)).unwrap(),
                sort(&s, desc, &ParConfig::new(1)).unwrap(),
                "str desc={desc}"
            );
            assert_eq!(
                sort(&f, desc, &ParConfig::new(4)).unwrap(),
                sort(&f, desc, &ParConfig::new(1)).unwrap(),
                "float desc={desc}"
            );
        }
    }

    #[test]
    fn empty_and_single_row() {
        let b = Bat::empty(crate::DataType::Int);
        assert!(sort(&b, false, &ParConfig::new(4)).unwrap().is_empty());
        assert!(sort_perm(&b, true, &ParConfig::new(4)).unwrap().is_empty());
        let one = Bat::transient(Column::Int(vec![7]));
        assert_eq!(sort_perm(&one, false, &ParConfig::new(4)).unwrap(), vec![0]);
    }

    #[test]
    fn reverse_bat_reverses() {
        let b = Bat::transient(Column::Int(vec![1, 2, 3]));
        assert_eq!(reverse_bat(&b).tail, Column::Int(vec![3, 2, 1]));
    }
}
