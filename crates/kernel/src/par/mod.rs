//! `kernel::par` — partitioned parallel kernel operators.
//!
//! The DataCell architecture pushes stream processing into the column
//! store, so per-window cost is dominated by kernel operators; the
//! parallel Petri-net scheduler (PR 2) only fires *independent* factories
//! concurrently, leaving a single heavy standing query on one core. This
//! module restores intra-operator parallelism with the classic
//! morsel/partition recipe:
//!
//! * inputs are carved into disjoint pieces — hash **partitions** for the
//!   radix join ([`hashjoin`]), contiguous **morsels** ([`crate::Bat::chunks`])
//!   for [`select`] and [`grouped_agg`];
//! * pieces are processed on scoped worker threads (one per partition; no
//!   pool, no unsafe, no external deps — partition count should track
//!   physical cores);
//! * partial results are merged with the same machinery incremental plans
//!   already rely on: concatenation in piece order, plus the compensating
//!   re-group for grouped aggregates (paper §3, Fig. 3d).
//!
//! **Determinism contract:** every operator here produces a canonical,
//! input-determined output. `P = 1` *dispatches to the literal sequential
//! code path* (byte-identical results, mirroring the scheduler's "1 worker
//! ≡ sequential" rule); `P > 1` orders join pairs by (partition, probe
//! position) — the same pair *set* as the sequential join in a documented
//! canonical order — while `select` and `grouped_agg` outputs are
//! byte-identical to sequential at every `P` (morsels are ascending, and
//! re-grouping preserves first-occurrence key order), with one carve-out:
//! under round-robin placement, float `sum` partials reassociate
//! non-associative additions, so they are deterministic per `P` but not
//! `P`-invariant (see [`mod@aggregate`]'s module docs). Under
//! [`PlacementMode::Aligned`] morsels are carved by the canonical
//! [`crate::hash::Placement`] key-hash instead: partials own disjoint
//! keys, the merge is pure concatenation, and even float sums are
//! byte-identical to sequential at every `P`.

mod aggregate;
mod join;
mod select;

pub use aggregate::{
    grouped_agg, grouped_agg_multi, grouped_agg_partials, merge_partials, AggSpec, GroupAggPartial,
};
pub use join::hashjoin;
pub use select::select;

/// Lightweight observability counters for the parallel kernel entry
/// points. Process-wide monotone `AtomicU64`s: cheap enough to bump on
/// every call, precise enough for tests and bench harnesses to prove a
/// query actually reached the partitioned code paths (read a counter,
/// run the query, assert the delta). Counters only ever increase;
/// compare deltas rather than absolute values — other threads may be
/// aggregating concurrently.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static GROUPED_AGG_CALLS: AtomicU64 = AtomicU64::new(0);
    static GROUPED_AGG_PAR_CALLS: AtomicU64 = AtomicU64::new(0);
    static MERGE_CONCAT_FAST_PATH: AtomicU64 = AtomicU64::new(0);
    static MERGE_REGROUP_FALLBACK: AtomicU64 = AtomicU64::new(0);
    static SEAL_CALLS: AtomicU64 = AtomicU64::new(0);
    static SEAL_PAR_CALLS: AtomicU64 = AtomicU64::new(0);

    /// Record one grouped-aggregate kernel call; `parallel` marks calls
    /// that actually fanned morsels out over `P > 1` scoped threads
    /// (rather than dispatching to the sequential single-partial path).
    pub(crate) fn record_grouped_agg(parallel: bool) {
        GROUPED_AGG_CALLS.fetch_add(1, Ordering::Relaxed);
        if parallel {
            GROUPED_AGG_PAR_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one partial-merge; `concat` marks merges whose inputs were
    /// placement-aligned (disjoint key sets per partial), so the merge
    /// was a pure concatenation with no re-group or compensation pass.
    pub(crate) fn record_merge(concat: bool) {
        if concat {
            MERGE_CONCAT_FAST_PATH.fetch_add(1, Ordering::Relaxed);
        } else {
            MERGE_REGROUP_FALLBACK.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one multi-segment basket seal; `parallel` marks seals that
    /// fanned segment stitching out over scoped worker threads. Public
    /// because the basket crate (a kernel dependent) reports its seals
    /// through the same stats surface the benches read.
    pub fn record_seal(parallel: bool) {
        SEAL_CALLS.fetch_add(1, Ordering::Relaxed);
        if parallel {
            SEAL_PAR_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total grouped-aggregate kernel calls (any `P`).
    pub fn grouped_agg_calls() -> u64 {
        GROUPED_AGG_CALLS.load(Ordering::Relaxed)
    }

    /// Grouped-aggregate kernel calls that fanned out over `P > 1`
    /// morsel threads.
    pub fn grouped_agg_par_calls() -> u64 {
        GROUPED_AGG_PAR_CALLS.load(Ordering::Relaxed)
    }

    /// Partial-merges that took the aligned concat fast path.
    pub fn merge_concat_fast_path() -> u64 {
        MERGE_CONCAT_FAST_PATH.load(Ordering::Relaxed)
    }

    /// Partial-merges that fell back to the concat + re-group +
    /// compensation path.
    pub fn merge_regroup_fallback() -> u64 {
        MERGE_REGROUP_FALLBACK.load(Ordering::Relaxed)
    }

    /// Total multi-segment basket seals.
    pub fn seal_calls() -> u64 {
        SEAL_CALLS.load(Ordering::Relaxed)
    }

    /// Basket seals that stitched segments on parallel worker threads.
    pub fn seal_par_calls() -> u64 {
        SEAL_PAR_CALLS.load(Ordering::Relaxed)
    }
}

/// Configuration of the partitioned parallel runtime.
///
/// `partitions` is the fan-out `P`: how many disjoint pieces an operator
/// splits its input into, and (for `P > 1`) how many scoped worker threads
/// process them. `P = 1` is the sequential code path. Plumbed end to end:
/// `Engine::set_partitions` / the `DATACELL_PARTITIONS` environment
/// variable feed the factories, whose execution contexts hand it to
/// `plan::exec`, which switches join/select nodes to these entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    partitions: usize,
    placement: PlacementMode,
}

/// How grouped-aggregation morsels are carved from the input.
///
/// `RoundRobin` is the historic contiguous-chunk split: morsel `i` is
/// rows `[i·⌈n/P⌉, (i+1)·⌈n/P⌉)`, so partials share keys and the merge
/// re-groups. `Aligned` scatters rows by the canonical
/// [`crate::hash::Placement`] key-hash instead: each partial owns a
/// disjoint key set and the merge is a pure concatenation — and because
/// every per-key fold still happens in input order inside one partition,
/// even float sums are byte-identical to the sequential result at every
/// `P` (the round-robin float-sum carve-out does not apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// Contiguous round-robin morsels; merge re-groups (historic path).
    #[default]
    RoundRobin,
    /// Key-hash-aligned morsels; merge is concatenation.
    Aligned,
}

impl ParConfig {
    /// A config with `partitions` fan-out (clamped to at least 1) and
    /// round-robin placement.
    pub fn new(partitions: usize) -> ParConfig {
        ParConfig { partitions: partitions.max(1), placement: PlacementMode::RoundRobin }
    }

    /// The same config with `placement` selected.
    pub fn with_placement(self, placement: PlacementMode) -> ParConfig {
        ParConfig { placement, ..self }
    }

    /// The sequential configuration (`P = 1`).
    pub fn sequential() -> ParConfig {
        ParConfig::new(1)
    }

    /// Partition count from `DATACELL_PARTITIONS` (1 when unset/invalid)
    /// and placement from `DATACELL_PLACEMENT` (round-robin when unset).
    pub fn from_env() -> ParConfig {
        ParConfig::new(partitions_from_env())
            .with_placement(placement_from_env().unwrap_or_default())
    }

    /// The partition fan-out `P` (≥ 1).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The morsel placement mode.
    pub fn placement(&self) -> PlacementMode {
        self.placement
    }

    /// True when operators should split work (`P > 1`).
    pub fn is_parallel(&self) -> bool {
        self.partitions > 1
    }

    /// True when parallel operators should carve key-hash-aligned morsels.
    pub fn is_aligned(&self) -> bool {
        self.placement == PlacementMode::Aligned
    }
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig::sequential()
    }
}

/// Parse a `DATACELL_PARTITIONS`-style override: a positive partition
/// count. Returns `None` for unset, empty, non-numeric or zero values.
pub fn parse_partitions(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Partition count from the `DATACELL_PARTITIONS` environment variable,
/// falling back to 1 (sequential) when unset or invalid.
pub fn partitions_from_env() -> usize {
    parse_partitions(std::env::var("DATACELL_PARTITIONS").ok().as_deref()).unwrap_or(1)
}

/// Parse a `DATACELL_PLACEMENT`-style override. Accepts `aligned` and
/// `roundrobin` (also `round-robin`/`rr`), case-insensitively. Returns
/// `None` for unset, empty or unrecognized values — callers fall back to
/// their own default (the engine auto-aligns when shard count equals
/// partition count).
pub fn parse_placement(raw: Option<&str>) -> Option<PlacementMode> {
    match raw?.trim().to_ascii_lowercase().as_str() {
        "aligned" => Some(PlacementMode::Aligned),
        "roundrobin" | "round-robin" | "rr" => Some(PlacementMode::RoundRobin),
        _ => None,
    }
}

/// Placement mode from the `DATACELL_PLACEMENT` environment variable,
/// `None` when unset or invalid.
pub fn placement_from_env() -> Option<PlacementMode> {
    parse_placement(std::env::var("DATACELL_PLACEMENT").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ParConfig::new(0).partitions(), 1);
        assert!(!ParConfig::new(0).is_parallel());
        assert_eq!(ParConfig::default(), ParConfig::sequential());
        assert!(ParConfig::new(4).is_parallel());
        assert_eq!(ParConfig::new(4).partitions(), 4);
    }

    #[test]
    fn parse_partitions_accepts_positive_counts() {
        assert_eq!(parse_partitions(None), None);
        assert_eq!(parse_partitions(Some("")), None);
        assert_eq!(parse_partitions(Some("many")), None);
        assert_eq!(parse_partitions(Some("0")), None);
        assert_eq!(parse_partitions(Some("1")), Some(1));
        assert_eq!(parse_partitions(Some(" 16 ")), Some(16));
    }

    #[test]
    fn placement_defaults_to_round_robin_and_is_selectable() {
        assert_eq!(ParConfig::new(4).placement(), PlacementMode::RoundRobin);
        assert!(!ParConfig::new(4).is_aligned());
        let aligned = ParConfig::new(4).with_placement(PlacementMode::Aligned);
        assert!(aligned.is_aligned());
        assert_eq!(aligned.partitions(), 4);
    }

    #[test]
    fn parse_placement_accepts_both_modes() {
        assert_eq!(parse_placement(None), None);
        assert_eq!(parse_placement(Some("")), None);
        assert_eq!(parse_placement(Some("diagonal")), None);
        assert_eq!(parse_placement(Some("aligned")), Some(PlacementMode::Aligned));
        assert_eq!(parse_placement(Some(" Aligned ")), Some(PlacementMode::Aligned));
        assert_eq!(parse_placement(Some("roundrobin")), Some(PlacementMode::RoundRobin));
        assert_eq!(parse_placement(Some("round-robin")), Some(PlacementMode::RoundRobin));
        assert_eq!(parse_placement(Some("rr")), Some(PlacementMode::RoundRobin));
    }
}
