//! `kernel::par` — partitioned parallel kernel operators.
//!
//! The DataCell architecture pushes stream processing into the column
//! store, so per-window cost is dominated by kernel operators; the
//! parallel Petri-net scheduler (PR 2) only fires *independent* factories
//! concurrently, leaving a single heavy standing query on one core. This
//! module restores intra-operator parallelism with the classic
//! morsel/partition recipe:
//!
//! * inputs are carved into disjoint pieces — hash **partitions** for the
//!   radix join ([`hashjoin`]), contiguous **morsels** ([`crate::Bat::chunks`])
//!   for [`select`] and [`grouped_agg`];
//! * pieces are processed on scoped worker threads (one per partition; no
//!   pool, no unsafe, no external deps — partition count should track
//!   physical cores);
//! * partial results are merged with the same machinery incremental plans
//!   already rely on: concatenation in piece order, plus the compensating
//!   re-group for grouped aggregates (paper §3, Fig. 3d).
//!
//! **Determinism contract:** every operator here produces a canonical,
//! input-determined output. `P = 1` *dispatches to the literal sequential
//! code path* (byte-identical results, mirroring the scheduler's "1 worker
//! ≡ sequential" rule); `P > 1` orders join pairs by (partition, probe
//! position) — the same pair *set* as the sequential join in a documented
//! canonical order — while `select` and `grouped_agg` outputs are
//! byte-identical to sequential at every `P` (morsels are ascending, and
//! re-grouping preserves first-occurrence key order), with one carve-out:
//! float `sum` partials reassociate non-associative additions, so they
//! are deterministic per `P` but not `P`-invariant (see
//! [`mod@aggregate`]'s module docs).

mod aggregate;
mod join;
mod select;

pub use aggregate::{
    grouped_agg, grouped_agg_multi, grouped_agg_partials, merge_partials, AggSpec, GroupAggPartial,
};
pub use join::hashjoin;
pub use select::select;

/// Lightweight observability counters for the parallel kernel entry
/// points. Process-wide monotone `AtomicU64`s: cheap enough to bump on
/// every call, precise enough for tests and bench harnesses to prove a
/// query actually reached the partitioned code paths (read a counter,
/// run the query, assert the delta). Counters only ever increase;
/// compare deltas rather than absolute values — other threads may be
/// aggregating concurrently.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static GROUPED_AGG_CALLS: AtomicU64 = AtomicU64::new(0);
    static GROUPED_AGG_PAR_CALLS: AtomicU64 = AtomicU64::new(0);

    /// Record one grouped-aggregate kernel call; `parallel` marks calls
    /// that actually fanned morsels out over `P > 1` scoped threads
    /// (rather than dispatching to the sequential single-partial path).
    pub(crate) fn record_grouped_agg(parallel: bool) {
        GROUPED_AGG_CALLS.fetch_add(1, Ordering::Relaxed);
        if parallel {
            GROUPED_AGG_PAR_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total grouped-aggregate kernel calls (any `P`).
    pub fn grouped_agg_calls() -> u64 {
        GROUPED_AGG_CALLS.load(Ordering::Relaxed)
    }

    /// Grouped-aggregate kernel calls that fanned out over `P > 1`
    /// morsel threads.
    pub fn grouped_agg_par_calls() -> u64 {
        GROUPED_AGG_PAR_CALLS.load(Ordering::Relaxed)
    }
}

/// Configuration of the partitioned parallel runtime.
///
/// `partitions` is the fan-out `P`: how many disjoint pieces an operator
/// splits its input into, and (for `P > 1`) how many scoped worker threads
/// process them. `P = 1` is the sequential code path. Plumbed end to end:
/// `Engine::set_partitions` / the `DATACELL_PARTITIONS` environment
/// variable feed the factories, whose execution contexts hand it to
/// `plan::exec`, which switches join/select nodes to these entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    partitions: usize,
}

impl ParConfig {
    /// A config with `partitions` fan-out (clamped to at least 1).
    pub fn new(partitions: usize) -> ParConfig {
        ParConfig { partitions: partitions.max(1) }
    }

    /// The sequential configuration (`P = 1`).
    pub fn sequential() -> ParConfig {
        ParConfig::new(1)
    }

    /// Partition count from `DATACELL_PARTITIONS`, 1 when unset/invalid.
    pub fn from_env() -> ParConfig {
        ParConfig::new(partitions_from_env())
    }

    /// The partition fan-out `P` (≥ 1).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// True when operators should split work (`P > 1`).
    pub fn is_parallel(&self) -> bool {
        self.partitions > 1
    }
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig::sequential()
    }
}

/// Parse a `DATACELL_PARTITIONS`-style override: a positive partition
/// count. Returns `None` for unset, empty, non-numeric or zero values.
pub fn parse_partitions(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Partition count from the `DATACELL_PARTITIONS` environment variable,
/// falling back to 1 (sequential) when unset or invalid.
pub fn partitions_from_env() -> usize {
    parse_partitions(std::env::var("DATACELL_PARTITIONS").ok().as_deref()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ParConfig::new(0).partitions(), 1);
        assert!(!ParConfig::new(0).is_parallel());
        assert_eq!(ParConfig::default(), ParConfig::sequential());
        assert!(ParConfig::new(4).is_parallel());
        assert_eq!(ParConfig::new(4).partitions(), 4);
    }

    #[test]
    fn parse_partitions_accepts_positive_counts() {
        assert_eq!(parse_partitions(None), None);
        assert_eq!(parse_partitions(Some("")), None);
        assert_eq!(parse_partitions(Some("many")), None);
        assert_eq!(parse_partitions(Some("0")), None);
        assert_eq!(parse_partitions(Some("1")), Some(1));
        assert_eq!(parse_partitions(Some(" 16 ")), Some(16));
    }
}
