//! `kernel::par` — partitioned parallel kernel operators.
//!
//! The DataCell architecture pushes stream processing into the column
//! store, so per-window cost is dominated by kernel operators; the
//! parallel Petri-net scheduler (PR 2) only fires *independent* factories
//! concurrently, leaving a single heavy standing query on one core. This
//! module restores intra-operator parallelism with the classic
//! morsel/partition recipe:
//!
//! * inputs are carved into disjoint pieces — hash **partitions** for the
//!   radix join ([`hashjoin`]), contiguous **morsels** ([`crate::Bat::chunks`])
//!   for [`select`], [`fetch`] and [`grouped_agg`], contiguous position
//!   **runs** for [`sort`]/[`sort_perm`] (sorted in parallel, then k-way
//!   merged);
//! * pieces are processed on scoped worker threads (one per partition; no
//!   pool, no unsafe, no external deps — partition count should track
//!   physical cores);
//! * partial results are merged with the same machinery incremental plans
//!   already rely on: concatenation in piece order, plus the compensating
//!   re-group for grouped aggregates (paper §3, Fig. 3d).
//!
//! **Determinism contract:** every operator here produces a canonical,
//! input-determined output. `P = 1` *dispatches to the literal sequential
//! code path* (byte-identical results, mirroring the scheduler's "1 worker
//! ≡ sequential" rule); `P > 1` orders join pairs by (partition, probe
//! position) — the same pair *set* as the sequential join in a documented
//! canonical order — while `select`, `fetch`, `sort`/`sort_perm` and
//! `grouped_agg` outputs are byte-identical to sequential at every `P`
//! (morsels are ascending, the sort merge breaks ties toward the
//! lowest-position run, and re-grouping preserves first-occurrence key
//! order), with one carve-out:
//! under round-robin placement, float `sum` partials reassociate
//! non-associative additions, so they are deterministic per `P` but not
//! `P`-invariant (see [`mod@aggregate`]'s module docs). Under
//! [`PlacementMode::Aligned`] morsels are carved by the canonical
//! [`crate::hash::Placement`] key-hash instead: partials own disjoint
//! keys, the merge is pure concatenation, and even float sums are
//! byte-identical to sequential at every `P`. When the executing cluster
//! additionally vouches that keyed ingest already scatter-ordered the
//! batch ([`ParConfig::with_aligned_input`]), the aligned aggregate and
//! join elide per-row scatter materialization in favor of run-compressed
//! partition copies — `stats` counts these as `scatter_elided`.

mod aggregate;
mod fetch;
mod join;
mod select;
mod sort;

pub use aggregate::{
    grouped_agg, grouped_agg_multi, grouped_agg_partials, merge_partials, AggSpec, GroupAggPartial,
};
pub use fetch::fetch;
pub use join::hashjoin;
pub use select::select;
pub use sort::{reverse_bat, sort, sort_perm};

/// Lightweight observability for the parallel kernel entry points:
/// process-wide monotone counters plus call-granularity latency
/// histograms, all registered (with help text) in the
/// [`datacell_telemetry::global`] registry so they surface in
/// `Engine::telemetry_snapshot` and the Prometheus text exposition.
///
/// The counter accessors are thin shims over the registry handles — cheap
/// enough to bump on every call, precise enough for tests and bench
/// harnesses to prove a query actually reached the partitioned code paths.
/// Counters only ever increase; compare [`snapshot`] deltas rather than
/// absolute values — other threads may be aggregating concurrently.
pub mod stats {
    use datacell_telemetry::{global, Counter, Histogram};
    use std::sync::OnceLock;
    use std::time::Instant;

    struct Metrics {
        grouped_agg_calls: Counter,
        grouped_agg_par_calls: Counter,
        merge_concat: Counter,
        merge_regroup: Counter,
        seal_calls: Counter,
        seal_par_calls: Counter,
        fetch_calls: Counter,
        fetch_par_calls: Counter,
        sort_calls: Counter,
        sort_par_calls: Counter,
        scatter_elided: Counter,
        agg_seconds_seq: Histogram,
        agg_seconds_par: Histogram,
        fetch_seconds_seq: Histogram,
        fetch_seconds_par: Histogram,
        sort_seconds_seq: Histogram,
        sort_seconds_par: Histogram,
        sort_merge_seconds: Histogram,
    }

    fn metrics() -> &'static Metrics {
        static METRICS: OnceLock<Metrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            Metrics {
                grouped_agg_calls: r.counter(
                    "datacell_kernel_grouped_agg_calls_total",
                    "Grouped-aggregate kernel calls (any partition count).",
                ),
                grouped_agg_par_calls: r.counter(
                    "datacell_kernel_grouped_agg_par_calls_total",
                    "Grouped-aggregate kernel calls that fanned morsels out over P > 1 threads.",
                ),
                merge_concat: r.counter(
                    "datacell_kernel_merge_concat_total",
                    "Partial-merges that took the placement-aligned concat fast path.",
                ),
                merge_regroup: r.counter(
                    "datacell_kernel_merge_regroup_total",
                    "Partial-merges that fell back to concat + re-group + compensation.",
                ),
                seal_calls: r.counter("datacell_kernel_seal_total", "Multi-segment basket seals."),
                seal_par_calls: r.counter(
                    "datacell_kernel_seal_par_total",
                    "Basket seals that stitched segments on parallel worker threads.",
                ),
                fetch_calls: r.counter(
                    "datacell_kernel_fetch_calls_total",
                    "Fetch (tuple-reconstruction) kernel calls (any partition count).",
                ),
                fetch_par_calls: r.counter(
                    "datacell_kernel_fetch_par_calls_total",
                    "Fetch kernel calls that fanned morsels out over P > 1 threads.",
                ),
                sort_calls: r.counter(
                    "datacell_kernel_sort_calls_total",
                    "Sort/sort-perm kernel calls (any partition count).",
                ),
                sort_par_calls: r.counter(
                    "datacell_kernel_sort_par_calls_total",
                    "Sort/sort-perm kernel calls that sorted P > 1 runs on parallel threads.",
                ),
                scatter_elided: r.counter(
                    "datacell_kernel_scatter_elided_total",
                    "Aligned-input kernel calls that skipped per-row scatter in favor of \
                     run-compressed partition copies.",
                ),
                agg_seconds_seq: r.histogram_with(
                    "datacell_kernel_grouped_agg_seconds",
                    "Wall time of one grouped-aggregate kernel call, morsel fan-out included.",
                    &[("path", "seq")],
                ),
                agg_seconds_par: r.histogram_with(
                    "datacell_kernel_grouped_agg_seconds",
                    "Wall time of one grouped-aggregate kernel call, morsel fan-out included.",
                    &[("path", "par")],
                ),
                fetch_seconds_seq: r.histogram_with(
                    "datacell_kernel_fetch_seconds",
                    "Wall time of one fetch kernel call, morsel fan-out included.",
                    &[("path", "seq")],
                ),
                fetch_seconds_par: r.histogram_with(
                    "datacell_kernel_fetch_seconds",
                    "Wall time of one fetch kernel call, morsel fan-out included.",
                    &[("path", "par")],
                ),
                sort_seconds_seq: r.histogram_with(
                    "datacell_kernel_sort_seconds",
                    "Wall time of one sort/sort-perm kernel call, run fan-out included.",
                    &[("path", "seq")],
                ),
                sort_seconds_par: r.histogram_with(
                    "datacell_kernel_sort_seconds",
                    "Wall time of one sort/sort-perm kernel call, run fan-out included.",
                    &[("path", "par")],
                ),
                sort_merge_seconds: r.histogram(
                    "datacell_kernel_sort_merge_seconds",
                    "Wall time of the k-way run merge inside one parallel sort call.",
                ),
            }
        })
    }

    /// Record one grouped-aggregate kernel call; `parallel` marks calls
    /// that actually fanned morsels out over `P > 1` scoped threads
    /// (rather than dispatching to the sequential single-partial path).
    pub(crate) fn record_grouped_agg(parallel: bool) {
        let m = metrics();
        m.grouped_agg_calls.inc();
        if parallel {
            m.grouped_agg_par_calls.inc();
        }
    }

    /// Record the wall time of one grouped-aggregate kernel call into the
    /// per-path morsel-timing histogram. `start` comes from
    /// [`datacell_telemetry::timer`]; under the `DATACELL_TELEMETRY=0`
    /// kill switch it is `None` and this is a no-op.
    pub(crate) fn record_grouped_agg_time(parallel: bool, start: Option<Instant>) {
        let m = metrics();
        if parallel {
            m.agg_seconds_par.record_since(start);
        } else {
            m.agg_seconds_seq.record_since(start);
        }
    }

    /// Record one partial-merge; `concat` marks merges whose inputs were
    /// placement-aligned (disjoint key sets per partial), so the merge
    /// was a pure concatenation with no re-group or compensation pass.
    pub(crate) fn record_merge(concat: bool) {
        let m = metrics();
        if concat {
            m.merge_concat.inc();
        } else {
            m.merge_regroup.inc();
        }
    }

    /// Record one fetch kernel call; `parallel` marks calls that fanned
    /// candidate-list morsels out over `P > 1` scoped threads.
    pub(crate) fn record_fetch(parallel: bool) {
        let m = metrics();
        m.fetch_calls.inc();
        if parallel {
            m.fetch_par_calls.inc();
        }
    }

    /// Record the wall time of one fetch kernel call into the per-path
    /// histogram (see [`record_grouped_agg_time`] for the `start` contract).
    pub(crate) fn record_fetch_time(parallel: bool, start: Option<Instant>) {
        let m = metrics();
        if parallel {
            m.fetch_seconds_par.record_since(start);
        } else {
            m.fetch_seconds_seq.record_since(start);
        }
    }

    /// Record one sort/sort-perm kernel call; `parallel` marks calls that
    /// sorted `P > 1` runs on scoped threads.
    pub(crate) fn record_sort(parallel: bool) {
        let m = metrics();
        m.sort_calls.inc();
        if parallel {
            m.sort_par_calls.inc();
        }
    }

    /// Record the wall time of one sort/sort-perm kernel call into the
    /// per-path histogram.
    pub(crate) fn record_sort_time(parallel: bool, start: Option<Instant>) {
        let m = metrics();
        if parallel {
            m.sort_seconds_par.record_since(start);
        } else {
            m.sort_seconds_seq.record_since(start);
        }
    }

    /// Record the wall time of the k-way run merge inside one parallel
    /// sort call.
    pub(crate) fn record_sort_merge_time(start: Option<Instant>) {
        metrics().sort_merge_seconds.record_since(start);
    }

    /// Record one aligned-input kernel call that skipped its per-row
    /// scatter phase in favor of run-compressed partition copies.
    pub(crate) fn record_scatter_elided() {
        metrics().scatter_elided.inc();
    }

    /// Record one multi-segment basket seal; `parallel` marks seals that
    /// fanned segment stitching out over scoped worker threads. Public
    /// because the basket crate (a kernel dependent) reports its seals
    /// through the same stats surface the benches read.
    pub fn record_seal(parallel: bool) {
        let m = metrics();
        m.seal_calls.inc();
        if parallel {
            m.seal_par_calls.inc();
        }
    }

    /// Total grouped-aggregate kernel calls (any `P`).
    pub fn grouped_agg_calls() -> u64 {
        metrics().grouped_agg_calls.get()
    }

    /// Grouped-aggregate kernel calls that fanned out over `P > 1`
    /// morsel threads.
    pub fn grouped_agg_par_calls() -> u64 {
        metrics().grouped_agg_par_calls.get()
    }

    /// Partial-merges that took the aligned concat fast path.
    pub fn merge_concat_fast_path() -> u64 {
        metrics().merge_concat.get()
    }

    /// Partial-merges that fell back to the concat + re-group +
    /// compensation path.
    pub fn merge_regroup_fallback() -> u64 {
        metrics().merge_regroup.get()
    }

    /// Total multi-segment basket seals.
    pub fn seal_calls() -> u64 {
        metrics().seal_calls.get()
    }

    /// Basket seals that stitched segments on parallel worker threads.
    pub fn seal_par_calls() -> u64 {
        metrics().seal_par_calls.get()
    }

    /// Total fetch kernel calls (any `P`).
    pub fn fetch_calls() -> u64 {
        metrics().fetch_calls.get()
    }

    /// Fetch kernel calls that fanned out over `P > 1` morsel threads.
    pub fn fetch_par_calls() -> u64 {
        metrics().fetch_par_calls.get()
    }

    /// Total sort/sort-perm kernel calls (any `P`).
    pub fn sort_calls() -> u64 {
        metrics().sort_calls.get()
    }

    /// Sort/sort-perm kernel calls that sorted `P > 1` parallel runs.
    pub fn sort_par_calls() -> u64 {
        metrics().sort_par_calls.get()
    }

    /// Aligned-input kernel calls that elided their scatter phase.
    pub fn scatter_elided() -> u64 {
        metrics().scatter_elided.get()
    }

    /// All eleven kernel counters read at one instant. The idiom for proving
    /// a code path was reached is `let before = stats::snapshot(); ...;
    /// let d = stats::snapshot().delta(&before);` followed by asserts on
    /// the fields of `d` — replacing hand-rolled read-before/read-after
    /// pairs per counter.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct StatsSnapshot {
        /// Total grouped-aggregate kernel calls.
        pub grouped_agg_calls: u64,
        /// Grouped-aggregate calls that fanned out over `P > 1` threads.
        pub grouped_agg_par_calls: u64,
        /// Partial-merges on the aligned concat fast path.
        pub merge_concat_fast_path: u64,
        /// Partial-merges on the re-group fallback path.
        pub merge_regroup_fallback: u64,
        /// Total multi-segment basket seals.
        pub seal_calls: u64,
        /// Basket seals that stitched on parallel threads.
        pub seal_par_calls: u64,
        /// Total fetch kernel calls.
        pub fetch_calls: u64,
        /// Fetch calls that fanned out over `P > 1` threads.
        pub fetch_par_calls: u64,
        /// Total sort/sort-perm kernel calls.
        pub sort_calls: u64,
        /// Sort calls that sorted `P > 1` parallel runs.
        pub sort_par_calls: u64,
        /// Aligned-input calls that elided their scatter phase.
        pub scatter_elided: u64,
    }

    impl StatsSnapshot {
        /// Field-wise `self - earlier` (saturating): the counter movement
        /// between two snapshots.
        #[must_use]
        pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
            StatsSnapshot {
                grouped_agg_calls: self.grouped_agg_calls.saturating_sub(earlier.grouped_agg_calls),
                grouped_agg_par_calls: self
                    .grouped_agg_par_calls
                    .saturating_sub(earlier.grouped_agg_par_calls),
                merge_concat_fast_path: self
                    .merge_concat_fast_path
                    .saturating_sub(earlier.merge_concat_fast_path),
                merge_regroup_fallback: self
                    .merge_regroup_fallback
                    .saturating_sub(earlier.merge_regroup_fallback),
                seal_calls: self.seal_calls.saturating_sub(earlier.seal_calls),
                seal_par_calls: self.seal_par_calls.saturating_sub(earlier.seal_par_calls),
                fetch_calls: self.fetch_calls.saturating_sub(earlier.fetch_calls),
                fetch_par_calls: self.fetch_par_calls.saturating_sub(earlier.fetch_par_calls),
                sort_calls: self.sort_calls.saturating_sub(earlier.sort_calls),
                sort_par_calls: self.sort_par_calls.saturating_sub(earlier.sort_par_calls),
                scatter_elided: self.scatter_elided.saturating_sub(earlier.scatter_elided),
            }
        }
    }

    /// Read all counters at one instant.
    #[must_use]
    pub fn snapshot() -> StatsSnapshot {
        let m = metrics();
        StatsSnapshot {
            grouped_agg_calls: m.grouped_agg_calls.get(),
            grouped_agg_par_calls: m.grouped_agg_par_calls.get(),
            merge_concat_fast_path: m.merge_concat.get(),
            merge_regroup_fallback: m.merge_regroup.get(),
            seal_calls: m.seal_calls.get(),
            seal_par_calls: m.seal_par_calls.get(),
            fetch_calls: m.fetch_calls.get(),
            fetch_par_calls: m.fetch_par_calls.get(),
            sort_calls: m.sort_calls.get(),
            sort_par_calls: m.sort_par_calls.get(),
            scatter_elided: m.scatter_elided.get(),
        }
    }
}

/// Configuration of the partitioned parallel runtime.
///
/// `partitions` is the fan-out `P`: how many disjoint pieces an operator
/// splits its input into, and (for `P > 1`) how many scoped worker threads
/// process them. `P = 1` is the sequential code path. Plumbed end to end:
/// `Engine::set_partitions` / the `DATACELL_PARTITIONS` environment
/// variable feed the factories, whose execution contexts hand it to
/// `plan::exec`, which switches join/select nodes to these entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    partitions: usize,
    placement: PlacementMode,
    aligned_input: bool,
}

/// How grouped-aggregation morsels are carved from the input.
///
/// `RoundRobin` is the historic contiguous-chunk split: morsel `i` is
/// rows `[i·⌈n/P⌉, (i+1)·⌈n/P⌉)`, so partials share keys and the merge
/// re-groups. `Aligned` scatters rows by the canonical
/// [`crate::hash::Placement`] key-hash instead: each partial owns a
/// disjoint key set and the merge is a pure concatenation — and because
/// every per-key fold still happens in input order inside one partition,
/// even float sums are byte-identical to the sequential result at every
/// `P` (the round-robin float-sum carve-out does not apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// Contiguous round-robin morsels; merge re-groups (historic path).
    #[default]
    RoundRobin,
    /// Key-hash-aligned morsels; merge is concatenation.
    Aligned,
}

impl ParConfig {
    /// A config with `partitions` fan-out (clamped to at least 1) and
    /// round-robin placement.
    pub fn new(partitions: usize) -> ParConfig {
        ParConfig {
            partitions: partitions.max(1),
            placement: PlacementMode::RoundRobin,
            aligned_input: false,
        }
    }

    /// The same config with `placement` selected.
    pub fn with_placement(self, placement: PlacementMode) -> ParConfig {
        ParConfig { placement, ..self }
    }

    /// The same config with the aligned-input mark set: the caller vouches
    /// that the executing cluster was marked `placement_aligned` by the
    /// incremental rewriter, i.e. keyed ingest scatter-ordered this batch
    /// by the canonical [`crate::hash::Placement`] before the kernel saw
    /// it. The mark is a *hint*, never trusted for correctness: elision
    /// paths still hash every key and only skip materializing per-row
    /// position lists (run-compressed copies replace per-element gathers),
    /// so a mismarked input degrades to per-row runs, not wrong answers.
    pub fn with_aligned_input(self, aligned_input: bool) -> ParConfig {
        ParConfig { aligned_input, ..self }
    }

    /// The sequential configuration (`P = 1`).
    pub fn sequential() -> ParConfig {
        ParConfig::new(1)
    }

    /// Partition count from `DATACELL_PARTITIONS` (1 when unset/invalid)
    /// and placement from `DATACELL_PLACEMENT` (round-robin when unset).
    pub fn from_env() -> ParConfig {
        ParConfig::new(partitions_from_env())
            .with_placement(placement_from_env().unwrap_or_default())
    }

    /// The partition fan-out `P` (≥ 1).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The morsel placement mode.
    pub fn placement(&self) -> PlacementMode {
        self.placement
    }

    /// True when operators should split work (`P > 1`).
    pub fn is_parallel(&self) -> bool {
        self.partitions > 1
    }

    /// True when parallel operators should carve key-hash-aligned morsels.
    pub fn is_aligned(&self) -> bool {
        self.placement == PlacementMode::Aligned
    }

    /// True when the caller marked this batch as already scatter-ordered
    /// by keyed ingest (see [`ParConfig::with_aligned_input`]).
    pub fn aligned_input(&self) -> bool {
        self.aligned_input
    }

    /// True when aligned operators may take their scatter-elision fast
    /// path: placement is [`PlacementMode::Aligned`] *and* the executing
    /// cluster vouched for its input's scatter order.
    pub fn input_is_aligned(&self) -> bool {
        self.aligned_input && self.placement == PlacementMode::Aligned
    }
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig::sequential()
    }
}

/// Parse a `DATACELL_PARTITIONS`-style override: a positive partition
/// count. Returns `None` for unset, empty, non-numeric or zero values.
pub fn parse_partitions(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Partition count from the `DATACELL_PARTITIONS` environment variable,
/// falling back to 1 (sequential) when unset or invalid.
pub fn partitions_from_env() -> usize {
    parse_partitions(std::env::var("DATACELL_PARTITIONS").ok().as_deref()).unwrap_or(1)
}

/// Parse a `DATACELL_PLACEMENT`-style override. Accepts `aligned` and
/// `roundrobin` (also `round-robin`/`rr`), case-insensitively. Returns
/// `None` for unset, empty or unrecognized values — callers fall back to
/// their own default (the engine auto-aligns when shard count equals
/// partition count).
pub fn parse_placement(raw: Option<&str>) -> Option<PlacementMode> {
    match raw?.trim().to_ascii_lowercase().as_str() {
        "aligned" => Some(PlacementMode::Aligned),
        "roundrobin" | "round-robin" | "rr" => Some(PlacementMode::RoundRobin),
        _ => None,
    }
}

/// Placement mode from the `DATACELL_PLACEMENT` environment variable,
/// `None` when unset or invalid.
pub fn placement_from_env() -> Option<PlacementMode> {
    parse_placement(std::env::var("DATACELL_PLACEMENT").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ParConfig::new(0).partitions(), 1);
        assert!(!ParConfig::new(0).is_parallel());
        assert_eq!(ParConfig::default(), ParConfig::sequential());
        assert!(ParConfig::new(4).is_parallel());
        assert_eq!(ParConfig::new(4).partitions(), 4);
    }

    #[test]
    fn parse_partitions_accepts_positive_counts() {
        assert_eq!(parse_partitions(None), None);
        assert_eq!(parse_partitions(Some("")), None);
        assert_eq!(parse_partitions(Some("many")), None);
        assert_eq!(parse_partitions(Some("0")), None);
        assert_eq!(parse_partitions(Some("1")), Some(1));
        assert_eq!(parse_partitions(Some(" 16 ")), Some(16));
    }

    #[test]
    fn placement_defaults_to_round_robin_and_is_selectable() {
        assert_eq!(ParConfig::new(4).placement(), PlacementMode::RoundRobin);
        assert!(!ParConfig::new(4).is_aligned());
        let aligned = ParConfig::new(4).with_placement(PlacementMode::Aligned);
        assert!(aligned.is_aligned());
        assert_eq!(aligned.partitions(), 4);
    }

    #[test]
    fn aligned_input_mark_requires_aligned_placement() {
        let marked = ParConfig::new(4).with_aligned_input(true);
        assert!(marked.aligned_input());
        assert!(!marked.input_is_aligned(), "round-robin placement never elides");
        assert!(marked.with_placement(PlacementMode::Aligned).input_is_aligned());
        let unmarked = ParConfig::new(4).with_placement(PlacementMode::Aligned);
        assert!(!unmarked.input_is_aligned(), "alignment alone is not a vouched input");
        // The mark survives a placement change but not a from-scratch rebuild.
        assert!(!ParConfig::new(4).input_is_aligned());
    }

    #[test]
    fn parse_placement_accepts_both_modes() {
        assert_eq!(parse_placement(None), None);
        assert_eq!(parse_placement(Some("")), None);
        assert_eq!(parse_placement(Some("diagonal")), None);
        assert_eq!(parse_placement(Some("aligned")), Some(PlacementMode::Aligned));
        assert_eq!(parse_placement(Some(" Aligned ")), Some(PlacementMode::Aligned));
        assert_eq!(parse_placement(Some("roundrobin")), Some(PlacementMode::RoundRobin));
        assert_eq!(parse_placement(Some("round-robin")), Some(PlacementMode::RoundRobin));
        assert_eq!(parse_placement(Some("rr")), Some(PlacementMode::RoundRobin));
    }
}
