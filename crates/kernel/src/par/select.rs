//! Chunk-parallel selection.
//!
//! The input BAT is carved into `P` contiguous zero-copy morsels
//! ([`crate::Bat::chunks`]); each morsel runs the sequential bulk loop
//! ([`crate::algebra::select_slice`]) on its own scoped thread, and the
//! per-morsel candidate lists are concatenated in morsel order. Because
//! morsels are ascending head-oid ranges, the concatenation *is* the
//! sequential output: `par::select` is byte-identical to
//! `algebra::select` at every `P` (at `P = 1` it dispatches to it).

use super::ParConfig;
use crate::algebra::{self, select_slice, Predicate};
use crate::column::Column;
use crate::{Bat, Oid, Result};

/// Parallel selection over a whole BAT: returns the same candidate-list
/// BAT (oid tail) as [`algebra::select`], computed over `P` morsels.
/// Inputs smaller than the partition count fall back to the sequential
/// path.
pub fn select(bat: &Bat, pred: &Predicate, cfg: &ParConfig) -> Result<Bat> {
    let p = cfg.partitions();
    if p <= 1 || bat.len() < p {
        return algebra::select(bat, pred);
    }
    let chunks = bat.chunks(p);
    let partials: Vec<Result<Vec<Oid>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(base, slice)| s.spawn(move || select_slice(slice, base, pred)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("select morsel panicked")).collect()
    });
    // Partial lengths are known once the threads join: pre-size the merge
    // target like the join's partition concat, instead of growing from 0.
    let total: usize = partials.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum();
    let mut out: Vec<Oid> = Vec::with_capacity(total);
    for partial in partials {
        out.extend(partial?);
    }
    Ok(Bat::transient(Column::Oid(out)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::CmpOp;
    use crate::value::Value;

    #[test]
    fn identical_to_sequential_at_every_p() {
        let b = Bat::new(70, Column::Int((0..103).map(|i| i % 10).collect()));
        let pred = Predicate::gt(6);
        let seq = algebra::select(&b, &pred).unwrap();
        for p in [1, 2, 3, 8, 64] {
            let par = select(&b, &pred, &ParConfig::new(p)).unwrap();
            assert_eq!(par, seq, "P={p}");
        }
    }

    #[test]
    fn string_and_range_predicates() {
        let b = Bat::new(0, Column::Str((0..40).map(|i| format!("k{}", i % 7)).collect()));
        let pred = Predicate::eq("k3");
        assert_eq!(
            select(&b, &pred, &ParConfig::new(4)).unwrap(),
            algebra::select(&b, &pred).unwrap()
        );
        let ints = Bat::new(5, Column::Int((0..50).collect()));
        let pred = Predicate::between(10, 30);
        assert_eq!(
            select(&ints, &pred, &ParConfig::new(8)).unwrap(),
            algebra::select(&ints, &pred).unwrap()
        );
    }

    #[test]
    fn errors_propagate_from_morsels() {
        let b = Bat::transient(Column::Float(vec![1.0; 16]));
        let pred = Predicate::Cmp(CmpOp::Eq, Value::Str("x".into()));
        assert!(select(&b, &pred, &ParConfig::new(4)).is_err());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let b = Bat::empty(crate::DataType::Int);
        let out = select(&b, &Predicate::True, &ParConfig::new(4)).unwrap();
        assert!(out.is_empty());
        let tiny = Bat::new(9, Column::Int(vec![5]));
        let out = select(&tiny, &Predicate::True, &ParConfig::new(4)).unwrap();
        assert_eq!(out.tail, Column::Oid(vec![9]));
    }
}
