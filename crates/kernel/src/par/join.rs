//! Radix-partitioned parallel hash join.
//!
//! Both inputs are hash-partitioned on the join key into `P` disjoint
//! partitions (equal keys always land in the same partition, so the union
//! of the per-partition joins is exactly the sequential join's pair set).
//! Each partition pair is then joined independently on a scoped worker
//! thread using the same chained-bucket core as the sequential
//! [`crate::algebra::hashjoin`], and the aligned oid pairs are
//! concatenated back in partition order.
//!
//! **Canonical output order** (documented determinism contract): pairs are
//! ordered by partition index first, then by probe position within the
//! partition, then newest-build-first within one probe match — the last
//! two being exactly the sequential core's order restricted to the
//! partition. At `P = 1` the call dispatches to the sequential
//! `algebra::hashjoin` code path and is byte-identical to it.

use super::{stats, ParConfig};
use crate::column::Column;
use crate::error::KernelError;
use crate::hash::{fast_map_with_capacity, FastBuild, FastMap, Placement};
use crate::{Bat, Oid, Result};
use std::hash::{BuildHasher, Hash};

/// Partitioned parallel hash join `l.tail == r.tail`; returns aligned
/// `(left_oids, right_oids)` candidate BATs, like `algebra::hashjoin`.
///
/// The smaller input builds, the larger probes (as in the sequential
/// join). The fallback to the sequential path gates on the *larger*
/// side: a tiny build against a huge probe still wins by splitting the
/// probe scan across partitions (empty build partitions short-circuit),
/// and only when even the probe side has fewer tuples than partitions is
/// the fan-out pure overhead.
pub fn hashjoin(l: &Bat, r: &Bat, cfg: &ParConfig) -> Result<(Bat, Bat)> {
    let p = cfg.partitions();
    if p <= 1 || l.len().max(r.len()) < p {
        return crate::algebra::hashjoin(l, r);
    }
    if l.data_type() != r.data_type() {
        return Err(KernelError::TypeMismatch {
            op: "par::hashjoin",
            expected: l.data_type(),
            found: r.data_type(),
        });
    }
    // Swap so the build side is the smaller one, then restore order.
    let elide = cfg.input_is_aligned();
    let (mut lo, mut ro) =
        if l.len() <= r.len() { dispatch(l, r, p, elide)? } else { dispatch(r, l, p, elide)? };
    if l.len() > r.len() {
        std::mem::swap(&mut lo, &mut ro);
    }
    Ok((Bat::transient(Column::Oid(lo)), Bat::transient(Column::Oid(ro))))
}

/// Type dispatch: one monomorphic radix join per hashable column pair.
fn dispatch(build: &Bat, probe: &Bat, p: usize, elide: bool) -> Result<(Vec<Oid>, Vec<Oid>)> {
    let (bh, ph) = (build.hseq, probe.hseq);
    match (&build.tail, &probe.tail) {
        (Column::Int(b), Column::Int(q)) => Ok(radix_join(b, q, bh, ph, p, elide, |&k| k)),
        (Column::Oid(b), Column::Oid(q)) => Ok(radix_join(b, q, bh, ph, p, elide, |&k| k)),
        (Column::Bool(b), Column::Bool(q)) => Ok(radix_join(b, q, bh, ph, p, elide, |&k| k)),
        (Column::Str(b), Column::Str(q)) => {
            Ok(radix_join(b, q, bh, ph, p, elide, |k: &String| k.as_str()))
        }
        (Column::Float(_), _) => {
            Err(KernelError::Unsupported("par::hashjoin on float keys".into()))
        }
        _ => unreachable!("type equality checked by caller"),
    }
}

/// Assign every value a partition in `[0, p)` by the canonical
/// [`Placement`] key-hash map — the same map that picks basket staging
/// shards and aligned aggregation morsels, so keyed ingest lands
/// pre-partitioned for the join. Returns the positions of each
/// partition's members, ascending within a partition (the scatter is
/// stable). The placement uses the hash's upper half so it stays
/// uncorrelated with the bucket index the in-partition hash table derives
/// from the lower bits of the same hash function.
fn partition_positions<'a, T, K>(
    vals: &'a [T],
    p: usize,
    key_of: impl Fn(&'a T) -> K,
) -> Vec<Vec<u32>>
where
    K: Hash,
{
    let placement = Placement::new(p);
    let hasher = FastBuild::default();
    let mut part_of = Vec::with_capacity(vals.len());
    let mut counts = vec![0usize; p];
    for v in vals {
        let part = placement.of_hash(hasher.hash_one(key_of(v)));
        part_of.push(part as u32);
        counts[part] += 1;
    }
    let mut parts: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (i, &part) in part_of.iter().enumerate() {
        parts[part as usize].push(i as u32);
    }
    parts
}

/// Run-compressed variant of [`partition_positions`] for inputs the
/// caller vouched were scatter-ordered by keyed ingest: one pass that
/// detects maximal same-partition runs and appends each as a bulk range
/// extend, skipping the two-pass `part_of`/`counts` materialization. The
/// per-position partition answer comes from the same hash, so the output
/// is identical to [`partition_positions`] on *any* input — a mismarked
/// (unclustered) input just degrades to per-row runs.
fn partition_positions_elided<'a, T, K>(
    vals: &'a [T],
    p: usize,
    key_of: impl Fn(&'a T) -> K,
) -> Vec<Vec<u32>>
where
    K: Hash,
{
    let placement = Placement::new(p);
    let hasher = FastBuild::default();
    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut run_start = 0u32;
    let mut run_part = 0usize;
    for (i, v) in vals.iter().enumerate() {
        let part = placement.of_hash(hasher.hash_one(key_of(v)));
        if i == 0 {
            run_part = part;
        } else if part != run_part {
            parts[run_part].extend(run_start..i as u32);
            run_start = i as u32;
            run_part = part;
        }
    }
    if !vals.is_empty() {
        parts[run_part].extend(run_start..vals.len() as u32);
    }
    parts
}

/// Radix-partition both sides, join partition pairs on scoped threads,
/// concatenate in partition order. Returns `(build_oids, probe_oids)`.
#[allow(clippy::too_many_arguments)]
fn radix_join<'a, T, K>(
    build: &'a [T],
    probe: &'a [T],
    build_hseq: Oid,
    probe_hseq: Oid,
    p: usize,
    elide: bool,
    key_of: impl Fn(&'a T) -> K + Copy + Send + Sync,
) -> (Vec<Oid>, Vec<Oid>)
where
    T: Sync,
    K: Hash + Eq,
{
    let (build_parts, probe_parts) = if elide {
        stats::record_scatter_elided();
        (partition_positions_elided(build, p, key_of), partition_positions_elided(probe, p, key_of))
    } else {
        (partition_positions(build, p, key_of), partition_positions(probe, p, key_of))
    };

    let partials: Vec<(Vec<Oid>, Vec<Oid>)> = std::thread::scope(|s| {
        let handles: Vec<_> = build_parts
            .iter()
            .zip(&probe_parts)
            .map(|(bp, pp)| {
                s.spawn(move || {
                    chained_join_at(build, probe, bp, pp, build_hseq, probe_hseq, key_of)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("partition join panicked")).collect()
    });

    let total: usize = partials.iter().map(|(b, _)| b.len()).sum();
    let mut bo = Vec::with_capacity(total);
    let mut po = Vec::with_capacity(total);
    for (b, q) in partials {
        bo.extend(b);
        po.extend(q);
    }
    (bo, po)
}

/// The chained-bucket join core of `algebra::hashjoin`, restricted to the
/// position subsets of one partition: build a head map + `next` chain over
/// `build_pos`, probe in `probe_pos` order, emit global head oids.
#[allow(clippy::too_many_arguments)]
fn chained_join_at<'a, T, K>(
    build: &'a [T],
    probe: &'a [T],
    build_pos: &[u32],
    probe_pos: &[u32],
    build_hseq: Oid,
    probe_hseq: Oid,
    key_of: impl Fn(&'a T) -> K,
) -> (Vec<Oid>, Vec<Oid>)
where
    K: Hash + Eq,
{
    if build_pos.is_empty() || probe_pos.is_empty() {
        return (Vec::new(), Vec::new());
    }
    const NONE: u32 = u32::MAX;
    let mut head: FastMap<K, u32> = fast_map_with_capacity(build_pos.len());
    let mut next: Vec<u32> = vec![NONE; build_pos.len()];
    for (i, &pos) in build_pos.iter().enumerate() {
        let slot = head.entry(key_of(&build[pos as usize])).or_insert(NONE);
        next[i] = *slot;
        *slot = i as u32;
    }
    // Probe-length output estimate, as in the sequential core.
    let mut bo = Vec::with_capacity(probe_pos.len());
    let mut po = Vec::with_capacity(probe_pos.len());
    for &jpos in probe_pos {
        if let Some(&first) = head.get(&key_of(&probe[jpos as usize])) {
            let mut i = first;
            while i != NONE {
                bo.push(build_hseq + build_pos[i as usize] as u64);
                po.push(probe_hseq + jpos as u64);
                i = next[i as usize];
            }
        }
    }
    (bo, po)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;

    fn pairs(lo: &Bat, ro: &Bat) -> Vec<(u64, u64)> {
        lo.tail
            .as_oid()
            .unwrap()
            .iter()
            .zip(ro.tail.as_oid().unwrap())
            .map(|(&a, &b)| (a, b))
            .collect()
    }

    fn sorted_pairs(lo: &Bat, ro: &Bat) -> Vec<(u64, u64)> {
        let mut v = pairs(lo, ro);
        v.sort_unstable();
        v
    }

    #[test]
    fn p1_is_byte_identical_to_sequential() {
        let l = Bat::new(3, Column::Int(vec![1, 2, 3, 2, 9]));
        let r = Bat::new(40, Column::Int(vec![2, 9, 2, 5]));
        let (slo, sro) = algebra::hashjoin(&l, &r).unwrap();
        let (plo, pro) = hashjoin(&l, &r, &ParConfig::sequential()).unwrap();
        assert_eq!((slo, sro), (plo, pro));
    }

    #[test]
    fn partitions_preserve_pair_set() {
        let l = Bat::new(0, Column::Int((0..64).map(|i| i % 7).collect()));
        let r = Bat::new(1000, Column::Int((0..80).map(|i| i % 9).collect()));
        let (slo, sro) = algebra::hashjoin(&l, &r).unwrap();
        for p in [2, 3, 4, 8] {
            let (plo, pro) = hashjoin(&l, &r, &ParConfig::new(p)).unwrap();
            assert_eq!(sorted_pairs(&plo, &pro), sorted_pairs(&slo, &sro), "P={p}");
            // Every emitted pair matches on key.
            for (&a, &b) in plo.tail.as_oid().unwrap().iter().zip(pro.tail.as_oid().unwrap()) {
                assert_eq!(l.value_at((a - l.hseq) as usize), r.value_at((b - r.hseq) as usize));
            }
        }
    }

    #[test]
    fn canonical_order_is_deterministic() {
        let l = Bat::new(0, Column::Int((0..50).map(|i| i % 5).collect()));
        let r = Bat::new(0, Column::Int((0..50).map(|i| i % 4).collect()));
        let cfg = ParConfig::new(4);
        let (a1, b1) = hashjoin(&l, &r, &cfg).unwrap();
        let (a2, b2) = hashjoin(&l, &r, &cfg).unwrap();
        assert_eq!(pairs(&a1, &b1), pairs(&a2, &b2));
    }

    #[test]
    fn string_keys_partition_correctly() {
        let keys = ["ape", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"];
        let l = Bat::new(0, Column::Str((0..32).map(|i| keys[i % 8].to_string()).collect()));
        let r = Bat::new(90, Column::Str((0..24).map(|i| keys[i % 3].to_string()).collect()));
        let (slo, sro) = algebra::hashjoin(&l, &r).unwrap();
        let (plo, pro) = hashjoin(&l, &r, &ParConfig::new(4)).unwrap();
        assert_eq!(sorted_pairs(&plo, &pro), sorted_pairs(&slo, &sro));
    }

    #[test]
    fn tiny_build_large_probe_still_partitions() {
        // One build tuple, many probe tuples: the probe scan is what gets
        // split; empty build partitions short-circuit.
        let l = Bat::new(0, Column::Int(vec![3]));
        let r = Bat::new(10, Column::Int((0..100).map(|i| i % 5).collect()));
        let (slo, sro) = algebra::hashjoin(&l, &r).unwrap();
        let (plo, pro) = hashjoin(&l, &r, &ParConfig::new(4)).unwrap();
        assert_eq!(sorted_pairs(&plo, &pro), sorted_pairs(&slo, &sro));
        assert_eq!(plo.len(), 20);
    }

    #[test]
    fn join_partitioning_agrees_with_placement_scatter() {
        // Satellite: "same key ⇒ same partition" is one definition. The
        // join's per-type scatter must place every value exactly where
        // Placement::scatter places the equivalent column.
        let ints: Vec<i64> = (0..64).map(|i| (i * 13) % 10 - 5).collect();
        assert_eq!(
            partition_positions(&ints, 4, |&k| k),
            Placement::new(4).scatter(&Column::Int(ints.clone()).as_slice())
        );
        let strs: Vec<String> = (0..40).map(|i| format!("key-{}", i % 9)).collect();
        assert_eq!(
            partition_positions(&strs, 8, |k: &String| k.as_str()),
            Placement::new(8).scatter(&Column::Str(strs.clone()).as_slice())
        );
    }

    #[test]
    fn elided_partitioning_is_identical_on_any_input() {
        // The run-compressed scatter must agree with the two-pass scatter
        // position-for-position, clustered or not.
        let unclustered: Vec<i64> = (0..64).map(|i| (i * 13) % 10).collect();
        assert_eq!(
            partition_positions_elided(&unclustered, 4, |&k| k),
            partition_positions(&unclustered, 4, |&k| k)
        );
        let pl = Placement::new(4);
        let mut by_part: Vec<Vec<i64>> = vec![Vec::new(); 4];
        for k in 0..64i64 {
            by_part[pl.of_key(k)].push(k);
        }
        let clustered: Vec<i64> = by_part.concat();
        assert_eq!(
            partition_positions_elided(&clustered, 4, |&k| k),
            partition_positions(&clustered, 4, |&k| k)
        );
        let empty: Vec<i64> = Vec::new();
        assert_eq!(partition_positions_elided(&empty, 4, |&k| k), vec![Vec::new(); 4]);
    }

    #[test]
    fn elided_join_byte_identical_to_aligned_join_and_counted() {
        use super::super::PlacementMode;
        let l = Bat::new(0, Column::Int((0..64).map(|i| i % 7).collect()));
        let r = Bat::new(1000, Column::Int((0..80).map(|i| i % 9).collect()));
        let aligned = ParConfig::new(4).with_placement(PlacementMode::Aligned);
        let elided = aligned.with_aligned_input(true);
        let e0 = stats::scatter_elided();
        assert_eq!(hashjoin(&l, &r, &elided).unwrap(), hashjoin(&l, &r, &aligned).unwrap());
        assert_eq!(
            hashjoin(&l, &r, &elided).unwrap(),
            hashjoin(&l, &r, &ParConfig::new(4)).unwrap()
        );
        assert!(stats::scatter_elided() > e0, "elided joins must be counted");
        // The mark without aligned placement must not change results
        // either (it is ignored: round-robin placement never elides).
        let marked_rr = ParConfig::new(4).with_aligned_input(true);
        assert_eq!(
            hashjoin(&l, &r, &marked_rr).unwrap(),
            hashjoin(&l, &r, &ParConfig::new(4)).unwrap()
        );
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        // Fewer tuples than partitions: byte-identical to sequential.
        let l = Bat::new(0, Column::Int(vec![1, 2]));
        let r = Bat::new(10, Column::Int(vec![2, 1, 2]));
        let (slo, sro) = algebra::hashjoin(&l, &r).unwrap();
        let (plo, pro) = hashjoin(&l, &r, &ParConfig::new(8)).unwrap();
        assert_eq!((slo, sro), (plo, pro));
    }

    #[test]
    fn empty_side_and_type_errors_match_sequential() {
        let l = Bat::empty(crate::DataType::Int);
        let r = Bat::new(0, Column::Int(vec![1, 2]));
        let cfg = ParConfig::new(4);
        let (lo, ro) = hashjoin(&l, &r, &cfg).unwrap();
        assert!(lo.is_empty() && ro.is_empty());
        let s = Bat::transient(Column::Str(vec!["1".into(); 8]));
        let i = Bat::transient(Column::Int(vec![1; 8]));
        assert!(hashjoin(&s, &i, &cfg).is_err());
        let f = Bat::transient(Column::Float(vec![1.0; 8]));
        assert!(matches!(hashjoin(&f, &f, &cfg), Err(KernelError::Unsupported(_))));
    }
}
