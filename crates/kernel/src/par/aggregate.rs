//! Chunk-parallel grouped aggregation with partial-result merging.
//!
//! Each morsel of the key (and value) columns is grouped and aggregated
//! independently on a scoped thread; the per-morsel partials are then
//! merged with the existing concat/merge machinery — concatenate partial
//! keys and partial aggregates in morsel order, re-group the keys, and
//! apply the aggregate's *compensating action* over the partials
//! (paper §3, Fig. 3d: `count` partials merge with `sum`, `sum`/`min`/
//! `max` re-apply themselves; `avg` has no single compensation and is
//! expanded upstream into sum/count).
//!
//! Determinism: morsels are ascending input ranges and group ids are
//! assigned in first-occurrence order, so every key that first appears in
//! morsel `i` precedes every key first appearing in morsel `j > i` — the
//! re-grouped key order is exactly the sequential first-occurrence order,
//! making the merged output byte-identical to the sequential
//! group-then-aggregate at every `P` for integer values, `count`, and
//! `min`/`max` (associative merges). The one carve-out is **float
//! `sum`**: addition over floats is non-associative, so a partial-sums
//! merge can differ from the sequential left-to-right fold by real
//! rounding error (e.g. `[1e16, 1.0, -1e16, 1.0]` sums to `1.0`
//! sequentially but `0.0` from two-morsel partials). Float-sum output is
//! still deterministic *for a given `P`* — same input, same fan-out,
//! same bytes — just not `P`-invariant.

use super::ParConfig;
use crate::algebra::{self, concat_columns, AggKind};
use crate::column::Column;
use crate::error::KernelError;
use crate::{Bat, Result};

/// Grouped aggregate over `keys` (and, except for `count`, the aligned
/// `vals`): returns `(group_keys, aggregates)` in first-occurrence key
/// order — the same pair the sequential `group` + `*_grouped` chain
/// produces (float `sum` excepted: partials reassociate the additions,
/// see the module docs). `P = 1` runs that sequential chain directly.
pub fn grouped_agg(
    keys: &Bat,
    vals: Option<&Bat>,
    kind: AggKind,
    cfg: &ParConfig,
) -> Result<(Column, Column)> {
    if let Some(v) = vals {
        if v.len() != keys.len() {
            return Err(KernelError::LengthMismatch {
                op: "par::grouped_agg",
                left: keys.len(),
                right: v.len(),
            });
        }
    }
    let compensation = kind.compensation().ok_or_else(|| {
        KernelError::Unsupported("par::grouped_agg on avg: expand to sum/count".into())
    })?;
    let p = cfg.partitions();
    if p <= 1 || keys.len() < p {
        return apply(keys, vals, kind);
    }

    // Per-morsel partials on scoped threads. Morsel views are zero-copy;
    // the per-morsel group/aggregate kernels take owned BATs, so each
    // thread materializes only its own morsel.
    let key_chunks = keys.chunks(p);
    let partials: Vec<Result<(Column, Column)>> = std::thread::scope(|s| {
        let handles: Vec<_> = key_chunks
            .iter()
            .map(|&(base, kslice)| {
                let vslice = vals.map(|v| v.tail.slice((base - keys.hseq) as usize, kslice.len()));
                s.spawn(move || {
                    let kb = Bat::new(base, kslice.to_column());
                    let vb = vslice.map(|vs| Bat::new(base, vs.to_column()));
                    apply(&kb, vb.as_ref(), kind)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("aggregate morsel panicked")).collect()
    });

    // Merge: concat partials in morsel order, re-group, compensate.
    let mut key_parts = Vec::with_capacity(p);
    let mut agg_parts = Vec::with_capacity(p);
    for partial in partials {
        let (k, a) = partial?;
        key_parts.push(k);
        agg_parts.push(a);
    }
    let merged_keys = Bat::transient(concat_columns(&key_parts.iter().collect::<Vec<_>>())?);
    let merged_aggs = Bat::transient(concat_columns(&agg_parts.iter().collect::<Vec<_>>())?);
    let regroup = algebra::group(&merged_keys)?;
    let out_keys = regroup.keys(&merged_keys)?;
    let out_aggs = match compensation {
        AggKind::Sum => algebra::sum_grouped(&merged_aggs, &regroup)?,
        AggKind::Min => algebra::min_grouped(&merged_aggs, &regroup)?,
        AggKind::Max => algebra::max_grouped(&merged_aggs, &regroup)?,
        other => unreachable!("no grouped compensation dispatch for {other:?}"),
    };
    Ok((out_keys, out_aggs))
}

/// The sequential group-then-aggregate chain over one (morsel) BAT.
fn apply(keys: &Bat, vals: Option<&Bat>, kind: AggKind) -> Result<(Column, Column)> {
    let groups = algebra::group(keys)?;
    let out_keys = groups.keys(keys)?;
    let agg = match kind {
        AggKind::Count => algebra::count_grouped(&groups),
        AggKind::Sum => algebra::sum_grouped(req(vals)?, &groups)?,
        AggKind::Min => algebra::min_grouped(req(vals)?, &groups)?,
        AggKind::Max => algebra::max_grouped(req(vals)?, &groups)?,
        AggKind::Avg => return Err(KernelError::Unsupported("par::grouped_agg on avg".into())),
    };
    Ok((out_keys, agg))
}

fn req(vals: Option<&Bat>) -> Result<&Bat> {
    vals.ok_or_else(|| KernelError::Unsupported("grouped aggregate requires a value column".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_vals(n: usize) -> (Bat, Bat) {
        let keys = Bat::new(30, Column::Int((0..n as i64).map(|i| (i * 7) % 5).collect()));
        let vals = Bat::new(30, Column::Int((0..n as i64).map(|i| i * 3 + 1).collect()));
        (keys, vals)
    }

    #[test]
    fn matches_sequential_for_every_kind_and_p() {
        let (keys, vals) = keys_vals(97);
        for kind in [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max] {
            let vals_arg = (kind != AggKind::Count).then_some(&vals);
            let seq = apply(&keys, vals_arg, kind).unwrap();
            for p in [1, 2, 3, 8] {
                let par = grouped_agg(&keys, vals_arg, kind, &ParConfig::new(p)).unwrap();
                assert_eq!(par, seq, "kind={kind:?} P={p}");
            }
        }
    }

    #[test]
    fn float_values_and_string_keys() {
        let keys = Bat::transient(Column::Str((0..60).map(|i| format!("g{}", i % 4)).collect()));
        let vals = Bat::transient(Column::Float((0..60).map(|i| i as f64 / 2.0).collect()));
        let seq = apply(&keys, Some(&vals), AggKind::Sum).unwrap();
        let par = grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(4)).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn float_sum_is_deterministic_per_p_despite_reassociation() {
        // The documented carve-out: catastrophic cancellation makes the
        // two-morsel partial merge differ from the sequential fold, but
        // repeating the same (input, P) pair reproduces the same bytes.
        let keys = Bat::transient(Column::Int(vec![0, 0, 0, 0]));
        let vals = Bat::transient(Column::Float(vec![1e16, 1.0, -1e16, 1.0]));
        let seq = apply(&keys, Some(&vals), AggKind::Sum).unwrap();
        assert_eq!(seq.1, Column::Float(vec![1.0]));
        let cfg = ParConfig::new(2);
        let par = grouped_agg(&keys, Some(&vals), AggKind::Sum, &cfg).unwrap();
        assert_eq!(par.1, Column::Float(vec![0.0])); // (1e16 + 1.0) lost the 1.0
        assert_eq!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &cfg).unwrap(), par);
    }

    #[test]
    fn avg_is_rejected_with_expansion_hint() {
        let (keys, vals) = keys_vals(16);
        let err = grouped_agg(&keys, Some(&vals), AggKind::Avg, &ParConfig::new(2));
        assert!(matches!(err, Err(KernelError::Unsupported(_))));
    }

    #[test]
    fn length_mismatch_rejected() {
        let keys = Bat::transient(Column::Int(vec![1, 2, 3]));
        let vals = Bat::transient(Column::Int(vec![1]));
        assert!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(2)).is_err());
    }

    #[test]
    fn empty_input_yields_empty_groups() {
        let keys = Bat::empty(crate::DataType::Int);
        let (k, a) = grouped_agg(&keys, None, AggKind::Count, &ParConfig::new(4)).unwrap();
        assert!(k.is_empty() && a.is_empty());
    }
}
