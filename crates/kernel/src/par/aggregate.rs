//! Chunk-parallel grouped aggregation with partial-result merging.
//!
//! The fused `GroupAgg` MAL node needs more than the single-aggregate
//! helper PR 3 shipped: one grouping pass must feed *several* aggregates
//! (`SELECT k, sum(v), count(*), min(v) ... GROUP BY k` is one node), and
//! `avg` must work without the caller expanding it. This module therefore
//! exposes a partial/merge API:
//!
//! * [`grouped_agg_partials`] — group one piece of the input once and
//!   compute every requested aggregate over that grouping. `avg` is
//!   expanded *internally* into sum + count partial slots (the paper's
//!   expanding replication, Fig. 3c, applied at the kernel level);
//! * [`merge_partials`] — concatenate per-piece partial keys and slots in
//!   piece order, re-group the keys, apply each slot's *compensating
//!   action* (paper §3, Fig. 3d: `count` partials merge with `sum`,
//!   `sum`/`min`/`max` re-apply themselves), then finalize `avg` slots by
//!   dividing merged sums by merged counts;
//! * [`grouped_agg_multi`] — the driver: one partial at `P = 1`, morsel
//!   partials on scoped threads merged via [`merge_partials`] at `P > 1`;
//! * [`grouped_agg`] — the single-aggregate convenience wrapper the
//!   PR 3 callers keep using.
//!
//! Determinism: morsels are ascending input ranges and group ids are
//! assigned in first-occurrence order, so every key that first appears in
//! morsel `i` precedes every key first appearing in morsel `j > i` — the
//! re-grouped key order is exactly the sequential first-occurrence order,
//! making the merged output byte-identical to the sequential
//! group-then-aggregate at every `P` for integer values, `count`, and
//! `min`/`max` (associative merges). The one carve-out is **float
//! `sum`** (and therefore float `avg`): addition over floats is
//! non-associative, so a partial-sums merge can differ from the
//! sequential left-to-right fold by real rounding error (e.g.
//! `[1e16, 1.0, -1e16, 1.0]` sums to `1.0` sequentially but `0.0` from
//! two-morsel partials). Float-sum output is still deterministic *for a
//! given `P`* — same input, same fan-out, same bytes — just not
//! `P`-invariant.

use super::{stats, ParConfig};
use crate::algebra::{self, concat_columns, AggKind, ArithOp, Groups};
use crate::column::Column;
use crate::error::KernelError;
use crate::hash::Placement;
use crate::{Bat, Result};

/// One aggregate request over a shared grouping: the function plus the
/// value column aligned with the keys (`None` for `count`, which needs no
/// values; ignored by `count` when supplied).
pub type AggSpec<'a> = (AggKind, Option<&'a Bat>);

/// The partial state one input piece contributes to a fused grouped
/// aggregation: the piece's distinct keys (first-occurrence order) plus
/// one partial column per internal slot. `avg` specs own *two* slots
/// (sum, count); every other spec owns one, in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggPartial {
    /// Distinct keys of the piece, first-occurrence order.
    pub keys: Column,
    /// Per-slot partial aggregates, aligned with `keys`.
    pub slots: Vec<Column>,
}

/// The internal slot layout for a list of user-level aggregate kinds:
/// `avg` expands to a sum slot followed by a count slot, everything else
/// maps to itself.
fn slot_kinds(kinds: &[AggKind]) -> Vec<AggKind> {
    let mut out = Vec::with_capacity(kinds.len());
    for k in kinds {
        match k {
            AggKind::Avg => {
                out.push(AggKind::Sum);
                out.push(AggKind::Count);
            }
            k => out.push(*k),
        }
    }
    out
}

fn req(kind: AggKind, vals: Option<&Bat>) -> Result<&Bat> {
    vals.ok_or_else(|| {
        KernelError::Unsupported(format!("grouped {} requires a value column", kind.sql()))
    })
}

/// Group `keys` once and compute every requested aggregate over that
/// grouping — the per-piece half of the partial/merge API. Returns the
/// piece's distinct keys plus one partial column per internal slot
/// (`avg` expanded to sum + count).
pub fn grouped_agg_partials(keys: &Bat, specs: &[AggSpec]) -> Result<GroupAggPartial> {
    partial_with_groups(keys, specs).map(|(_, p)| p)
}

/// [`grouped_agg_partials`] plus the grouping itself — the aligned merge
/// needs each piece's group extents to recover global first-occurrence
/// positions.
fn partial_with_groups(keys: &Bat, specs: &[AggSpec]) -> Result<(Groups, GroupAggPartial)> {
    for (_, vals) in specs {
        if let Some(v) = vals {
            if v.len() != keys.len() {
                return Err(KernelError::LengthMismatch {
                    op: "par::grouped_agg",
                    left: keys.len(),
                    right: v.len(),
                });
            }
        }
    }
    let groups = algebra::group(keys)?;
    let out_keys = groups.keys(keys)?;
    let mut slots = Vec::with_capacity(specs.len() + 1);
    for &(kind, vals) in specs {
        match kind {
            AggKind::Count => slots.push(algebra::count_grouped(&groups)),
            AggKind::Sum => slots.push(algebra::sum_grouped(req(kind, vals)?, &groups)?),
            AggKind::Min => slots.push(algebra::min_grouped(req(kind, vals)?, &groups)?),
            AggKind::Max => slots.push(algebra::max_grouped(req(kind, vals)?, &groups)?),
            AggKind::Avg => {
                slots.push(algebra::sum_grouped(req(kind, vals)?, &groups)?);
                slots.push(algebra::count_grouped(&groups));
            }
        }
    }
    Ok((groups, GroupAggPartial { keys: out_keys, slots }))
}

/// Merge per-piece partials: concat keys and slots in piece order,
/// re-group, apply each slot's compensating aggregate, finalize `avg`
/// slots by division. Returns the merged keys (first-occurrence order
/// across pieces) and one column per *user-level* spec in `kinds`.
pub fn merge_partials(
    kinds: &[AggKind],
    partials: &[GroupAggPartial],
) -> Result<(Column, Vec<Column>)> {
    if partials.is_empty() {
        return Err(KernelError::Unsupported("merge_partials over zero pieces".into()));
    }
    let slots = slot_kinds(kinds);
    for p in partials {
        if p.slots.len() != slots.len() {
            return Err(KernelError::Unsupported(format!(
                "partial has {} slots, layout wants {}",
                p.slots.len(),
                slots.len()
            )));
        }
    }
    let key_parts: Vec<&Column> = partials.iter().map(|p| &p.keys).collect();
    let merged_keys = Bat::transient(concat_columns(&key_parts)?);
    let regroup = algebra::group(&merged_keys)?;
    let out_keys = regroup.keys(&merged_keys)?;
    let mut merged_slots = Vec::with_capacity(slots.len());
    for (i, slot_kind) in slots.iter().enumerate() {
        let slot_parts: Vec<&Column> = partials.iter().map(|p| &p.slots[i]).collect();
        let all = Bat::transient(concat_columns(&slot_parts)?);
        let comp = slot_kind.compensation().expect("no avg slots after expansion");
        let merged = match comp {
            AggKind::Sum => algebra::sum_grouped(&all, &regroup)?,
            AggKind::Min => algebra::min_grouped(&all, &regroup)?,
            AggKind::Max => algebra::max_grouped(&all, &regroup)?,
            other => unreachable!("no grouped compensation dispatch for {other:?}"),
        };
        merged_slots.push(merged);
    }
    stats::record_merge(false);
    Ok((out_keys, finalize(kinds, merged_slots)?))
}

/// Key-hash-aligned parallel grouped aggregation: scatter rows by the
/// canonical [`Placement`] map (every occurrence of a key lands in one
/// partition, in input order), aggregate each partition independently,
/// then merge by pure concatenation — partials own disjoint key sets, so
/// no re-group and no compensating pass. Emitting groups in ascending
/// global first-occurrence position reproduces the sequential key order,
/// and per-key folds run over the same rows in the same order as the
/// sequential pass, so the output is byte-identical at every `P` — float
/// sums included (the round-robin carve-out does not apply).
/// When the caller vouched for the input's scatter order
/// ([`ParConfig::input_is_aligned`]), the scatter phase is *elided*: the
/// same single hash pass runs (the hash is the correctness check — the
/// claim is never trusted), but per-row position lists collapse to
/// run-length-compressed ranges ([`Placement::scatter_runs`]) and the
/// per-partition gathers become bulk [`Column::gather_ranges`] copies.
/// Both paths visit identical rows per partition in identical order, so
/// the output is the same bytes either way; mismarked input merely
/// degrades to per-row runs.
fn grouped_agg_aligned(
    keys: &Bat,
    specs: &[AggSpec],
    kinds: &[AggKind],
    cfg: &ParConfig,
) -> Result<(Column, Vec<Column>)> {
    let p = cfg.partitions();
    let partials: Vec<Result<(GroupAggPartial, Vec<u32>)>> = if cfg.input_is_aligned() {
        stats::record_scatter_elided();
        let runs = Placement::new(p).scatter_runs(&keys.tail.as_slice());
        std::thread::scope(|s| {
            let handles: Vec<_> = runs
                .iter()
                .map(|part_runs| {
                    s.spawn(move || {
                        let kb = Bat::transient(keys.tail.gather_ranges(part_runs));
                        let vbats: Vec<Option<Bat>> = specs
                            .iter()
                            .map(|(_, vals)| {
                                vals.map(|v| Bat::transient(v.tail.gather_ranges(part_runs)))
                            })
                            .collect();
                        let part_specs: Vec<AggSpec> =
                            kinds.iter().zip(&vbats).map(|(&k, v)| (k, v.as_ref())).collect();
                        let (groups, partial) = partial_with_groups(&kb, &part_specs)?;
                        // Prefix sums over run lengths map a group's local
                        // extent back to its global first-occurrence
                        // position: local offsets [cum[r], cum[r]+len_r)
                        // came from global run r.
                        let mut cum = Vec::with_capacity(part_runs.len());
                        let mut acc = 0u32;
                        for &(_, n) in part_runs {
                            cum.push(acc);
                            acc += n;
                        }
                        let first_pos: Vec<u32> = groups
                            .extents
                            .iter()
                            .map(|&e| {
                                let r = cum.partition_point(|&c| c <= e) - 1;
                                part_runs[r].0 + (e - cum[r])
                            })
                            .collect();
                        Ok((partial, first_pos))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("aligned morsel panicked")).collect()
        })
    } else {
        let parts = Placement::new(p).scatter(&keys.tail.as_slice());
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|pos| {
                    s.spawn(move || {
                        let kb = Bat::transient(keys.tail.gather(pos));
                        let vbats: Vec<Option<Bat>> = specs
                            .iter()
                            .map(|(_, vals)| vals.map(|v| Bat::transient(v.tail.gather(pos))))
                            .collect();
                        let part_specs: Vec<AggSpec> =
                            kinds.iter().zip(&vbats).map(|(&k, v)| (k, v.as_ref())).collect();
                        let (groups, partial) = partial_with_groups(&kb, &part_specs)?;
                        // Global input position where each group first occurs.
                        let first_pos: Vec<u32> =
                            groups.extents.iter().map(|&e| pos[e as usize]).collect();
                        Ok((partial, first_pos))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("aligned morsel panicked")).collect()
        })
    };
    let partials: Vec<(GroupAggPartial, Vec<u32>)> = partials.into_iter().collect::<Result<_>>()?;

    // Concat-merge: order all groups by global first occurrence. The
    // positions are distinct (each is one input row), so the sort is a
    // total order and matches sequential first-occurrence group order.
    let mut ord: Vec<(u32, u32, u32)> = Vec::new();
    for (pi, (_, first)) in partials.iter().enumerate() {
        for (g, &fp) in first.iter().enumerate() {
            ord.push((fp, pi as u32, g as u32));
        }
    }
    ord.sort_unstable();
    let ord: Vec<(u32, u32)> = ord.into_iter().map(|(_, pi, g)| (pi, g)).collect();

    let key_cols: Vec<&Column> = partials.iter().map(|(pp, _)| &pp.keys).collect();
    let out_keys = interleave(&key_cols, &ord)?;
    let nslots = slot_kinds(kinds).len();
    let mut merged_slots = Vec::with_capacity(nslots);
    for i in 0..nslots {
        let cols: Vec<&Column> = partials.iter().map(|(pp, _)| &pp.slots[i]).collect();
        merged_slots.push(interleave(&cols, &ord)?);
    }
    stats::record_merge(true);
    Ok((out_keys, finalize(kinds, merged_slots)?))
}

/// Stitch per-partial columns into one output column following `ord`:
/// each entry names (partial index, row within that partial).
fn interleave(cols: &[&Column], ord: &[(u32, u32)]) -> Result<Column> {
    let dt = cols.first().expect("at least one partial").data_type();
    let mut out = Column::with_capacity(dt, ord.len());
    for &(pi, g) in ord {
        out.push(cols[pi as usize].get(g as usize).expect("group in range"))?;
    }
    Ok(out)
}

/// Collapse internal slots back to one column per user-level spec: `avg`
/// slots divide sum by count (promoting to float, the same `map_arith`
/// division the sequential plan executor applies), others pass through.
fn finalize(kinds: &[AggKind], slots: Vec<Column>) -> Result<Vec<Column>> {
    let mut it = slots.into_iter();
    let mut out = Vec::with_capacity(kinds.len());
    for kind in kinds {
        match kind {
            AggKind::Avg => {
                let sums = it.next().expect("avg sum slot");
                let counts = it.next().expect("avg count slot");
                let div = algebra::map_arith(
                    &Bat::transient(sums),
                    &Bat::transient(counts),
                    ArithOp::Div,
                )?;
                out.push(div.tail);
            }
            _ => out.push(it.next().expect("slot per spec")),
        }
    }
    Ok(out)
}

/// Fused grouped aggregation over `keys`: every aggregate in `specs` is
/// evaluated over one shared grouping pass; returns `(group_keys,
/// aggregates)` in first-occurrence key order with one output column per
/// spec. `P = 1` computes a single partial and finalizes it directly —
/// the literal sequential group-then-aggregate chain; `P > 1` computes
/// per-morsel partials on scoped threads and merges them. Round-robin
/// placement carves contiguous morsels and re-groups at the merge (float
/// sums reassociate, see the module docs); aligned placement scatters by
/// the canonical key-hash and concat-merges (byte-identical to
/// sequential at every `P`, float sums included).
pub fn grouped_agg_multi(
    keys: &Bat,
    specs: &[AggSpec],
    cfg: &ParConfig,
) -> Result<(Column, Vec<Column>)> {
    // Call-granularity morsel timing: one clock pair per kernel call (not
    // per row, not per morsel), so the telemetry overhead stays in the
    // noise; `timer()` is `None` under the DATACELL_TELEMETRY kill switch.
    let parallel = cfg.partitions() > 1 && keys.len() >= cfg.partitions();
    let start = datacell_telemetry::timer();
    let out = grouped_agg_multi_inner(keys, specs, cfg);
    stats::record_grouped_agg_time(parallel, start);
    out
}

fn grouped_agg_multi_inner(
    keys: &Bat,
    specs: &[AggSpec],
    cfg: &ParConfig,
) -> Result<(Column, Vec<Column>)> {
    let kinds: Vec<AggKind> = specs.iter().map(|&(k, _)| k).collect();
    let p = cfg.partitions();
    if p <= 1 || keys.len() < p {
        stats::record_grouped_agg(false);
        let partial = grouped_agg_partials(keys, specs)?;
        return Ok((partial.keys, finalize(&kinds, partial.slots)?));
    }
    stats::record_grouped_agg(true);

    // Validate lengths up front so mismatches surface before threads spawn.
    for (_, vals) in specs {
        if let Some(v) = vals {
            if v.len() != keys.len() {
                return Err(KernelError::LengthMismatch {
                    op: "par::grouped_agg",
                    left: keys.len(),
                    right: v.len(),
                });
            }
        }
    }

    if cfg.is_aligned() {
        return grouped_agg_aligned(keys, specs, &kinds, cfg);
    }

    // Per-morsel partials on scoped threads. Morsel views are zero-copy;
    // the per-morsel group/aggregate kernels take owned BATs, so each
    // thread materializes only its own morsel.
    let key_chunks = keys.chunks(p);
    let partials: Vec<Result<GroupAggPartial>> = std::thread::scope(|s| {
        let kinds = &kinds;
        let handles: Vec<_> = key_chunks
            .iter()
            .map(|&(base, kslice)| {
                let vslices: Vec<_> = specs
                    .iter()
                    .map(|(_, vals)| {
                        vals.map(|v| v.tail.slice((base - keys.hseq) as usize, kslice.len()))
                    })
                    .collect();
                s.spawn(move || {
                    let kb = Bat::new(base, kslice.to_column());
                    let vbats: Vec<Option<Bat>> = vslices
                        .into_iter()
                        .map(|vs| vs.map(|v| Bat::new(base, v.to_column())))
                        .collect();
                    let morsel_specs: Vec<AggSpec> =
                        kinds.iter().zip(&vbats).map(|(&k, v)| (k, v.as_ref())).collect();
                    grouped_agg_partials(&kb, &morsel_specs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("aggregate morsel panicked")).collect()
    });
    let partials: Vec<GroupAggPartial> = partials.into_iter().collect::<Result<_>>()?;
    merge_partials(&kinds, &partials)
}

/// Single-aggregate grouped aggregation — the PR 3 entry point, now a
/// thin wrapper over [`grouped_agg_multi`]. `avg` is supported: it is
/// expanded to sum/count partials internally and divided at the merge.
pub fn grouped_agg(
    keys: &Bat,
    vals: Option<&Bat>,
    kind: AggKind,
    cfg: &ParConfig,
) -> Result<(Column, Column)> {
    let (out_keys, mut cols) = grouped_agg_multi(keys, &[(kind, vals)], cfg)?;
    Ok((out_keys, cols.pop().expect("one aggregate in, one column out")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_vals(n: usize) -> (Bat, Bat) {
        let keys = Bat::new(30, Column::Int((0..n as i64).map(|i| (i * 7) % 5).collect()));
        let vals = Bat::new(30, Column::Int((0..n as i64).map(|i| i * 3 + 1).collect()));
        (keys, vals)
    }

    /// The sequential reference: one grouping pass, finalize in place.
    fn seq(keys: &Bat, vals: Option<&Bat>, kind: AggKind) -> (Column, Column) {
        let partial = grouped_agg_partials(keys, &[(kind, vals)]).unwrap();
        let mut cols = finalize(&[kind], partial.slots).unwrap();
        (partial.keys, cols.pop().unwrap())
    }

    #[test]
    fn matches_sequential_for_every_kind_and_p() {
        let (keys, vals) = keys_vals(97);
        for kind in [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max] {
            let vals_arg = (kind != AggKind::Count).then_some(&vals);
            let expect = seq(&keys, vals_arg, kind);
            for p in [1, 2, 3, 8] {
                let par = grouped_agg(&keys, vals_arg, kind, &ParConfig::new(p)).unwrap();
                assert_eq!(par, expect, "kind={kind:?} P={p}");
            }
        }
    }

    #[test]
    fn avg_expands_to_sum_count_and_matches_sequential() {
        // The satellite fix: avg partials are (sum, count) pairs merged by
        // (sum of sums) / (sum of counts) — par ≡ sequential at every P,
        // exactly (integer sums and counts divide identically).
        let (keys, vals) = keys_vals(97);
        let expect = seq(&keys, Some(&vals), AggKind::Avg);
        assert!(matches!(expect.1, Column::Float(_)), "avg promotes to float");
        for p in [1, 2, 8] {
            let par = grouped_agg(&keys, Some(&vals), AggKind::Avg, &ParConfig::new(p)).unwrap();
            assert_eq!(par, expect, "P={p}");
        }
    }

    #[test]
    fn multi_agg_shares_one_grouping_pass() {
        // sum, count(*), min, avg over the same keys in one call: each
        // output column equals its single-aggregate run, keys once.
        let (keys, vals) = keys_vals(64);
        let specs: Vec<AggSpec> = vec![
            (AggKind::Sum, Some(&vals)),
            (AggKind::Count, None),
            (AggKind::Min, Some(&vals)),
            (AggKind::Avg, Some(&vals)),
        ];
        for p in [1, 2, 8] {
            let cfg = ParConfig::new(p);
            let (k, cols) = grouped_agg_multi(&keys, &specs, &cfg).unwrap();
            assert_eq!(cols.len(), 4);
            for (i, &(kind, vals)) in specs.iter().enumerate() {
                let (sk, sc) = grouped_agg(&keys, vals, kind, &cfg).unwrap();
                assert_eq!(k, sk, "keys P={p}");
                assert_eq!(cols[i], sc, "slot {i} kind={kind:?} P={p}");
            }
        }
    }

    #[test]
    fn float_values_and_string_keys() {
        let keys = Bat::transient(Column::Str((0..60).map(|i| format!("g{}", i % 4)).collect()));
        let vals = Bat::transient(Column::Float((0..60).map(|i| i as f64 / 2.0).collect()));
        let expect = seq(&keys, Some(&vals), AggKind::Sum);
        let par = grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(4)).unwrap();
        assert_eq!(par, expect);
    }

    #[test]
    fn float_sum_is_deterministic_per_p_despite_reassociation() {
        // The documented carve-out: catastrophic cancellation makes the
        // two-morsel partial merge differ from the sequential fold, but
        // repeating the same (input, P) pair reproduces the same bytes.
        let keys = Bat::transient(Column::Int(vec![0, 0, 0, 0]));
        let vals = Bat::transient(Column::Float(vec![1e16, 1.0, -1e16, 1.0]));
        let expect = seq(&keys, Some(&vals), AggKind::Sum);
        assert_eq!(expect.1, Column::Float(vec![1.0]));
        let cfg = ParConfig::new(2);
        let par = grouped_agg(&keys, Some(&vals), AggKind::Sum, &cfg).unwrap();
        assert_eq!(par.1, Column::Float(vec![0.0])); // (1e16 + 1.0) lost the 1.0
        assert_eq!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &cfg).unwrap(), par);
    }

    #[test]
    fn value_column_required_for_sum_and_avg() {
        let (keys, _) = keys_vals(16);
        for kind in [AggKind::Sum, AggKind::Min, AggKind::Max, AggKind::Avg] {
            let err = grouped_agg(&keys, None, kind, &ParConfig::new(2));
            assert!(matches!(err, Err(KernelError::Unsupported(_))), "kind={kind:?}");
        }
    }

    #[test]
    fn length_mismatch_rejected_at_every_p() {
        let keys = Bat::transient(Column::Int(vec![1, 2, 3]));
        let vals = Bat::transient(Column::Int(vec![1]));
        for p in [1, 2] {
            assert!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(p)).is_err());
        }
    }

    #[test]
    fn empty_input_yields_empty_groups() {
        let keys = Bat::empty(crate::DataType::Int);
        let (k, a) = grouped_agg(&keys, None, AggKind::Count, &ParConfig::new(4)).unwrap();
        assert!(k.is_empty() && a.is_empty());
        let vals = Bat::empty(crate::DataType::Int);
        let (k, cols) =
            grouped_agg_multi(&keys, &[(AggKind::Avg, Some(&vals))], &ParConfig::new(4)).unwrap();
        assert!(k.is_empty() && cols[0].is_empty());
    }

    #[test]
    fn merge_partials_rejects_bad_shapes() {
        assert!(merge_partials(&[AggKind::Sum], &[]).is_err());
        let bad = GroupAggPartial { keys: Column::Int(vec![1]), slots: vec![] };
        assert!(merge_partials(&[AggKind::Sum], &[bad]).is_err());
    }

    fn aligned(p: usize) -> ParConfig {
        ParConfig::new(p).with_placement(super::super::PlacementMode::Aligned)
    }

    #[test]
    fn aligned_matches_sequential_for_every_kind_and_p() {
        let (keys, vals) = keys_vals(97);
        for kind in [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max, AggKind::Avg] {
            let vals_arg = (kind != AggKind::Count).then_some(&vals);
            let expect = seq(&keys, vals_arg, kind);
            for p in [1, 2, 3, 8] {
                let par = grouped_agg(&keys, vals_arg, kind, &aligned(p)).unwrap();
                assert_eq!(par, expect, "kind={kind:?} P={p}");
            }
        }
    }

    #[test]
    fn aligned_string_keys_match_sequential() {
        let keys = Bat::transient(Column::Str((0..60).map(|i| format!("g{}", i % 7)).collect()));
        let vals = Bat::transient(Column::Float((0..60).map(|i| i as f64 / 2.0).collect()));
        for kind in [AggKind::Sum, AggKind::Avg] {
            let expect = seq(&keys, Some(&vals), kind);
            for p in [2, 4, 8] {
                assert_eq!(grouped_agg(&keys, Some(&vals), kind, &aligned(p)).unwrap(), expect);
            }
        }
    }

    #[test]
    fn aligned_float_sum_is_byte_identical_to_sequential() {
        // The round-robin carve-out does not apply: all occurrences of a
        // key fold in input order inside one partition, so even the
        // catastrophic-cancellation input reproduces the sequential fold.
        let keys = Bat::transient(Column::Int(vec![0, 7, 0, 7, 0, 7, 0, 7]));
        let vals = Bat::transient(Column::Float(vec![1e16, 5.0, 1.0, 5.0, -1e16, 5.0, 1.0, 5.0]));
        let expect = seq(&keys, Some(&vals), AggKind::Sum);
        for p in [2, 4, 8] {
            assert_eq!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &aligned(p)).unwrap(), expect);
        }
    }

    #[test]
    fn elision_matches_sequential_even_on_mismarked_input() {
        // keys_vals is NOT scatter-ordered, so marking it aligned-input
        // exercises the degraded (per-row-runs) elision path: the hash
        // pass is the correctness check and the answer must not move.
        let (keys, vals) = keys_vals(97);
        let e0 = stats::scatter_elided();
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Count] {
            let vals_arg = (kind != AggKind::Count).then_some(&vals);
            let expect = seq(&keys, vals_arg, kind);
            for p in [2, 4, 8] {
                let cfg = aligned(p).with_aligned_input(true);
                assert_eq!(grouped_agg(&keys, vals_arg, kind, &cfg).unwrap(), expect, "P={p}");
            }
        }
        assert!(stats::scatter_elided() >= e0 + 9, "every elided call must be counted");
    }

    #[test]
    fn elision_on_genuinely_aligned_input_matches_roundrobin_and_sequential() {
        // Lay rows out partition-by-partition (what keyed ingest produces
        // when shards == partitions): the elision fast path sees one run
        // per partition and must still agree with every other mode.
        let pl = Placement::new(4);
        let mut by_part: Vec<Vec<(i64, i64)>> = vec![Vec::new(); 4];
        for i in 0..80i64 {
            let k = i % 9;
            by_part[pl.of_key(k)].push((k, i));
        }
        let rows: Vec<(i64, i64)> = by_part.concat();
        let keys = Bat::transient(Column::Int(rows.iter().map(|&(k, _)| k).collect()));
        let vals = Bat::transient(Column::Float(rows.iter().map(|&(_, v)| v as f64).collect()));
        let expect = seq(&keys, Some(&vals), AggKind::Sum);
        let elided = aligned(4).with_aligned_input(true);
        assert_eq!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &elided).unwrap(), expect);
        assert_eq!(grouped_agg(&keys, Some(&vals), AggKind::Sum, &aligned(4)).unwrap(), expect);
        let rr = grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(4)).unwrap();
        assert_eq!(rr.0, expect.0, "round-robin agrees on keys");
    }

    #[test]
    fn aligned_merge_takes_the_concat_fast_path() {
        let (keys, vals) = keys_vals(97);
        let (c0, r0) = (stats::merge_concat_fast_path(), stats::merge_regroup_fallback());
        grouped_agg(&keys, Some(&vals), AggKind::Sum, &aligned(4)).unwrap();
        assert!(stats::merge_concat_fast_path() > c0, "aligned merge must concat");
        grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(4)).unwrap();
        assert!(stats::merge_regroup_fallback() > r0, "round-robin merge must re-group");
    }

    #[test]
    fn stats_counters_observe_fanout() {
        let (keys, vals) = keys_vals(64);
        let (c0, p0) = (stats::grouped_agg_calls(), stats::grouped_agg_par_calls());
        grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(1)).unwrap();
        assert!(stats::grouped_agg_calls() > c0);
        grouped_agg(&keys, Some(&vals), AggKind::Sum, &ParConfig::new(4)).unwrap();
        assert!(stats::grouped_agg_par_calls() > p0);
    }
}
