//! Morsel-parallel tuple reconstruction (fetch / `leftfetchjoin`).
//!
//! The candidate list is carved into `P` contiguous balanced morsels (the
//! same carve as [`crate::Bat::chunks`]); each morsel gathers tail values
//! through the shared [`crate::algebra::fetch_oids`] loop on its own
//! scoped thread, and the per-morsel columns are concatenated in morsel
//! order. Because a fetch output is positionally aligned with its
//! candidate list, morsel-order concatenation *is* the sequential output:
//! `par::fetch` is byte-identical to [`algebra::fetch`] at every `P`, and
//! at `P = 1` it dispatches to it outright.

use super::{stats, ParConfig};
use crate::algebra::{self, fetch_oids};
use crate::column::Column;
use crate::{Bat, Result};

/// Parallel fetch: materialize `values[oid]` for every oid in `cands`,
/// over `P` candidate-list morsels. Inputs smaller than the partition
/// count fall back to the sequential path; errors (non-oid candidates,
/// out-of-range oids) propagate in morsel order, so the reported error is
/// the same one the sequential loop would hit first.
pub fn fetch(cands: &Bat, values: &Bat, cfg: &ParConfig) -> Result<Bat> {
    let p = cfg.partitions();
    if p <= 1 || cands.len() < p {
        stats::record_fetch(false);
        let start = datacell_telemetry::timer();
        let out = algebra::fetch(cands, values);
        stats::record_fetch_time(false, start);
        return out;
    }
    stats::record_fetch(true);
    let start = datacell_telemetry::timer();
    let oids = cands.tail.as_oid()?;
    let len = oids.len();
    // Same balanced carve as `Bat::chunks`: the first `len % p` morsels
    // get one extra row, so morsel boundaries are P-independent given the
    // same (len, p) pair.
    let (base, extra) = (len / p, len % p);
    let mut ranges = Vec::with_capacity(p);
    let mut off = 0usize;
    for i in 0..p {
        let size = base + usize::from(i < extra);
        ranges.push((off, size));
        off += size;
    }
    let partials: Vec<Result<Column>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(off, size)| s.spawn(move || fetch_oids(&oids[off..off + size], values)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("fetch morsel panicked")).collect()
    });
    let mut out = Column::with_capacity(values.data_type(), len);
    for partial in partials {
        out.append_owned(&mut partial?)?;
    }
    stats::record_fetch_time(true, start);
    Ok(Bat::transient(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelError;

    #[test]
    fn identical_to_sequential_at_every_p() {
        let values = Bat::new(50, Column::Int((0..97).map(|i| i * 3).collect()));
        let cand = Bat::transient(Column::Oid((0..97).rev().map(|i| 50 + i as u64).collect()));
        let seq = algebra::fetch(&cand, &values).unwrap();
        for p in [1, 2, 3, 8, 64] {
            let par = fetch(&cand, &values, &ParConfig::new(p)).unwrap();
            assert_eq!(par, seq, "P={p}");
        }
    }

    #[test]
    fn string_values_and_duplicates() {
        let values = Bat::new(0, Column::Str((0..20).map(|i| format!("v{i}")).collect()));
        let cand = Bat::transient(Column::Oid(vec![3, 3, 0, 19, 7, 7, 7, 1]));
        assert_eq!(
            fetch(&cand, &values, &ParConfig::new(4)).unwrap(),
            algebra::fetch(&cand, &values).unwrap()
        );
    }

    #[test]
    fn out_of_range_oid_reports_first_in_candidate_order() {
        let values = Bat::new(0, Column::Int(vec![1, 2]));
        let cand = Bat::transient(Column::Oid(vec![0, 9, 1, 7, 0, 0, 1, 1]));
        let err = fetch(&cand, &values, &ParConfig::new(4)).unwrap_err();
        assert!(matches!(err, KernelError::OidOutOfRange { oid: 9, .. }), "{err}");
    }

    #[test]
    fn empty_and_tiny_candidate_lists() {
        let values = Bat::new(0, Column::Int(vec![5, 6]));
        let cand = Bat::transient(Column::Oid(vec![]));
        assert!(fetch(&cand, &values, &ParConfig::new(4)).unwrap().is_empty());
        let one = Bat::transient(Column::Oid(vec![1]));
        assert_eq!(fetch(&one, &values, &ParConfig::new(4)).unwrap().tail, Column::Int(vec![6]));
    }
}
