//! Kernel error type.

use crate::value::DataType;
use std::fmt;

/// Errors raised by kernel storage and algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// An operator received a column of an unexpected type.
    TypeMismatch {
        /// The operation that failed.
        op: &'static str,
        /// The type it expected.
        expected: DataType,
        /// The type it received.
        found: DataType,
    },
    /// Two columns that must be aligned have different lengths.
    LengthMismatch {
        /// The operation that failed.
        op: &'static str,
        /// Length of the left input.
        left: usize,
        /// Length of the right input.
        right: usize,
    },
    /// An oid in a candidate list does not fall inside the target BAT.
    OidOutOfRange {
        /// The offending oid.
        oid: u64,
        /// First oid of the target BAT.
        hseq: u64,
        /// Number of tuples in the target BAT.
        len: usize,
    },
    /// A named column or table does not exist.
    NotFound(String),
    /// A table or column with this name already exists.
    AlreadyExists(String),
    /// Catch-all for unsupported operations (e.g. grouping on floats).
    Unsupported(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::TypeMismatch { op, expected, found } => {
                write!(f, "{op}: type mismatch (expected {expected}, found {found})")
            }
            KernelError::LengthMismatch { op, left, right } => {
                write!(f, "{op}: length mismatch ({left} vs {right})")
            }
            KernelError::OidOutOfRange { oid, hseq, len } => {
                write!(f, "oid {oid} outside BAT [{hseq}, {})", hseq + *len as u64)
            }
            KernelError::NotFound(name) => write!(f, "not found: {name}"),
            KernelError::AlreadyExists(name) => write!(f, "already exists: {name}"),
            KernelError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_type_mismatch() {
        let e = KernelError::TypeMismatch {
            op: "select",
            expected: DataType::Int,
            found: DataType::Float,
        };
        assert_eq!(e.to_string(), "select: type mismatch (expected int, found float)");
    }

    #[test]
    fn display_oid_out_of_range() {
        let e = KernelError::OidOutOfRange { oid: 12, hseq: 0, len: 10 };
        assert_eq!(e.to_string(), "oid 12 outside BAT [0, 10)");
    }

    #[test]
    fn display_not_found_and_exists() {
        assert_eq!(KernelError::NotFound("t".into()).to_string(), "not found: t");
        assert_eq!(KernelError::AlreadyExists("t".into()).to_string(), "already exists: t");
    }
}
