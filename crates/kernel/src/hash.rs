//! Fast hashing for kernel hash tables.
//!
//! The kernel's hash joins and group-bys are the hot loops of every query.
//! `std`'s default SipHash is DoS-resistant but ~4× slower than needed for
//! trusted in-process keys; column stores (MonetDB included) use simple
//! multiplicative bucket hashing. This module provides a Fibonacci-style
//! multiply-xor hasher (the `fxhash` construction) and table aliases used
//! throughout the kernel.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher: `state = (state ^ word) * K` per 8-byte word, with
/// `K` the 64-bit golden-ratio constant. Not DoS-resistant — kernel hash
/// tables are built over in-process data only.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the input; tail bytes are zero-padded.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.write_word(w);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.write_word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write_word(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_word(v as u64);
    }
}

impl FastHasher {
    #[inline]
    fn write_word(&mut self, w: u64) {
        self.state = (self.state ^ w).wrapping_mul(K).rotate_left(20);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher — the kernel's table type.
pub type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// A `FastMap` with reserved capacity.
pub fn fast_map_with_capacity<Key, V>(cap: usize) -> FastMap<Key, V>
where
    Key: std::hash::Hash + Eq,
{
    FastMap::with_capacity_and_hasher(cap, FastBuild::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_of(42i64), hash_of(42i64));
        assert_ne!(hash_of(42i64), hash_of(43i64));
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn low_bit_diffusion() {
        // Sequential keys must not collide in the low bits the table uses.
        let mut low: std::collections::HashSet<u64> = Default::default();
        for k in 0i64..1000 {
            low.insert(hash_of(k) & 0xFFFF);
        }
        assert!(low.len() > 900, "poor diffusion: {} distinct low words", low.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<i64, i64> = fast_map_with_capacity(16);
        for k in 0..100 {
            m.insert(k, k * 2);
        }
        for k in 0..100 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn string_keys() {
        let mut m: FastMap<String, usize> = FastMap::default();
        m.insert("x1".into(), 1);
        m.insert("x2".into(), 2);
        assert_eq!(m["x1"], 1);
        assert_eq!(m["x2"], 2);
    }
}
