//! Fast hashing for kernel hash tables.
//!
//! The kernel's hash joins and group-bys are the hot loops of every query.
//! `std`'s default SipHash is DoS-resistant but ~4× slower than needed for
//! trusted in-process keys; column stores (MonetDB included) use simple
//! multiplicative bucket hashing. This module provides a Fibonacci-style
//! multiply-xor hasher (the `fxhash` construction) and table aliases used
//! throughout the kernel.

use crate::column::ColumnSlice;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};

/// Multiply-xor hasher: `state = (state ^ word) * K` per 8-byte word, with
/// `K` the 64-bit golden-ratio constant. Not DoS-resistant — kernel hash
/// tables are built over in-process data only.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the input; tail bytes are zero-padded.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.write_word(w);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.write_word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write_word(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_word(v as u64);
    }
}

impl FastHasher {
    #[inline]
    fn write_word(&mut self, w: u64) {
        self.state = (self.state ^ w).wrapping_mul(K).rotate_left(20);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher — the kernel's table type.
pub type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// A `FastMap` with reserved capacity.
pub fn fast_map_with_capacity<Key, V>(cap: usize) -> FastMap<Key, V>
where
    Key: std::hash::Hash + Eq,
{
    FastMap::with_capacity_and_hasher(cap, FastBuild::default())
}

/// The canonical key-hash → partition map.
///
/// One definition of "which partition owns this key" shared by every
/// layer that splits data by key: basket staging-shard choice, radix-join
/// partitioning, and aligned grouped-aggregation morsels. Because they
/// all agree, data keyed at ingest lands pre-partitioned for the kernel
/// operators — per-partition partials own disjoint key sets and merges
/// degenerate to concatenation.
///
/// The map takes the *upper* 32 bits of the [`FastHasher`] value modulo
/// the partition count, so it stays uncorrelated with the low bits hash
/// tables use for bucket indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    parts: usize,
}

impl Placement {
    /// A placement over `parts` partitions (clamped to at least 1).
    pub fn new(parts: usize) -> Placement {
        Placement { parts: parts.max(1) }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Partition owning a precomputed [`FastHasher`] hash.
    #[inline]
    pub fn of_hash(&self, h: u64) -> usize {
        ((h >> 32) as usize) % self.parts
    }

    /// Partition owning `key`. String keys must be hashed as `&str` so
    /// `String` and `&str` forms of the same key agree (both delegate to
    /// `str::hash`); float keys must be hashed by bit pattern
    /// (`f64::to_bits`), matching the group-by's key identity.
    #[inline]
    pub fn of_key<K: std::hash::Hash>(&self, key: K) -> usize {
        self.of_hash(FastBuild::default().hash_one(key))
    }

    /// Scatter a column of keys: position lists per partition, each
    /// ascending, covering every input position exactly once. This is the
    /// one typed hash loop behind keyed basket staging and aligned kernel
    /// partitioning.
    pub fn scatter(&self, keys: &ColumnSlice<'_>) -> Vec<Vec<u32>> {
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); self.parts];
        if self.parts == 1 {
            parts[0] = (0..keys.len() as u32).collect();
            return parts;
        }
        match keys {
            ColumnSlice::Int(v) => {
                for (i, &k) in v.iter().enumerate() {
                    parts[self.of_key(k)].push(i as u32);
                }
            }
            ColumnSlice::Oid(v) => {
                for (i, &k) in v.iter().enumerate() {
                    parts[self.of_key(k)].push(i as u32);
                }
            }
            ColumnSlice::Bool(v) => {
                for (i, &k) in v.iter().enumerate() {
                    parts[self.of_key(k)].push(i as u32);
                }
            }
            ColumnSlice::Str(v) => {
                for (i, k) in v.iter().enumerate() {
                    parts[self.of_key(k.as_str())].push(i as u32);
                }
            }
            ColumnSlice::Float(v) => {
                for (i, &k) in v.iter().enumerate() {
                    parts[self.of_key(k.to_bits())].push(i as u32);
                }
            }
        }
        parts
    }

    /// Run-length-compressed scatter: per partition, maximal runs of
    /// consecutive positions `(start, len)` instead of one entry per row.
    ///
    /// Same single hash pass and same partition-of-each-position answer as
    /// [`Placement::scatter`] (the hash *is* the correctness check — the
    /// caller's alignment claim is never trusted), but on input that keyed
    /// ingest already scatter-ordered, each partition collapses to a
    /// handful of runs and downstream copies become bulk
    /// `extend_from_slice`s ([`crate::Column::gather_ranges`]) rather than
    /// per-element gathers. Unclustered input degrades gracefully to
    /// per-row runs — slower, never wrong.
    pub fn scatter_runs(&self, keys: &ColumnSlice<'_>) -> Vec<Vec<(u32, u32)>> {
        let mut parts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.parts];
        let len = keys.len() as u32;
        if self.parts == 1 {
            if len > 0 {
                parts[0].push((0, len));
            }
            return parts;
        }
        let push =
            |parts: &mut Vec<Vec<(u32, u32)>>, part: usize, i: u32| match parts[part].last_mut() {
                Some((start, n)) if *start + *n == i => *n += 1,
                _ => parts[part].push((i, 1)),
            };
        match keys {
            ColumnSlice::Int(v) => {
                for (i, &k) in v.iter().enumerate() {
                    push(&mut parts, self.of_key(k), i as u32);
                }
            }
            ColumnSlice::Oid(v) => {
                for (i, &k) in v.iter().enumerate() {
                    push(&mut parts, self.of_key(k), i as u32);
                }
            }
            ColumnSlice::Bool(v) => {
                for (i, &k) in v.iter().enumerate() {
                    push(&mut parts, self.of_key(k), i as u32);
                }
            }
            ColumnSlice::Str(v) => {
                for (i, k) in v.iter().enumerate() {
                    push(&mut parts, self.of_key(k.as_str()), i as u32);
                }
            }
            ColumnSlice::Float(v) => {
                for (i, &k) in v.iter().enumerate() {
                    push(&mut parts, self.of_key(k.to_bits()), i as u32);
                }
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_of(42i64), hash_of(42i64));
        assert_ne!(hash_of(42i64), hash_of(43i64));
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn low_bit_diffusion() {
        // Sequential keys must not collide in the low bits the table uses.
        let mut low: std::collections::HashSet<u64> = Default::default();
        for k in 0i64..1000 {
            low.insert(hash_of(k) & 0xFFFF);
        }
        assert!(low.len() > 900, "poor diffusion: {} distinct low words", low.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<i64, i64> = fast_map_with_capacity(16);
        for k in 0..100 {
            m.insert(k, k * 2);
        }
        for k in 0..100 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn string_keys() {
        let mut m: FastMap<String, usize> = FastMap::default();
        m.insert("x1".into(), 1);
        m.insert("x2".into(), 2);
        assert_eq!(m["x1"], 1);
        assert_eq!(m["x2"], 2);
    }

    #[test]
    fn placement_is_the_upper_half_of_the_fast_hash() {
        // The one formula every layer must agree on: upper 32 bits of the
        // fast hash, modulo the partition count.
        for p in [1usize, 2, 4, 8] {
            let pl = Placement::new(p);
            for k in [0i64, 1, -1, 42, 1 << 40] {
                assert_eq!(pl.of_key(k), ((hash_of(k) >> 32) as usize) % p);
            }
            assert_eq!(pl.of_key("basket"), ((hash_of("basket") >> 32) as usize) % p);
        }
        assert_eq!(Placement::new(0).parts(), 1, "clamps to one partition");
    }

    #[test]
    fn placement_pins_the_key_to_partition_mapping() {
        // Literal pins: if these move, ingest-time shard choice and
        // kernel-partition choice silently diverge across versions.
        let p4 = Placement::new(4);
        let ints: Vec<usize> = (0i64..8).map(|k| p4.of_key(k)).collect();
        assert_eq!(ints, PINNED_INT_P4);
        let strs: Vec<usize> =
            ["a", "b", "c", "stream", "basket"].iter().map(|s| p4.of_key(*s)).collect();
        assert_eq!(strs, PINNED_STR_P4);
    }

    /// `Placement::new(4).of_key(k)` for `k in 0i64..8`.
    const PINNED_INT_P4: [usize; 8] = [0, 3, 3, 3, 3, 2, 2, 2];
    /// `Placement::new(4).of_key(s)` for `["a", "b", "c", "stream", "basket"]`.
    const PINNED_STR_P4: [usize; 5] = [0, 3, 1, 2, 3];

    #[test]
    fn placement_string_and_str_forms_agree() {
        let pl = Placement::new(8);
        for s in ["", "a", "stream-key", "x1"] {
            assert_eq!(pl.of_key(s), pl.of_key(String::from(s).as_str()));
        }
    }

    #[test]
    fn scatter_partitions_every_position_once_in_order() {
        use crate::column::Column;
        let cols = [
            Column::Int((0..100).map(|i| i * 7 - 50).collect()),
            Column::Str((0..100).map(|i| format!("k{}", i % 13)).collect()),
            Column::Float((0..100).map(|i| i as f64 / 3.0).collect()),
            Column::Oid((0..100).collect()),
            Column::Bool((0..100).map(|i| i % 2 == 0).collect()),
        ];
        for col in &cols {
            for p in [1usize, 3, 8] {
                let parts = Placement::new(p).scatter(&col.as_slice());
                assert_eq!(parts.len(), p);
                let mut seen: Vec<u32> = Vec::new();
                for part in &parts {
                    assert!(part.windows(2).all(|w| w[0] < w[1]), "positions ascend");
                    seen.extend_from_slice(part);
                }
                seen.sort_unstable();
                assert_eq!(seen, (0..100u32).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn scatter_runs_agree_with_scatter_everywhere() {
        use crate::column::Column;
        let cols = [
            // Unclustered keys (worst case: mostly length-1 runs).
            Column::Int((0..60).map(|i| i % 7).collect()),
            // Scatter-ordered input: positions grouped by partition, the
            // case ingest alignment produces — runs collapse.
            {
                let pl = Placement::new(4);
                let mut by_part: Vec<Vec<i64>> = vec![Vec::new(); 4];
                for k in 0..60i64 {
                    by_part[pl.of_key(k)].push(k);
                }
                Column::Int(by_part.concat())
            },
            Column::Str((0..60).map(|i| format!("k{}", i % 9)).collect()),
            Column::Float((0..60).map(|i| f64::from(i) * 0.25).collect()),
        ];
        for col in &cols {
            for p in [1usize, 4, 8] {
                let pl = Placement::new(p);
                let runs = pl.scatter_runs(&col.as_slice());
                let expanded: Vec<Vec<u32>> = runs
                    .iter()
                    .map(|rs| rs.iter().flat_map(|&(s, n)| s..s + n).collect())
                    .collect();
                assert_eq!(expanded, pl.scatter(&col.as_slice()), "p={p}");
                // Runs must be maximal: no two adjacent runs touch.
                for rs in &runs {
                    assert!(rs.windows(2).all(|w| w[0].0 + w[0].1 < w[1].0), "non-maximal run");
                }
            }
        }
    }

    #[test]
    fn scatter_runs_collapse_on_aligned_input() {
        // Input laid out partition-by-partition must produce exactly one
        // run per non-empty partition.
        let pl = Placement::new(4);
        let mut by_part: Vec<Vec<i64>> = vec![Vec::new(); 4];
        for k in 0..40i64 {
            by_part[pl.of_key(k)].push(k);
        }
        let col = crate::column::Column::Int(by_part.concat());
        let runs = pl.scatter_runs(&col.as_slice());
        for (part, rs) in runs.iter().enumerate() {
            assert!(rs.len() <= 1, "partition {part} fragmented: {rs:?}");
        }
        assert!(pl.scatter_runs(&crate::column::Column::Int(vec![]).as_slice())[0].is_empty());
    }

    #[test]
    fn scatter_routes_equal_keys_to_one_partition() {
        let col = crate::column::Column::Int(vec![5, 9, 5, 9, 5]);
        let parts = Placement::new(8).scatter(&col.as_slice());
        let home5 = Placement::new(8).of_key(5i64);
        let home9 = Placement::new(8).of_key(9i64);
        assert_eq!(parts[home5], if home5 == home9 { vec![0, 1, 2, 3, 4] } else { vec![0, 2, 4] });
        if home5 != home9 {
            assert_eq!(parts[home9], vec![1, 3]);
        }
    }
}
