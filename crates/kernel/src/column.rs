//! Typed columns and zero-copy column slices.
//!
//! A [`Column`] is a monomorphic vector — one per attribute, exactly like a
//! MonetDB BAT tail. All bulk operators in [`crate::algebra`] dispatch on the
//! type tag once and then run a tight monomorphic loop, which is the
//! "vector-like operator implementation" the paper's §2 describes.
//!
//! [`ColumnSlice`] is a borrowed window into a column. DataCell's *split*
//! step ("an almost zero cost operation \[that\] results in creating a number
//! of views over the base input basket", paper §3) is implemented by slicing.

use crate::error::KernelError;
use crate::value::{DataType, Value};
use crate::{Oid, Result};

/// A typed, fully materialized column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Object identifiers (candidate lists, join results).
    Oid(Vec<Oid>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Oid => Column::Oid(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Oid => Column::Oid(Vec::with_capacity(cap)),
        }
    }

    /// The type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
            Column::Oid(_) => DataType::Oid,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Oid(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch one value by position (bounds-checked).
    pub fn get(&self, i: usize) -> Option<Value> {
        if i >= self.len() {
            return None;
        }
        Some(match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Oid(v) => Value::Oid(v[i]),
        })
    }

    /// Append a scalar; errors if the type does not match.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (Column::Int(c), Value::Int(v)) => c.push(v),
            (Column::Float(c), Value::Float(v)) => c.push(v),
            (Column::Str(c), Value::Str(v)) => c.push(v),
            (Column::Bool(c), Value::Bool(v)) => c.push(v),
            (Column::Oid(c), Value::Oid(v)) => c.push(v),
            (c, v) => {
                return Err(KernelError::TypeMismatch {
                    op: "push",
                    expected: c.data_type(),
                    found: v.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Shorten the column to at most `len` values (no-op when already
    /// shorter). Row-oriented writers use it to roll back a partially
    /// appended row when a later column of the same row rejects its value.
    pub fn truncate(&mut self, len: usize) {
        match self {
            Column::Int(v) => v.truncate(len),
            Column::Float(v) => v.truncate(len),
            Column::Str(v) => v.truncate(len),
            Column::Bool(v) => v.truncate(len),
            Column::Oid(v) => v.truncate(len),
        }
    }

    /// Append all values of `other` (same type) onto `self`.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Oid(a), Column::Oid(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(KernelError::TypeMismatch {
                    op: "append",
                    expected: a.data_type(),
                    found: b.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Move all values of `other` (same type) onto `self`, leaving `other`
    /// empty. Unlike [`Column::append`] this transfers ownership, so
    /// string payloads are moved rather than cloned — the merge step of
    /// parallel operators uses it to stitch owned partials without a
    /// second copy.
    pub fn append_owned(&mut self, other: &mut Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.append(b),
            (Column::Float(a), Column::Float(b)) => a.append(b),
            (Column::Str(a), Column::Str(b)) => a.append(b),
            (Column::Bool(a), Column::Bool(b)) => a.append(b),
            (Column::Oid(a), Column::Oid(b)) => a.append(b),
            (a, b) => {
                return Err(KernelError::TypeMismatch {
                    op: "append_owned",
                    expected: a.data_type(),
                    found: b.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Materialize the values at `positions` (in order) into a new column.
    ///
    /// Panics if any position is out of bounds (an internal invariant
    /// violation — callers produce positions from the column itself).
    pub fn gather(&self, positions: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Float(v) => Column::Float(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Str(v) => {
                Column::Str(positions.iter().map(|&p| v[p as usize].clone()).collect())
            }
            Column::Bool(v) => Column::Bool(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Oid(v) => Column::Oid(positions.iter().map(|&p| v[p as usize]).collect()),
        }
    }

    /// Materialize the values covered by `(start, len)` runs (in order)
    /// into a new column — the bulk-copy counterpart of [`Column::gather`]
    /// for run-length-compressed position lists
    /// ([`crate::hash::Placement::scatter_runs`]): each run is one
    /// `extend_from_slice` instead of `len` per-element copies.
    ///
    /// Panics if any run is out of bounds (an internal invariant
    /// violation — callers produce runs from the column itself).
    pub fn gather_ranges(&self, runs: &[(u32, u32)]) -> Column {
        let total: usize = runs.iter().map(|&(_, n)| n as usize).sum();
        fn fill<T: Clone>(v: &[T], runs: &[(u32, u32)], total: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(total);
            for &(start, n) in runs {
                out.extend_from_slice(&v[start as usize..(start + n) as usize]);
            }
            out
        }
        match self {
            Column::Int(v) => Column::Int(fill(v, runs, total)),
            Column::Float(v) => Column::Float(fill(v, runs, total)),
            Column::Str(v) => Column::Str(fill(v, runs, total)),
            Column::Bool(v) => Column::Bool(fill(v, runs, total)),
            Column::Oid(v) => Column::Oid(fill(v, runs, total)),
        }
    }

    /// Borrow the whole column as a slice view.
    pub fn as_slice(&self) -> ColumnSlice<'_> {
        self.slice(0, self.len())
    }

    /// Borrow `[offset, offset+len)` as a zero-copy view.
    ///
    /// Panics if the range is out of bounds (an internal invariant violation,
    /// not a user-facing error path).
    pub fn slice(&self, offset: usize, len: usize) -> ColumnSlice<'_> {
        match self {
            Column::Int(v) => ColumnSlice::Int(&v[offset..offset + len]),
            Column::Float(v) => ColumnSlice::Float(&v[offset..offset + len]),
            Column::Str(v) => ColumnSlice::Str(&v[offset..offset + len]),
            Column::Bool(v) => ColumnSlice::Bool(&v[offset..offset + len]),
            Column::Oid(v) => ColumnSlice::Oid(&v[offset..offset + len]),
        }
    }

    /// Copy the sub-range `[offset, offset+len)` into an owned column.
    pub fn slice_owned(&self, offset: usize, len: usize) -> Column {
        self.slice(offset, len).to_column()
    }

    /// Remove the first `n` values in place (window expiry on baskets).
    pub fn drain_front(&mut self, n: usize) {
        match self {
            Column::Int(v) => {
                v.drain(..n);
            }
            Column::Float(v) => {
                v.drain(..n);
            }
            Column::Str(v) => {
                v.drain(..n);
            }
            Column::Bool(v) => {
                v.drain(..n);
            }
            Column::Oid(v) => {
                v.drain(..n);
            }
        }
    }

    /// Iterate values as [`Value`]s (slow path — tests and row emission only).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("in range"))
    }

    /// Borrow as `&[i64]`, or error.
    pub fn as_int(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            c => Err(type_err("as_int", DataType::Int, c.data_type())),
        }
    }

    /// Borrow as `&[f64]`, or error.
    pub fn as_float(&self) -> Result<&[f64]> {
        match self {
            Column::Float(v) => Ok(v),
            c => Err(type_err("as_float", DataType::Float, c.data_type())),
        }
    }

    /// Borrow as `&[Oid]`, or error.
    pub fn as_oid(&self) -> Result<&[Oid]> {
        match self {
            Column::Oid(v) => Ok(v),
            c => Err(type_err("as_oid", DataType::Oid, c.data_type())),
        }
    }

    /// Borrow as `&[String]`, or error.
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            Column::Str(v) => Ok(v),
            c => Err(type_err("as_str", DataType::Str, c.data_type())),
        }
    }

    /// Borrow as `&[bool]`, or error.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            c => Err(type_err("as_bool", DataType::Bool, c.data_type())),
        }
    }
}

fn type_err(op: &'static str, expected: DataType, found: DataType) -> KernelError {
    KernelError::TypeMismatch { op, expected, found }
}

/// A borrowed, zero-copy view of a contiguous column range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnSlice<'a> {
    /// View of 64-bit integers.
    Int(&'a [i64]),
    /// View of 64-bit floats.
    Float(&'a [f64]),
    /// View of strings.
    Str(&'a [String]),
    /// View of booleans.
    Bool(&'a [bool]),
    /// View of oids.
    Oid(&'a [Oid]),
}

impl<'a> ColumnSlice<'a> {
    /// The type of the viewed column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnSlice::Int(_) => DataType::Int,
            ColumnSlice::Float(_) => DataType::Float,
            ColumnSlice::Str(_) => DataType::Str,
            ColumnSlice::Bool(_) => DataType::Bool,
            ColumnSlice::Oid(_) => DataType::Oid,
        }
    }

    /// Number of values in view.
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::Int(v) => v.len(),
            ColumnSlice::Float(v) => v.len(),
            ColumnSlice::Str(v) => v.len(),
            ColumnSlice::Bool(v) => v.len(),
            ColumnSlice::Oid(v) => v.len(),
        }
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the view into an owned column.
    pub fn to_column(&self) -> Column {
        match self {
            ColumnSlice::Int(v) => Column::Int(v.to_vec()),
            ColumnSlice::Float(v) => Column::Float(v.to_vec()),
            ColumnSlice::Str(v) => Column::Str(v.to_vec()),
            ColumnSlice::Bool(v) => Column::Bool(v.to_vec()),
            ColumnSlice::Oid(v) => Column::Oid(v.to_vec()),
        }
    }

    /// Narrow the view further.
    pub fn subslice(&self, offset: usize, len: usize) -> ColumnSlice<'a> {
        match self {
            ColumnSlice::Int(v) => ColumnSlice::Int(&v[offset..offset + len]),
            ColumnSlice::Float(v) => ColumnSlice::Float(&v[offset..offset + len]),
            ColumnSlice::Str(v) => ColumnSlice::Str(&v[offset..offset + len]),
            ColumnSlice::Bool(v) => ColumnSlice::Bool(&v[offset..offset + len]),
            ColumnSlice::Oid(v) => ColumnSlice::Oid(&v[offset..offset + len]),
        }
    }

    /// Fetch one value by position.
    pub fn get(&self, i: usize) -> Option<Value> {
        if i >= self.len() {
            return None;
        }
        Some(match self {
            ColumnSlice::Int(v) => Value::Int(v[i]),
            ColumnSlice::Float(v) => Value::Float(v[i]),
            ColumnSlice::Str(v) => Value::Str(v[i].clone()),
            ColumnSlice::Bool(v) => Value::Bool(v[i]),
            ColumnSlice::Oid(v) => Value::Oid(v[i]),
        })
    }
}

impl FromIterator<i64> for Column {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Column::Int(iter.into_iter().collect())
    }
}

impl FromIterator<f64> for Column {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Column::Float(iter.into_iter().collect())
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Int(v)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Float(v)
    }
}

impl From<Vec<Oid>> for Column {
    fn from(v: Vec<Oid>) -> Self {
        Column::Oid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_ranges_matches_expanded_gather() {
        let cols = [
            Column::Int((0..20).collect()),
            Column::Str((0..20).map(|i| format!("s{i}")).collect()),
            Column::Float((0..20).map(f64::from).collect()),
        ];
        let runs: &[(u32, u32)] = &[(3, 4), (0, 1), (15, 5), (7, 1)];
        let expanded: Vec<u32> = runs.iter().flat_map(|&(s, n)| s..s + n).collect();
        for c in &cols {
            assert_eq!(c.gather_ranges(runs), c.gather(&expanded));
        }
        assert_eq!(cols[0].gather_ranges(&[]), Column::Int(vec![]));
    }

    #[test]
    fn empty_and_capacity() {
        for dt in [DataType::Int, DataType::Float, DataType::Str, DataType::Bool, DataType::Oid] {
            let c = Column::empty(dt);
            assert_eq!(c.data_type(), dt);
            assert!(c.is_empty());
            let c = Column::with_capacity(dt, 16);
            assert_eq!(c.len(), 0);
        }
    }

    #[test]
    fn push_and_get() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Int(-1)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Some(Value::Int(3)));
        assert_eq!(c.get(1), Some(Value::Int(-1)));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::empty(DataType::Int);
        let err = c.push(Value::Float(1.0)).unwrap_err();
        assert!(matches!(err, KernelError::TypeMismatch { op: "push", .. }));
    }

    #[test]
    fn append_same_type() {
        let mut a = Column::Int(vec![1, 2]);
        let b = Column::Int(vec![3]);
        a.append(&b).unwrap();
        assert_eq!(a, Column::Int(vec![1, 2, 3]));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Column::Int(vec![1]);
        assert!(a.append(&Column::Float(vec![1.0])).is_err());
    }

    #[test]
    fn slice_views_are_zero_copy_ranges() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let s = c.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some(Value::Int(20)));
        assert_eq!(s.to_column(), Column::Int(vec![20, 30]));
        let ss = s.subslice(1, 1);
        assert_eq!(ss.to_column(), Column::Int(vec![30]));
    }

    #[test]
    fn append_owned_moves_values() {
        let mut a = Column::Str(vec!["a".into()]);
        let mut b = Column::Str(vec!["b".into(), "c".into()]);
        a.append_owned(&mut b).unwrap();
        assert_eq!(a, Column::Str(vec!["a".into(), "b".into(), "c".into()]));
        assert!(b.is_empty());
        assert!(a.append_owned(&mut Column::Int(vec![1])).is_err());
    }

    #[test]
    fn gather_reorders_and_repeats() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.gather(&[2, 0, 0]), Column::Str(vec!["c".into(), "a".into(), "a".into()]));
        assert_eq!(Column::Int(vec![5, 6]).gather(&[]), Column::Int(vec![]));
    }

    #[test]
    fn slice_owned_copies() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.slice_owned(2, 1), Column::Str(vec!["c".into()]));
    }

    #[test]
    fn drain_front_expires_prefix() {
        let mut c = Column::Float(vec![1.0, 2.0, 3.0]);
        c.drain_front(2);
        assert_eq!(c, Column::Float(vec![3.0]));
        c.drain_front(0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn typed_accessors() {
        assert_eq!(Column::Int(vec![1]).as_int().unwrap(), &[1]);
        assert_eq!(Column::Float(vec![1.5]).as_float().unwrap(), &[1.5]);
        assert_eq!(Column::Oid(vec![7]).as_oid().unwrap(), &[7]);
        assert!(Column::Int(vec![1]).as_float().is_err());
        assert!(Column::Bool(vec![true]).as_bool().unwrap()[0]);
        assert_eq!(Column::Str(vec!["x".into()]).as_str().unwrap()[0], "x");
    }

    #[test]
    fn iter_values_roundtrip() {
        let c = Column::Int(vec![5, 6]);
        let vals: Vec<Value> = c.iter_values().collect();
        assert_eq!(vals, vec![Value::Int(5), Value::Int(6)]);
    }

    #[test]
    fn from_impls() {
        let c: Column = vec![1i64, 2].into();
        assert_eq!(c.data_type(), DataType::Int);
        let c: Column = (0..3).map(|i| i as f64).collect();
        assert_eq!(c.len(), 3);
    }
}
