//! # datacell-kernel
//!
//! A miniature column-store execution kernel modelled after MonetDB, the
//! substrate on which the DataCell stream engine (EDBT 2013) is built.
//!
//! The kernel provides:
//!
//! * [`Column`] — monomorphic typed vectors, the unit of storage;
//! * [`Bat`] — *Binary Association Tables*: a virtual head of densely
//!   ascending object identifiers ([`Oid`]) paired with a tail column;
//! * bulk, operator-at-a-time columnar algebra in [`algebra`] — every
//!   operator consumes whole columns and **fully materializes** its result.
//!   This materialization property is exactly what DataCell exploits to
//!   freeze/resume query plans at arbitrary points (paper §3, *Exploit
//!   Column-store Intermediates*);
//! * a [`catalog::Catalog`] of persistent tables so that continuous queries
//!   can join streams against stored relations (paper Fig. 1: a single
//!   factory interacts with both baskets and tables);
//! * a partitioned parallel runtime in [`par`] — radix-partitioned hash
//!   join, chunk-parallel select, morsel-parallel fetch and sort, and
//!   merged grouped-aggregate partials — so a single heavy operator can
//!   use several cores ([`ParConfig`] / `DATACELL_PARTITIONS`). When the
//!   caller vouches that its input is placement-aligned
//!   ([`ParConfig::with_aligned_input`]), the aggregate and join kernels
//!   elide their internal re-scatter.
//!
//! Design notes:
//!
//! * Selections produce *candidate lists* (BATs with an `Oid` tail), which
//!   other operators accept for late tuple reconstruction, mirroring
//!   MonetDB's two-phase select/fetch execution.
//! * There is no NULL support: streams in the paper's evaluation are
//!   NULL-free, and omitting NULLs keeps the bulk loops branch-free.
//! * Grouping and join keys must be hashable (`Int`, `Str`, `Bool`, `Oid`);
//!   `Float` keys are rejected with [`KernelError::TypeMismatch`].

pub mod algebra;
pub mod bat;
pub mod catalog;
pub mod column;
pub mod error;
pub mod hash;
pub mod par;
pub mod value;

pub use bat::Bat;
pub use catalog::{Catalog, Table};
pub use column::{Column, ColumnSlice};
pub use error::KernelError;
pub use hash::Placement;
pub use par::{ParConfig, PlacementMode};
pub use value::{DataType, Value};

/// Object identifier: the position of a tuple in its (possibly unbounded)
/// stream or table, counted from the first tuple ever inserted.
pub type Oid = u64;

/// Result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, KernelError>;
