//! Scalar values and data types.

use crate::Oid;
use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Object identifier (tuple position).
    Oid,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Oid => "oid",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// `Value` is the boundary type between the typed bulk loops of the kernel
/// and the untyped world of plans and SQL literals. The kernel never stores
/// `Value`s row-by-row; they appear only as operator parameters (selection
/// bounds, map constants) and scalar aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Object identifier.
    Oid(Oid),
}

impl Value {
    /// The type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
            Value::Oid(_) => DataType::Oid,
        }
    }

    /// Interpret as f64 where a numeric value is required (int widens).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Oid(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interpret as i64 where an integral value is required.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Oid(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Total order across values of the same type; floats use IEEE total
    /// ordering so that sorting is well-defined. Cross-type comparisons
    /// compare numerics numerically and otherwise order by type tag.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Oid(a), Oid(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Oid(_) => 3,
        Value::Str(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Oid(v) => write!(f, "{v}@oid"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_roundtrip() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.0).data_type(), DataType::Float);
        assert_eq!(Value::from("x").data_type(), DataType::Str);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Oid(3).data_type(), DataType::Oid);
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), None);
    }

    #[test]
    fn total_cmp_same_type() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::from("b").total_cmp(&Value::from("a")), Ordering::Greater);
    }

    #[test]
    fn total_cmp_mixed_numeric() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Oid(9).to_string(), "9@oid");
    }
}
