//! Persistent tables and the catalog.
//!
//! DataCell's architecture keeps baskets and tables "within the same
//! processing fabric" (paper Fig. 1): a continuous query may join stream
//! data against stored relations. The catalog is that stored-relation side.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::KernelError;
use crate::value::DataType;
use crate::{Oid, Result};
use std::collections::HashMap;

/// A persistent relational table stored column-wise: one BAT per attribute.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    /// Attribute names in declaration order.
    order: Vec<String>,
    cols: HashMap<String, Column>,
    nrows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: &[(&str, DataType)]) -> Table {
        let mut cols = HashMap::new();
        let mut order = Vec::new();
        for (n, dt) in schema {
            order.push((*n).to_owned());
            cols.insert((*n).to_owned(), Column::empty(*dt));
        }
        Table { name: name.into(), order, cols, nrows: 0 }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Attribute names in declaration order.
    pub fn columns(&self) -> &[String] {
        &self.order
    }

    /// The BAT of one attribute (hseq 0: tables are never windowed).
    pub fn bat(&self, col: &str) -> Result<Bat> {
        let c = self
            .cols
            .get(col)
            .ok_or_else(|| KernelError::NotFound(format!("{}.{}", self.name, col)))?;
        Ok(Bat::new(0, c.clone()))
    }

    /// Borrow one attribute column.
    pub fn column(&self, col: &str) -> Result<&Column> {
        self.cols.get(col).ok_or_else(|| KernelError::NotFound(format!("{}.{}", self.name, col)))
    }

    /// The declared type of one attribute (plan verification seeds its
    /// type inference from this at `sql.bind` sites).
    pub fn column_type(&self, col: &str) -> Result<DataType> {
        self.column(col).map(Column::data_type)
    }

    /// The full schema in declaration order.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.order.iter().map(|n| (n.clone(), self.cols[n].data_type())).collect()
    }

    /// Append one batch of aligned columns (in declaration order).
    pub fn append(&mut self, batch: &[Column]) -> Result<()> {
        if batch.len() != self.order.len() {
            return Err(KernelError::LengthMismatch {
                op: "table append",
                left: batch.len(),
                right: self.order.len(),
            });
        }
        let n = batch.first().map_or(0, super::column::Column::len);
        for c in batch {
            if c.len() != n {
                return Err(KernelError::LengthMismatch {
                    op: "table append",
                    left: c.len(),
                    right: n,
                });
            }
        }
        for (name, col) in self.order.iter().zip(batch) {
            self.cols.get_mut(name).expect("schema column").append(col)?;
        }
        self.nrows += n;
        Ok(())
    }

    /// The oid range covered by the table (tables always start at 0).
    pub fn oid_range(&self) -> (Oid, Oid) {
        (0, self.nrows as Oid)
    }
}

/// A named collection of persistent tables.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; rejects duplicates.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        if self.tables.contains_key(table.name()) {
            return Err(KernelError::AlreadyExists(table.name().to_owned()));
        }
        self.tables.insert(table.name().to_owned(), table);
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| KernelError::NotFound(name.to_owned()))
    }

    /// Mutable lookup (for loading data).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| KernelError::NotFound(name.to_owned()))
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables.remove(name).ok_or_else(|| KernelError::NotFound(name.to_owned()))
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(std::string::String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let mut t = Table::new("sensors", &[("id", DataType::Int), ("loc", DataType::Str)]);
        t.append(&[Column::Int(vec![1, 2]), Column::Str(vec!["hall".into(), "lab".into()])])
            .unwrap();
        t
    }

    #[test]
    fn table_schema_and_rows() {
        let t = sample();
        assert_eq!(t.name(), "sensors");
        assert_eq!(t.len(), 2);
        assert_eq!(t.columns(), &["id".to_owned(), "loc".to_owned()]);
        assert_eq!(t.oid_range(), (0, 2));
        assert_eq!(t.column_type("id").unwrap(), DataType::Int);
        assert_eq!(t.column_type("loc").unwrap(), DataType::Str);
        assert!(t.column_type("nope").is_err());
        assert_eq!(
            t.schema(),
            vec![("id".to_owned(), DataType::Int), ("loc".to_owned(), DataType::Str)]
        );
    }

    #[test]
    fn table_bat_access() {
        let t = sample();
        let b = t.bat("id").unwrap();
        assert_eq!(b.tail, Column::Int(vec![1, 2]));
        assert!(t.bat("nope").is_err());
    }

    #[test]
    fn append_validates_arity_and_alignment() {
        let mut t = sample();
        assert!(t.append(&[Column::Int(vec![3])]).is_err()); // arity
        assert!(t.append(&[Column::Int(vec![3]), Column::Str(vec![])]).is_err()); // alignment
        assert!(t.append(&[Column::Int(vec![3]), Column::Str(vec!["x".into()])]).is_ok());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn append_type_mismatch() {
        let mut t = sample();
        assert!(t.append(&[Column::Float(vec![1.0]), Column::Str(vec!["x".into()])]).is_err());
    }

    #[test]
    fn catalog_crud() {
        let mut cat = Catalog::new();
        cat.create_table(sample()).unwrap();
        assert!(cat.create_table(sample()).is_err());
        assert_eq!(cat.table("sensors").unwrap().len(), 2);
        assert!(cat.table("x").is_err());
        cat.table_mut("sensors")
            .unwrap()
            .append(&[Column::Int(vec![9]), Column::Str(vec!["roof".into()])])
            .unwrap();
        assert_eq!(cat.table("sensors").unwrap().len(), 3);
        let names: Vec<&str> = cat.table_names().collect();
        assert_eq!(names, vec!["sensors"]);
        cat.drop_table("sensors").unwrap();
        assert!(cat.table("sensors").is_err());
    }

    #[test]
    fn column_value_access() {
        let t = sample();
        assert_eq!(t.column("loc").unwrap().get(1), Some(Value::from("lab")));
    }
}
