//! Binary Association Tables.
//!
//! A BAT pairs a *virtual head* — a densely ascending run of [`Oid`]s
//! starting at `hseq` — with a materialized tail [`Column`]. The head is
//! never stored; `oid(i) = hseq + i`. This mirrors MonetDB's storage model
//! (paper §2, *A Column-oriented DBMS*): each relational attribute is one
//! BAT, intermediates are BATs, and candidate lists (selection results) are
//! BATs whose tail is an `Oid` column.

use crate::column::{Column, ColumnSlice};
use crate::error::KernelError;
use crate::value::{DataType, Value};
use crate::{Oid, Result};

/// A Binary Association Table: virtual oid head + typed tail.
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    /// First head oid; tuple `i` has head oid `hseq + i`.
    pub hseq: Oid,
    /// The materialized tail values.
    pub tail: Column,
}

impl Bat {
    /// Build a BAT whose head starts at `hseq`.
    pub fn new(hseq: Oid, tail: Column) -> Bat {
        Bat { hseq, tail }
    }

    /// Build a transient BAT (head starts at 0), the common case for
    /// intermediates.
    pub fn transient(tail: Column) -> Bat {
        Bat { hseq: 0, tail }
    }

    /// An empty BAT of a given tail type.
    pub fn empty(dt: DataType) -> Bat {
        Bat { hseq: 0, tail: Column::empty(dt) }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// True when the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Tail type.
    pub fn data_type(&self) -> DataType {
        self.tail.data_type()
    }

    /// The head oid of tuple `i`.
    pub fn oid_at(&self, i: usize) -> Oid {
        self.hseq + i as u64
    }

    /// One past the last head oid.
    pub fn hend(&self) -> Oid {
        self.hseq + self.len() as u64
    }

    /// Tail value at position `i`.
    pub fn value_at(&self, i: usize) -> Option<Value> {
        self.tail.get(i)
    }

    /// Position of head oid `oid`, or an error if it is outside the BAT.
    pub fn index_of(&self, oid: Oid) -> Result<usize> {
        if oid < self.hseq || oid >= self.hend() {
            return Err(KernelError::OidOutOfRange { oid, hseq: self.hseq, len: self.len() });
        }
        Ok((oid - self.hseq) as usize)
    }

    /// Zero-copy view of the tail.
    pub fn tail_slice(&self) -> ColumnSlice<'_> {
        self.tail.as_slice()
    }

    /// View of tuples `[offset, offset+len)` as a BAT-like (hseq', slice)
    /// pair. Used by the splitter to carve basic windows out of a window.
    pub fn view(&self, offset: usize, len: usize) -> (Oid, ColumnSlice<'_>) {
        (self.hseq + offset as u64, self.tail.slice(offset, len))
    }

    /// Split the BAT into at most `n` contiguous zero-copy morsels, each a
    /// `(first head oid, tail view)` pair in ascending oid order. Sizes are
    /// balanced: the first `len % n` morsels carry one extra tuple. An
    /// empty BAT yields a single empty view (so callers always have a
    /// typed part to hand to `concat`); `n` is clamped to `[1, len]`.
    ///
    /// This is the unit of work for the [`crate::par`] runtime: each
    /// morsel is joined/selected/aggregated independently and the partial
    /// results are concatenated back in morsel order.
    pub fn chunks(&self, n: usize) -> Vec<(Oid, ColumnSlice<'_>)> {
        let len = self.len();
        if len == 0 {
            return vec![self.view(0, 0)];
        }
        let n = n.clamp(1, len);
        let (base, extra) = (len / n, len % n);
        let mut out = Vec::with_capacity(n);
        let mut off = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            out.push(self.view(off, size));
            off += size;
        }
        debug_assert_eq!(off, len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_head_arithmetic() {
        let b = Bat::new(100, Column::Int(vec![7, 8, 9]));
        assert_eq!(b.len(), 3);
        assert_eq!(b.oid_at(0), 100);
        assert_eq!(b.oid_at(2), 102);
        assert_eq!(b.hend(), 103);
        assert_eq!(b.index_of(101).unwrap(), 1);
    }

    #[test]
    fn index_of_out_of_range() {
        let b = Bat::new(10, Column::Int(vec![1]));
        assert!(b.index_of(9).is_err());
        assert!(b.index_of(11).is_err());
        assert!(b.index_of(10).is_ok());
    }

    #[test]
    fn transient_starts_at_zero() {
        let b = Bat::transient(Column::Float(vec![1.0]));
        assert_eq!(b.hseq, 0);
        assert_eq!(b.value_at(0), Some(Value::Float(1.0)));
        assert_eq!(b.value_at(1), None);
    }

    #[test]
    fn empty_bat() {
        let b = Bat::empty(DataType::Oid);
        assert!(b.is_empty());
        assert_eq!(b.data_type(), DataType::Oid);
    }

    #[test]
    fn view_carves_basic_windows() {
        let b = Bat::new(50, Column::Int(vec![1, 2, 3, 4, 5, 6]));
        let (hseq, slice) = b.view(2, 3);
        assert_eq!(hseq, 52);
        assert_eq!(slice.to_column(), Column::Int(vec![3, 4, 5]));
    }

    #[test]
    fn chunks_cover_bat_in_order() {
        let b = Bat::new(10, Column::Int((0..7).collect()));
        let chunks = b.chunks(3);
        assert_eq!(chunks.len(), 3);
        // 7 = 3 + 2 + 2; heads are contiguous and ascending.
        assert_eq!(chunks[0].0, 10);
        assert_eq!(chunks[0].1.len(), 3);
        assert_eq!(chunks[1].0, 13);
        assert_eq!(chunks[1].1.len(), 2);
        assert_eq!(chunks[2].0, 15);
        assert_eq!(chunks[2].1.len(), 2);
        let mut all = Column::empty(DataType::Int);
        for (_, s) in &chunks {
            all.append(&s.to_column()).unwrap();
        }
        assert_eq!(all, b.tail);
    }

    #[test]
    fn chunks_clamp_to_len_and_one() {
        let b = Bat::new(0, Column::Int(vec![1, 2]));
        assert_eq!(b.chunks(8).len(), 2); // never more chunks than tuples
        assert_eq!(b.chunks(0).len(), 1); // at least one chunk
        let empty = Bat::empty(DataType::Str);
        let chunks = empty.chunks(4);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].1.is_empty());
        assert_eq!(chunks[0].1.data_type(), DataType::Str);
    }
}
