//! Selection: predicates over one column producing candidate lists.
//!
//! `algebra.select(w, v1, v2)` in the paper's Algorithm 1/2 is exactly this
//! operator: filter a (basic-window) column and return the qualifying oids.

use crate::column::ColumnSlice;
use crate::error::KernelError;
use crate::value::Value;
use crate::{Bat, Column, Oid, Result};

/// Comparison operators for single-bound predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl CmpOp {
    /// Evaluate the comparison on a pair of `f64`s.
    #[inline(always)]
    fn holds_f64(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    #[inline(always)]
    fn holds_i64(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    fn holds_str(self, l: &str, r: &str) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    /// Render in SQL syntax.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        }
    }
}

/// A selection predicate over one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col <op> value`
    Cmp(CmpOp, Value),
    /// `lo <(=) col <(=) hi`; bounds are inclusive when the flag is true.
    Range {
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
        /// Lower bound inclusive?
        lo_inc: bool,
        /// Upper bound inclusive?
        hi_inc: bool,
    },
    /// Conjunction of two predicates over the same column. Built by
    /// [`Predicate::and`], which folds combinable comparison pairs into a
    /// [`Predicate::Range`] first — `And` is the residual form for
    /// conjunctions with no tighter encoding (e.g. `<> v1 AND < v2`).
    And(Box<Predicate>, Box<Predicate>),
    /// Accept every tuple (used by plans that need a candidate list anyway).
    True,
}

impl Predicate {
    /// Convenience: `col > v`.
    pub fn gt(v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(CmpOp::Gt, v.into())
    }

    /// Convenience: `col < v`.
    pub fn lt(v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(CmpOp::Lt, v.into())
    }

    /// Convenience: `col = v`.
    pub fn eq(v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(CmpOp::Eq, v.into())
    }

    /// Convenience: inclusive range `v1 <= col <= v2` (the paper's
    /// "selects all values of attribute X in a range v1-v2").
    pub fn between(lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::Range { lo: lo.into(), hi: hi.into(), lo_inc: true, hi_inc: true }
    }

    /// Conjunction of two predicates over the same column, simplified
    /// where an equivalent single predicate exists: `True` is absorbed,
    /// and a lower bound (`>`/`>=`) meeting an upper bound (`<`/`<=`)
    /// folds into the [`Predicate::Range`] the bulk range loops
    /// specialize on. Everything else becomes [`Predicate::And`],
    /// evaluated row-at-a-time.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        match (a, b) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::Cmp(op_a, va), Predicate::Cmp(op_b, vb)) => {
                let bounds = |op: CmpOp, v: &Value| match op {
                    CmpOp::Gt => Some((true, v.clone(), false)),
                    CmpOp::Ge => Some((true, v.clone(), true)),
                    CmpOp::Lt => Some((false, v.clone(), false)),
                    CmpOp::Le => Some((false, v.clone(), true)),
                    _ => None,
                };
                match (bounds(op_a, &va), bounds(op_b, &vb)) {
                    (Some((true, lo, lo_inc)), Some((false, hi, hi_inc)))
                    | (Some((false, hi, hi_inc)), Some((true, lo, lo_inc))) => {
                        Predicate::Range { lo, hi, lo_inc, hi_inc }
                    }
                    _ => Predicate::And(
                        Box::new(Predicate::Cmp(op_a, va)),
                        Box::new(Predicate::Cmp(op_b, vb)),
                    ),
                }
            }
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluate against a single value (slow path; used by the volcano-style
    /// SystemX simulator and by row-level tests).
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(op, rhs) => match (v, rhs) {
                (Value::Int(l), Value::Int(r)) => op.holds_i64(*l, *r),
                (Value::Float(l), Value::Float(r)) => op.holds_f64(*l, *r),
                (Value::Int(l), Value::Float(r)) => op.holds_f64(*l as f64, *r),
                (Value::Float(l), Value::Int(r)) => op.holds_f64(*l, *r as f64),
                (Value::Str(l), Value::Str(r)) => op.holds_str(l, r),
                (Value::Bool(l), Value::Bool(r)) => op.holds_i64(*l as i64, *r as i64),
                (Value::Oid(l), Value::Oid(r)) => op.holds_i64(*l as i64, *r as i64),
                _ => false,
            },
            Predicate::Range { lo, hi, lo_inc, hi_inc } => {
                let lo_op = if *lo_inc { CmpOp::Ge } else { CmpOp::Gt };
                let hi_op = if *hi_inc { CmpOp::Le } else { CmpOp::Lt };
                Predicate::Cmp(lo_op, lo.clone()).matches(v)
                    && Predicate::Cmp(hi_op, hi.clone()).matches(v)
            }
            Predicate::And(a, b) => a.matches(v) && b.matches(v),
        }
    }
}

/// Bulk selection over a column view whose first tuple has oid `base`.
/// Returns the qualifying oids. This is the kernel inner loop used both for
/// whole BATs and for basic-window views.
pub fn select_slice(col: ColumnSlice<'_>, base: Oid, pred: &Predicate) -> Result<Vec<Oid>> {
    let mut out = Vec::new();
    match (col, pred) {
        (_, Predicate::True) => {
            out.extend((0..col.len() as u64).map(|i| base + i));
        }
        (ColumnSlice::Int(v), Predicate::Cmp(op, Value::Int(rhs))) => {
            let (op, rhs) = (*op, *rhs);
            for (i, &x) in v.iter().enumerate() {
                if op.holds_i64(x, rhs) {
                    out.push(base + i as u64);
                }
            }
        }
        (ColumnSlice::Int(v), Predicate::Cmp(op, Value::Float(rhs))) => {
            let (op, rhs) = (*op, *rhs);
            for (i, &x) in v.iter().enumerate() {
                if op.holds_f64(x as f64, rhs) {
                    out.push(base + i as u64);
                }
            }
        }
        (ColumnSlice::Float(v), Predicate::Cmp(op, rhs)) => {
            let rhs = rhs.as_f64().ok_or(KernelError::TypeMismatch {
                op: "select",
                expected: crate::DataType::Float,
                found: rhs.data_type(),
            })?;
            let op = *op;
            for (i, &x) in v.iter().enumerate() {
                if op.holds_f64(x, rhs) {
                    out.push(base + i as u64);
                }
            }
        }
        (ColumnSlice::Str(v), Predicate::Cmp(op, Value::Str(rhs))) => {
            let op = *op;
            for (i, x) in v.iter().enumerate() {
                if op.holds_str(x, rhs) {
                    out.push(base + i as u64);
                }
            }
        }
        (ColumnSlice::Int(v), Predicate::Range { lo, hi, lo_inc, hi_inc }) => {
            let (lo, hi) = match (lo, hi) {
                (Value::Int(l), Value::Int(h)) => (*l, *h),
                _ => return select_generic(col, base, pred),
            };
            for (i, &x) in v.iter().enumerate() {
                let ok_lo = if *lo_inc { x >= lo } else { x > lo };
                let ok_hi = if *hi_inc { x <= hi } else { x < hi };
                if ok_lo && ok_hi {
                    out.push(base + i as u64);
                }
            }
        }
        (ColumnSlice::Float(v), Predicate::Range { lo, hi, lo_inc, hi_inc }) => {
            let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) else {
                return select_generic(col, base, pred);
            };
            for (i, &x) in v.iter().enumerate() {
                let ok_lo = if *lo_inc { x >= lo } else { x > lo };
                let ok_hi = if *hi_inc { x <= hi } else { x < hi };
                if ok_lo && ok_hi {
                    out.push(base + i as u64);
                }
            }
        }
        _ => return select_generic(col, base, pred),
    }
    Ok(out)
}

/// Fallback row-at-a-time evaluation for type combinations that have no
/// specialized bulk loop (bool columns, mixed string/range cases).
fn select_generic(col: ColumnSlice<'_>, base: Oid, pred: &Predicate) -> Result<Vec<Oid>> {
    let mut out = Vec::new();
    for i in 0..col.len() {
        let v = col.get(i).expect("in range");
        if pred.matches(&v) {
            out.push(base + i as u64);
        }
    }
    Ok(out)
}

/// Selection over a whole BAT: returns a candidate-list BAT (oid tail).
pub fn select(bat: &Bat, pred: &Predicate) -> Result<Bat> {
    let oids = select_slice(bat.tail_slice(), bat.hseq, pred)?;
    Ok(Bat::transient(Column::Oid(oids)))
}

/// Range selection in the paper's `algebra.select(w, v1, v2)` form:
/// inclusive on both bounds.
pub fn select_range(bat: &Bat, lo: impl Into<Value>, hi: impl Into<Value>) -> Result<Bat> {
    select(bat, &Predicate::between(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_bat(hseq: Oid, vals: Vec<i64>) -> Bat {
        Bat::new(hseq, Column::Int(vals))
    }

    #[test]
    fn select_gt_int() {
        let b = int_bat(0, vec![5, 10, 15, 20]);
        let c = select(&b, &Predicate::gt(10)).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![2, 3]));
    }

    #[test]
    fn select_respects_hseq() {
        let b = int_bat(100, vec![1, 2, 3]);
        let c = select(&b, &Predicate::lt(3)).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![100, 101]));
    }

    #[test]
    fn select_range_inclusive() {
        let b = int_bat(0, vec![1, 2, 3, 4, 5]);
        let c = select_range(&b, 2, 4).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![1, 2, 3]));
    }

    #[test]
    fn select_float_with_int_bound() {
        let b = Bat::transient(Column::Float(vec![0.5, 1.5, 2.5]));
        let c = select(&b, &Predicate::Cmp(CmpOp::Ge, Value::Int(1))).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![1, 2]));
    }

    #[test]
    fn select_int_with_float_bound() {
        let b = int_bat(0, vec![1, 2, 3]);
        let c = select(&b, &Predicate::Cmp(CmpOp::Gt, Value::Float(1.5))).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![1, 2]));
    }

    #[test]
    fn select_str_eq() {
        let b = Bat::transient(Column::Str(vec!["a".into(), "b".into(), "a".into()]));
        let c = select(&b, &Predicate::eq("a")).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![0, 2]));
    }

    #[test]
    fn select_true_returns_all() {
        let b = int_bat(7, vec![1, 2]);
        let c = select(&b, &Predicate::True).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![7, 8]));
    }

    #[test]
    fn select_float_vs_str_is_type_error() {
        let b = Bat::transient(Column::Float(vec![1.0]));
        assert!(select(&b, &Predicate::eq("x")).is_err());
    }

    #[test]
    fn select_bool_generic_path() {
        let b = Bat::transient(Column::Bool(vec![true, false, true]));
        let c = select(&b, &Predicate::Cmp(CmpOp::Eq, Value::Bool(true))).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![0, 2]));
    }

    #[test]
    fn select_exclusive_range() {
        let b = int_bat(0, vec![1, 2, 3, 4]);
        let p =
            Predicate::Range { lo: Value::Int(1), hi: Value::Int(4), lo_inc: false, hi_inc: false };
        let c = select(&b, &p).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![1, 2]));
    }

    #[test]
    fn predicate_matches_rowwise() {
        assert!(Predicate::gt(5).matches(&Value::Int(6)));
        assert!(!Predicate::gt(5).matches(&Value::Int(5)));
        assert!(Predicate::between(1, 3).matches(&Value::Int(3)));
        assert!(Predicate::eq("a").matches(&Value::from("a")));
        assert!(Predicate::True.matches(&Value::Bool(false)));
    }

    #[test]
    fn cmp_sql_rendering() {
        assert_eq!(CmpOp::Le.sql(), "<=");
        assert_eq!(CmpOp::Ne.sql(), "<>");
    }

    #[test]
    fn and_folds_bound_pairs_into_ranges() {
        // gt + lt (either order) -> exclusive range; ge + le -> inclusive.
        let p = Predicate::and(Predicate::gt(1), Predicate::lt(5));
        assert_eq!(
            p,
            Predicate::Range { lo: Value::Int(1), hi: Value::Int(5), lo_inc: false, hi_inc: false }
        );
        let p = Predicate::and(Predicate::lt(5), Predicate::gt(1));
        assert_eq!(
            p,
            Predicate::Range { lo: Value::Int(1), hi: Value::Int(5), lo_inc: false, hi_inc: false }
        );
        let p = Predicate::and(
            Predicate::Cmp(CmpOp::Ge, Value::Int(1)),
            Predicate::Cmp(CmpOp::Le, Value::Int(5)),
        );
        assert_eq!(
            p,
            Predicate::Range { lo: Value::Int(1), hi: Value::Int(5), lo_inc: true, hi_inc: true }
        );
    }

    #[test]
    fn and_absorbs_true_and_keeps_residuals() {
        assert_eq!(Predicate::and(Predicate::True, Predicate::gt(3)), Predicate::gt(3));
        assert_eq!(Predicate::and(Predicate::gt(3), Predicate::True), Predicate::gt(3));
        // Two lower bounds have no Range encoding: residual And.
        let p = Predicate::and(Predicate::gt(1), Predicate::gt(3));
        assert!(matches!(p, Predicate::And(..)));
        assert!(p.matches(&Value::Int(4)));
        assert!(!p.matches(&Value::Int(2)));
    }

    #[test]
    fn select_with_and_matches_sequential_filters() {
        let b = int_bat(10, vec![1, 2, 3, 4, 5, 6]);
        // <> 3 AND < 5: no Range encoding, runs the generic path.
        let p = Predicate::and(Predicate::Cmp(CmpOp::Ne, Value::Int(3)), Predicate::lt(5));
        let c = select(&b, &p).unwrap();
        assert_eq!(c.tail, Column::Oid(vec![10, 11, 13]));
    }
}
