//! Ordering operators: sort, distinct, top-n.
//!
//! `orderby`/`sort` and `distinct` belong to the paper's *concatenation plus
//! compensation* category: replicate per basic window, concatenate the
//! sorted/deduplicated partials, and re-apply the operator as compensation.

use crate::column::Column;
use crate::{Bat, Result};

/// Stable ascending sort of the tail. Returns a fresh transient BAT.
pub fn sort(b: &Bat) -> Result<Bat> {
    let perm = sort_perm(b)?;
    let mut out = Column::with_capacity(b.data_type(), b.len());
    for &i in &perm {
        out.push(b.value_at(i as usize).expect("perm in range")).expect("same type");
    }
    Ok(Bat::transient(out))
}

/// The permutation (positions) that sorts the tail ascending; stable.
pub fn sort_perm(b: &Bat) -> Result<Vec<u32>> {
    let mut perm: Vec<u32> = (0..b.len() as u32).collect();
    match &b.tail {
        Column::Int(v) => perm.sort_by_key(|&i| v[i as usize]),
        Column::Float(v) => perm.sort_by(|&i, &j| v[i as usize].total_cmp(&v[j as usize])),
        Column::Str(v) => perm.sort_by(|&i, &j| v[i as usize].cmp(&v[j as usize])),
        Column::Bool(v) => perm.sort_by_key(|&i| v[i as usize]),
        Column::Oid(v) => perm.sort_by_key(|&i| v[i as usize]),
    }
    Ok(perm)
}

/// Distinct values, in first-occurrence order (hash-based like MonetDB's
/// `unique` over unsorted inputs).
pub fn distinct(b: &Bat) -> Result<Bat> {
    let g = super::group::group(b)?;
    Ok(Bat::transient(g.keys(b)?))
}

/// The `n` smallest (or largest) values, sorted.
pub fn topn(b: &Bat, n: usize, largest: bool) -> Result<Bat> {
    let sorted = sort(b)?;
    let len = sorted.len();
    let take = n.min(len);
    let col = if largest {
        sorted.tail.slice_owned(len - take, take)
    } else {
        sorted.tail.slice_owned(0, take)
    };
    Ok(Bat::transient(col))
}

/// Sort-merge helper for the harnesses: lexicographic comparison of
/// same-position values across several columns (row ordering).
pub fn row_cmp(cols: &[&Column], i: usize, j: usize) -> std::cmp::Ordering {
    for c in cols {
        let a = c.get(i).expect("in range");
        let b = c.get(j).expect("in range");
        let ord = a.total_cmp(&b);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Apply a permutation to a column (row reordering after a multi-column
/// sort).
pub fn apply_perm(c: &Column, perm: &[u32]) -> Column {
    let mut out = Column::with_capacity(c.data_type(), perm.len());
    for &i in perm {
        out.push(c.get(i as usize).expect("perm in range")).expect("same type");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_ints() {
        let b = Bat::transient(Column::Int(vec![3, 1, 2]));
        assert_eq!(sort(&b).unwrap().tail, Column::Int(vec![1, 2, 3]));
    }

    #[test]
    fn sort_floats_total_order() {
        let b = Bat::transient(Column::Float(vec![2.0, -1.0, 0.5]));
        assert_eq!(sort(&b).unwrap().tail, Column::Float(vec![-1.0, 0.5, 2.0]));
    }

    #[test]
    fn sort_is_stable_via_perm() {
        let b = Bat::transient(Column::Int(vec![2, 1, 2, 1]));
        assert_eq!(sort_perm(&b).unwrap(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn distinct_first_occurrence_order() {
        let b = Bat::transient(Column::Int(vec![5, 3, 5, 7, 3]));
        assert_eq!(distinct(&b).unwrap().tail, Column::Int(vec![5, 3, 7]));
    }

    #[test]
    fn distinct_strings() {
        let b = Bat::transient(Column::Str(vec!["b".into(), "a".into(), "b".into()]));
        assert_eq!(distinct(&b).unwrap().tail, Column::Str(vec!["b".into(), "a".into()]));
    }

    #[test]
    fn topn_smallest_and_largest() {
        let b = Bat::transient(Column::Int(vec![5, 1, 9, 3]));
        assert_eq!(topn(&b, 2, false).unwrap().tail, Column::Int(vec![1, 3]));
        assert_eq!(topn(&b, 2, true).unwrap().tail, Column::Int(vec![5, 9]));
    }

    #[test]
    fn topn_larger_than_input() {
        let b = Bat::transient(Column::Int(vec![2, 1]));
        assert_eq!(topn(&b, 10, false).unwrap().tail, Column::Int(vec![1, 2]));
    }

    #[test]
    fn row_cmp_lexicographic() {
        let a = Column::Int(vec![1, 1]);
        let b = Column::Int(vec![2, 1]);
        assert_eq!(row_cmp(&[&a, &b], 0, 1), std::cmp::Ordering::Greater);
        assert_eq!(row_cmp(&[&a, &a], 0, 1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn apply_perm_reorders() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(apply_perm(&c, &[2, 0]), Column::Str(vec!["c".into(), "a".into()]));
    }

    #[test]
    fn sort_empty() {
        let b = Bat::empty(crate::DataType::Float);
        assert!(sort(&b).unwrap().is_empty());
        assert!(distinct(&b).unwrap().is_empty());
    }
}
