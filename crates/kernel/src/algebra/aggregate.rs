//! Scalar and grouped aggregates.
//!
//! The incremental rewriter distinguishes aggregates by their *merge rule*
//! (paper §3):
//!
//! * `sum`, `min`, `max` — *concatenation plus compensation*: re-apply the
//!   same aggregate over the concatenated partials;
//! * `count` — compensated by a `sum` of the partial counts;
//! * `avg` — *expanding replication*: rewritten into `sum` and `count`
//!   flows, merged by a final division.
//!
//! [`AggKind`] encodes these rules so the rewriter can stay generic.

use super::group::Groups;
use crate::column::Column;
use crate::error::KernelError;
use crate::value::Value;
use crate::{Bat, Result};

/// Aggregate function kinds understood by plans and the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of values.
    Sum,
    /// Count of tuples.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Average — not directly executable; the rewriter and the one-shot
    /// planner expand it into `Sum`/`Count` + divide.
    Avg,
}

impl AggKind {
    /// The aggregate to apply over *partial results* when merging
    /// (the paper's compensating action). `Count` partials are merged with
    /// `Sum`; `Avg` has no single compensation (it is expanded instead).
    pub fn compensation(self) -> Option<AggKind> {
        match self {
            AggKind::Sum => Some(AggKind::Sum),
            AggKind::Count => Some(AggKind::Sum),
            AggKind::Min => Some(AggKind::Min),
            AggKind::Max => Some(AggKind::Max),
            AggKind::Avg => None,
        }
    }

    /// SQL name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Count => "count",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
        }
    }
}

/// Sum of a numeric BAT. Integer sums stay integral; float sums are floats.
/// Empty input sums to the additive identity of the column type.
pub fn sum(b: &Bat) -> Result<Value> {
    match &b.tail {
        Column::Int(v) => Ok(Value::Int(v.iter().sum())),
        Column::Float(v) => Ok(Value::Float(v.iter().sum())),
        c => Err(KernelError::TypeMismatch {
            op: "sum",
            expected: crate::DataType::Float,
            found: c.data_type(),
        }),
    }
}

/// Tuple count.
pub fn count(b: &Bat) -> Value {
    Value::Int(b.len() as i64)
}

/// Minimum value, `None` on empty input.
pub fn min(b: &Bat) -> Result<Option<Value>> {
    match &b.tail {
        Column::Int(v) => Ok(v.iter().min().map(|&x| Value::Int(x))),
        Column::Float(v) => Ok(v.iter().copied().reduce(f64::min).map(Value::Float)),
        Column::Str(v) => Ok(v.iter().min().map(|x| Value::Str(x.clone()))),
        c => Err(KernelError::TypeMismatch {
            op: "min",
            expected: crate::DataType::Float,
            found: c.data_type(),
        }),
    }
}

/// Maximum value, `None` on empty input.
pub fn max(b: &Bat) -> Result<Option<Value>> {
    match &b.tail {
        Column::Int(v) => Ok(v.iter().max().map(|&x| Value::Int(x))),
        Column::Float(v) => Ok(v.iter().copied().reduce(f64::max).map(Value::Float)),
        Column::Str(v) => Ok(v.iter().max().map(|x| Value::Str(x.clone()))),
        c => Err(KernelError::TypeMismatch {
            op: "max",
            expected: crate::DataType::Float,
            found: c.data_type(),
        }),
    }
}

/// Average, `None` on empty input. Always a float.
pub fn avg(b: &Bat) -> Result<Option<Value>> {
    if b.is_empty() {
        return Ok(None);
    }
    let s = sum(b)?.as_f64().expect("sum of numeric is numeric");
    Ok(Some(Value::Float(s / b.len() as f64)))
}

/// Per-group sum: `out[g] = Σ vals[i] where groups.ids[i] == g`.
pub fn sum_grouped(vals: &Bat, groups: &Groups) -> Result<Column> {
    if vals.len() != groups.ids.len() {
        return Err(KernelError::LengthMismatch {
            op: "sum_grouped",
            left: vals.len(),
            right: groups.ids.len(),
        });
    }
    match &vals.tail {
        Column::Int(v) => {
            let mut out = vec![0i64; groups.ngroups()];
            for (i, &x) in v.iter().enumerate() {
                out[groups.ids[i] as usize] += x;
            }
            Ok(Column::Int(out))
        }
        Column::Float(v) => {
            let mut out = vec![0f64; groups.ngroups()];
            for (i, &x) in v.iter().enumerate() {
                out[groups.ids[i] as usize] += x;
            }
            Ok(Column::Float(out))
        }
        c => Err(KernelError::TypeMismatch {
            op: "sum_grouped",
            expected: crate::DataType::Float,
            found: c.data_type(),
        }),
    }
}

/// Per-group count.
pub fn count_grouped(groups: &Groups) -> Column {
    let mut out = vec![0i64; groups.ngroups()];
    for &g in &groups.ids {
        out[g as usize] += 1;
    }
    Column::Int(out)
}

/// Per-group minimum.
pub fn min_grouped(vals: &Bat, groups: &Groups) -> Result<Column> {
    grouped_extreme(vals, groups, true)
}

/// Per-group maximum.
pub fn max_grouped(vals: &Bat, groups: &Groups) -> Result<Column> {
    grouped_extreme(vals, groups, false)
}

fn grouped_extreme(vals: &Bat, groups: &Groups, is_min: bool) -> Result<Column> {
    if vals.len() != groups.ids.len() {
        return Err(KernelError::LengthMismatch {
            op: "min/max_grouped",
            left: vals.len(),
            right: groups.ids.len(),
        });
    }
    match &vals.tail {
        Column::Int(v) => {
            let init = if is_min { i64::MAX } else { i64::MIN };
            let mut out = vec![init; groups.ngroups()];
            for (i, &x) in v.iter().enumerate() {
                let slot = &mut out[groups.ids[i] as usize];
                if (is_min && x < *slot) || (!is_min && x > *slot) {
                    *slot = x;
                }
            }
            Ok(Column::Int(out))
        }
        Column::Float(v) => {
            let init = if is_min { f64::INFINITY } else { f64::NEG_INFINITY };
            let mut out = vec![init; groups.ngroups()];
            for (i, &x) in v.iter().enumerate() {
                let slot = &mut out[groups.ids[i] as usize];
                if (is_min && x < *slot) || (!is_min && x > *slot) {
                    *slot = x;
                }
            }
            Ok(Column::Float(out))
        }
        c => Err(KernelError::TypeMismatch {
            op: "min/max_grouped",
            expected: crate::DataType::Float,
            found: c.data_type(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::group;

    #[test]
    fn scalar_sum_int_and_float() {
        assert_eq!(sum(&Bat::transient(Column::Int(vec![1, 2, 3]))).unwrap(), Value::Int(6));
        assert_eq!(sum(&Bat::transient(Column::Float(vec![0.5, 1.5]))).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn scalar_sum_empty_is_identity() {
        assert_eq!(sum(&Bat::empty(crate::DataType::Int)).unwrap(), Value::Int(0));
    }

    #[test]
    fn scalar_count() {
        assert_eq!(count(&Bat::transient(Column::Int(vec![9, 9]))), Value::Int(2));
    }

    #[test]
    fn scalar_min_max() {
        let b = Bat::transient(Column::Int(vec![4, -2, 9]));
        assert_eq!(min(&b).unwrap(), Some(Value::Int(-2)));
        assert_eq!(max(&b).unwrap(), Some(Value::Int(9)));
        assert_eq!(min(&Bat::empty(crate::DataType::Int)).unwrap(), None);
    }

    #[test]
    fn scalar_min_max_strings() {
        let b = Bat::transient(Column::Str(vec!["b".into(), "a".into()]));
        assert_eq!(min(&b).unwrap(), Some(Value::from("a")));
        assert_eq!(max(&b).unwrap(), Some(Value::from("b")));
    }

    #[test]
    fn scalar_avg() {
        let b = Bat::transient(Column::Int(vec![1, 2, 3, 4]));
        assert_eq!(avg(&b).unwrap(), Some(Value::Float(2.5)));
        assert_eq!(avg(&Bat::empty(crate::DataType::Float)).unwrap(), None);
    }

    #[test]
    fn sum_on_strings_is_error() {
        assert!(sum(&Bat::transient(Column::Str(vec!["x".into()]))).is_err());
    }

    #[test]
    fn grouped_sum() {
        let keys = Bat::transient(Column::Int(vec![1, 2, 1, 2, 1]));
        let vals = Bat::transient(Column::Int(vec![10, 20, 30, 40, 50]));
        let g = group(&keys).unwrap();
        assert_eq!(sum_grouped(&vals, &g).unwrap(), Column::Int(vec![90, 60]));
    }

    #[test]
    fn grouped_count() {
        let keys = Bat::transient(Column::Int(vec![7, 8, 7]));
        let g = group(&keys).unwrap();
        assert_eq!(count_grouped(&g), Column::Int(vec![2, 1]));
    }

    #[test]
    fn grouped_min_max() {
        let keys = Bat::transient(Column::Int(vec![1, 1, 2]));
        let vals = Bat::transient(Column::Float(vec![5.0, 3.0, 9.0]));
        let g = group(&keys).unwrap();
        assert_eq!(min_grouped(&vals, &g).unwrap(), Column::Float(vec![3.0, 9.0]));
        assert_eq!(max_grouped(&vals, &g).unwrap(), Column::Float(vec![5.0, 9.0]));
    }

    #[test]
    fn grouped_length_mismatch() {
        let keys = Bat::transient(Column::Int(vec![1, 2]));
        let vals = Bat::transient(Column::Int(vec![1]));
        let g = group(&keys).unwrap();
        assert!(sum_grouped(&vals, &g).is_err());
    }

    #[test]
    fn compensation_rules_match_paper() {
        assert_eq!(AggKind::Sum.compensation(), Some(AggKind::Sum));
        assert_eq!(AggKind::Count.compensation(), Some(AggKind::Sum)); // "a count is to be compensated by a sum"
        assert_eq!(AggKind::Min.compensation(), Some(AggKind::Min));
        assert_eq!(AggKind::Max.compensation(), Some(AggKind::Max));
        assert_eq!(AggKind::Avg.compensation(), None); // expanding replication
    }

    #[test]
    fn agg_sql_names() {
        assert_eq!(AggKind::Avg.sql(), "avg");
        assert_eq!(AggKind::Count.sql(), "count");
    }
}
