//! Tuple reconstruction: fetch tail values through a candidate list.
//!
//! MonetDB calls this `leftfetchjoin`: given a candidate list (oids produced
//! by a selection on one attribute) and the BAT of another attribute of the
//! same table, materialize the values of the second attribute for exactly
//! the qualifying tuples — *late* tuple reconstruction (paper §2).

use crate::column::Column;
use crate::{Bat, Oid, Result};

/// Fetch `values[oid]` for every oid in the candidate list `cands`.
///
/// The result is a transient BAT aligned with `cands` (position `i` of the
/// output corresponds to candidate `i`). Errors if any candidate oid falls
/// outside `values`.
pub fn fetch(cands: &Bat, values: &Bat) -> Result<Bat> {
    let oids = cands.tail.as_oid()?;
    Ok(Bat::transient(fetch_oids(oids, values)?))
}

/// Gather `values[oid]` for every oid in `oids`, as a bare column.
///
/// This is the per-morsel body of [`fetch`]: `par::fetch` splits the
/// candidate list into chunks and runs this on each, so the sequential
/// operator and every parallel morsel share one gather loop.
pub fn fetch_oids(oids: &[Oid], values: &Bat) -> Result<Column> {
    let out = match &values.tail {
        Column::Int(v) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(v[values.index_of(oid)?]);
            }
            Column::Int(out)
        }
        Column::Float(v) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(v[values.index_of(oid)?]);
            }
            Column::Float(out)
        }
        Column::Str(v) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(v[values.index_of(oid)?].clone());
            }
            Column::Str(out)
        }
        Column::Bool(v) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(v[values.index_of(oid)?]);
            }
            Column::Bool(out)
        }
        Column::Oid(v) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(v[values.index_of(oid)?]);
            }
            Column::Oid(out)
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{select, Predicate};
    use crate::KernelError;

    #[test]
    fn fetch_reconstructs_second_attribute() {
        // Table with attributes x (selection) and y (fetched).
        let x = Bat::new(0, Column::Int(vec![5, 10, 15, 20]));
        let y = Bat::new(0, Column::Float(vec![0.5, 1.0, 1.5, 2.0]));
        let cand = select(&x, &Predicate::gt(7)).unwrap();
        let fetched = fetch(&cand, &y).unwrap();
        assert_eq!(fetched.tail, Column::Float(vec![1.0, 1.5, 2.0]));
    }

    #[test]
    fn fetch_respects_nonzero_hseq() {
        let y = Bat::new(100, Column::Int(vec![7, 8, 9]));
        let cand = Bat::transient(Column::Oid(vec![102, 100]));
        let fetched = fetch(&cand, &y).unwrap();
        assert_eq!(fetched.tail, Column::Int(vec![9, 7]));
    }

    #[test]
    fn fetch_out_of_range_oid_errors() {
        let y = Bat::new(0, Column::Int(vec![1]));
        let cand = Bat::transient(Column::Oid(vec![3]));
        let err = fetch(&cand, &y).unwrap_err();
        assert!(matches!(err, KernelError::OidOutOfRange { oid: 3, .. }));
    }

    #[test]
    fn fetch_requires_oid_candidates() {
        let y = Bat::new(0, Column::Int(vec![1]));
        let not_cand = Bat::transient(Column::Int(vec![0]));
        assert!(fetch(&not_cand, &y).is_err());
    }

    #[test]
    fn fetch_string_values_clones() {
        let y = Bat::new(0, Column::Str(vec!["a".into(), "b".into()]));
        let cand = Bat::transient(Column::Oid(vec![1, 1, 0]));
        let fetched = fetch(&cand, &y).unwrap();
        assert_eq!(fetched.tail, Column::Str(vec!["b".into(), "b".into(), "a".into()]));
    }

    #[test]
    fn fetch_empty_candidates() {
        let y = Bat::new(0, Column::Int(vec![1, 2]));
        let cand = Bat::transient(Column::Oid(vec![]));
        assert!(fetch(&cand, &y).unwrap().is_empty());
    }
}
