//! Concatenation — the merge operator of incremental plans.
//!
//! "The merging is done using the `concat` operator. Observe how before a
//! concat operator the plan forks into multiple branches to process each
//! basic window separately, while after the merge it goes back into a single
//! flow." (paper §3, *Merging Intermediates*)

use crate::column::Column;
use crate::error::KernelError;
use crate::{Bat, Result};

/// Concatenate the tails of `parts` in order into one transient BAT.
///
/// Head oids are *not* preserved — the result is a fresh dense sequence,
/// exactly like MonetDB's `algebra.concat` producing a new transient BAT.
/// All parts must share a tail type; the empty list is rejected because the
/// result type would be unknown.
pub fn concat(parts: &[&Bat]) -> Result<Bat> {
    let cols: Vec<&Column> = parts.iter().map(|b| &b.tail).collect();
    Ok(Bat::transient(concat_columns(&cols)?))
}

/// Column-level concatenation.
pub fn concat_columns(parts: &[&Column]) -> Result<Column> {
    let first =
        parts.first().ok_or_else(|| KernelError::Unsupported("concat of zero parts".into()))?;
    let total: usize = parts.iter().map(|c| c.len()).sum();
    let mut out = Column::with_capacity(first.data_type(), total);
    for part in parts {
        out.append(part)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_in_order() {
        let a = Bat::new(10, Column::Int(vec![1, 2]));
        let b = Bat::new(99, Column::Int(vec![3]));
        let c = concat(&[&a, &b]).unwrap();
        assert_eq!(c.hseq, 0); // fresh dense head
        assert_eq!(c.tail, Column::Int(vec![1, 2, 3]));
    }

    #[test]
    fn concat_single_part() {
        let a = Bat::transient(Column::Float(vec![1.0]));
        assert_eq!(concat(&[&a]).unwrap().tail, Column::Float(vec![1.0]));
    }

    #[test]
    fn concat_empty_parts_ok() {
        let a = Bat::empty(crate::DataType::Int);
        let b = Bat::transient(Column::Int(vec![5]));
        let c = concat(&[&a, &b, &a]).unwrap();
        assert_eq!(c.tail, Column::Int(vec![5]));
    }

    #[test]
    fn concat_zero_parts_rejected() {
        assert!(concat(&[]).is_err());
    }

    #[test]
    fn concat_type_mismatch() {
        let a = Bat::transient(Column::Int(vec![1]));
        let b = Bat::transient(Column::Float(vec![1.0]));
        assert!(concat(&[&a, &b]).is_err());
    }

    #[test]
    fn concat_columns_strings() {
        let a = Column::Str(vec!["x".into()]);
        let b = Column::Str(vec!["y".into()]);
        assert_eq!(concat_columns(&[&a, &b]).unwrap(), Column::Str(vec!["x".into(), "y".into()]));
    }
}
