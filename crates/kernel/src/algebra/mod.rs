//! Columnar bulk algebra.
//!
//! Every operator consumes whole columns (or candidate lists) and fully
//! materializes its result — MonetDB's operator-at-a-time execution model.
//! The DataCell rewriter relies on two properties of this algebra:
//!
//! 1. every operator boundary is a materialized intermediate, so a plan can
//!    be "frozen" after any operator and "resumed" later by re-reading the
//!    intermediate (paper §3, *Exploit Column-store Intermediates*);
//! 2. `concat` composes partial results of replicated plan fragments, and a
//!    small set of *compensating actions* (re-aggregation, re-grouping)
//!    restores full-query semantics after a merge (paper §3, Fig. 3).

mod aggregate;
mod concat;
mod fetch;
mod group;
mod join;
mod map;
mod select;
mod sort;

pub use aggregate::{avg, count, max, min, sum, AggKind};
pub use aggregate::{count_grouped, max_grouped, min_grouped, sum_grouped};
pub use concat::{concat, concat_columns};
pub use fetch::{fetch, fetch_oids};
pub use group::{group, group_derive, Groups};
pub use join::hashjoin;
pub use map::{div_values, map_arith, map_arith_scalar, ArithOp};
pub use select::{select, select_range, select_slice, CmpOp, Predicate};
pub use sort::{apply_perm, distinct, row_cmp, sort, sort_perm, topn};
