//! Hash equi-join over two BATs.
//!
//! Produces the matching head-oid pairs `(l_oid, r_oid)` as two aligned
//! candidate BATs, the MonetDB `join` result shape: callers then `fetch`
//! whatever attributes they need through either side. Float keys are
//! rejected (bit-exact float equality joins are almost always a modelling
//! error, and MonetDB hashes exact types too).

use crate::column::Column;
use crate::error::KernelError;
use crate::hash::{fast_map_with_capacity, FastMap};
use crate::{Bat, Oid, Result};

/// Hash join `l.tail == r.tail`; returns aligned `(left_oids, right_oids)`.
///
/// The smaller input is used as the build side. Output pairs are ordered by
/// the probe side's position (and build order within one probe match), which
/// is deterministic for a given pair of inputs.
pub fn hashjoin(l: &Bat, r: &Bat) -> Result<(Bat, Bat)> {
    if l.data_type() != r.data_type() {
        return Err(KernelError::TypeMismatch {
            op: "hashjoin",
            expected: l.data_type(),
            found: r.data_type(),
        });
    }
    // Swap so that the build side is the smaller one, then restore order.
    let (mut lo, mut ro) = if l.len() <= r.len() {
        join_build_probe(l, r, true)?
    } else {
        join_build_probe(r, l, false)?
    };
    // `join_build_probe` returns (build_oids, probe_oids) tagged by which
    // original argument was the build side; normalize to (left, right).
    if l.len() > r.len() {
        std::mem::swap(&mut lo, &mut ro);
    }
    Ok((Bat::transient(Column::Oid(lo)), Bat::transient(Column::Oid(ro))))
}

/// Build a hash table on `build`, probe with `probe`.
/// Returns (build_oids, probe_oids). The `_build_is_left` flag only
/// documents intent; normalization happens in the caller.
///
/// The table uses MonetDB's chained-bucket layout: a head map from key to
/// the *last* build position with that key, plus a `next` chain array —
/// zero allocations per distinct key, which matters because the DataCell
/// join matrix calls this once per basic-window pair.
fn join_build_probe(
    build: &Bat,
    probe: &Bat,
    _build_is_left: bool,
) -> Result<(Vec<Oid>, Vec<Oid>)> {
    match (&build.tail, &probe.tail) {
        (Column::Int(b), Column::Int(p)) => Ok(chained_join(b, p, build.hseq, probe.hseq, |&k| k)),
        (Column::Oid(b), Column::Oid(p)) => Ok(chained_join(b, p, build.hseq, probe.hseq, |&k| k)),
        (Column::Bool(b), Column::Bool(p)) => {
            Ok(chained_join(b, p, build.hseq, probe.hseq, |&k| k))
        }
        (Column::Str(b), Column::Str(p)) => {
            Ok(chained_join(b, p, build.hseq, probe.hseq, |k: &String| k.as_str()))
        }
        (Column::Float(_), _) => Err(KernelError::Unsupported("hashjoin on float keys".into())),
        _ => unreachable!("type equality checked by caller"),
    }
}

/// Chained-bucket equi-join core, generic over the key projection.
fn chained_join<'a, T, K>(
    build: &'a [T],
    probe: &'a [T],
    build_hseq: Oid,
    probe_hseq: Oid,
    key_of: impl Fn(&'a T) -> K,
) -> (Vec<Oid>, Vec<Oid>)
where
    K: std::hash::Hash + Eq,
{
    const NONE: u32 = u32::MAX;
    // Map capacity: one slot per build tuple is the worst case (all keys
    // distinct) and guarantees a rehash-free build phase; duplicate-heavy
    // builds over-allocate at most `build.len()` slots, which is already
    // the size of the `next` chain array allocated beside it.
    let mut head: FastMap<K, u32> = fast_map_with_capacity(build.len());
    let mut next: Vec<u32> = vec![NONE; build.len()];
    for (i, v) in build.iter().enumerate() {
        let slot = head.entry(key_of(v)).or_insert(NONE);
        next[i] = *slot;
        *slot = i as u32;
    }
    // Pre-reserve using the probe length as the output estimate: an
    // equi-join with mostly-unique keys emits at most ~one pair per probe
    // tuple, and starting from `probe.len()` avoids the doubling cascade
    // (log₂(n) reallocations + copies) that growing from zero costs on
    // the 100k×100k hot path.
    let mut bo = Vec::with_capacity(probe.len());
    let mut po = Vec::with_capacity(probe.len());
    for (j, v) in probe.iter().enumerate() {
        if let Some(&first) = head.get(&key_of(v)) {
            let mut i = first;
            while i != NONE {
                bo.push(build_hseq + i as u64);
                po.push(probe_hseq + j as u64);
                i = next[i as usize];
            }
        }
    }
    (bo, po)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_int_keys() {
        let l = Bat::new(0, Column::Int(vec![1, 2, 3]));
        let r = Bat::new(10, Column::Int(vec![2, 3, 4, 3]));
        let (lo, ro) = hashjoin(&l, &r).unwrap();
        let pairs: Vec<(u64, u64)> = lo
            .tail
            .as_oid()
            .unwrap()
            .iter()
            .zip(ro.tail.as_oid().unwrap())
            .map(|(&a, &b)| (a, b))
            .collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(1, 10), (2, 11), (2, 13)]);
    }

    #[test]
    fn join_alignment_invariant() {
        let l = Bat::new(0, Column::Int(vec![7, 7]));
        let r = Bat::new(100, Column::Int(vec![7]));
        let (lo, ro) = hashjoin(&l, &r).unwrap();
        assert_eq!(lo.len(), ro.len());
        assert_eq!(lo.len(), 2);
        // Every output pair must actually match.
        for (&a, &b) in lo.tail.as_oid().unwrap().iter().zip(ro.tail.as_oid().unwrap()) {
            assert_eq!(l.value_at((a - l.hseq) as usize), r.value_at((b - r.hseq) as usize));
        }
    }

    #[test]
    fn join_empty_side() {
        let l = Bat::new(0, Column::Int(vec![]));
        let r = Bat::new(0, Column::Int(vec![1, 2]));
        let (lo, ro) = hashjoin(&l, &r).unwrap();
        assert!(lo.is_empty() && ro.is_empty());
    }

    #[test]
    fn join_no_matches() {
        let l = Bat::new(0, Column::Int(vec![1]));
        let r = Bat::new(0, Column::Int(vec![2]));
        let (lo, _) = hashjoin(&l, &r).unwrap();
        assert!(lo.is_empty());
    }

    #[test]
    fn join_str_keys() {
        let l = Bat::new(0, Column::Str(vec!["a".into(), "b".into()]));
        let r = Bat::new(5, Column::Str(vec!["b".into(), "c".into()]));
        let (lo, ro) = hashjoin(&l, &r).unwrap();
        assert_eq!(lo.tail, Column::Oid(vec![1]));
        assert_eq!(ro.tail, Column::Oid(vec![5]));
    }

    #[test]
    fn join_type_mismatch() {
        let l = Bat::new(0, Column::Int(vec![1]));
        let r = Bat::new(0, Column::Str(vec!["1".into()]));
        assert!(hashjoin(&l, &r).is_err());
    }

    #[test]
    fn join_float_keys_rejected() {
        let l = Bat::new(0, Column::Float(vec![1.0]));
        let r = Bat::new(0, Column::Float(vec![1.0]));
        assert!(matches!(hashjoin(&l, &r), Err(KernelError::Unsupported(_))));
    }

    #[test]
    fn join_larger_left_swaps_internally_but_output_is_left_right() {
        let l = Bat::new(0, Column::Int(vec![1, 2, 3, 4, 5]));
        let r = Bat::new(50, Column::Int(vec![3]));
        let (lo, ro) = hashjoin(&l, &r).unwrap();
        assert_eq!(lo.tail, Column::Oid(vec![2]));
        assert_eq!(ro.tail, Column::Oid(vec![50]));
    }

    #[test]
    fn join_cross_product_on_duplicates() {
        let l = Bat::new(0, Column::Int(vec![9, 9]));
        let r = Bat::new(0, Column::Int(vec![9, 9, 9]));
        let (lo, _) = hashjoin(&l, &r).unwrap();
        assert_eq!(lo.len(), 6);
    }
}
