//! Map-like arithmetic — element-wise column operations.
//!
//! These are the "any map-like operations" of the paper's *Simple
//! Concatenation* category: they replicate over basic windows as-is and
//! their partials merge by plain concatenation. `div_values` is the final
//! merge step of the expanded `avg` plan (global sum ÷ global count,
//! Fig. 3c).

use crate::column::Column;
use crate::error::KernelError;
use crate::value::Value;
use crate::{Bat, Result};

/// Element-wise arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces floats).
    Div,
}

impl ArithOp {
    #[inline(always)]
    fn apply_i64(self, l: i64, r: i64) -> i64 {
        match self {
            ArithOp::Add => l.wrapping_add(r),
            ArithOp::Sub => l.wrapping_sub(r),
            ArithOp::Mul => l.wrapping_mul(r),
            ArithOp::Div => unreachable!("int division routed through floats"),
        }
    }

    #[inline(always)]
    fn apply_f64(self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::Div => l / r,
        }
    }

    /// SQL-ish symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Element-wise `l <op> r` over two aligned numeric BATs.
///
/// Integer inputs stay integral except for division, which promotes to
/// float (SQL semantics for `avg`-style expressions).
pub fn map_arith(l: &Bat, r: &Bat, op: ArithOp) -> Result<Bat> {
    if l.len() != r.len() {
        return Err(KernelError::LengthMismatch { op: "map_arith", left: l.len(), right: r.len() });
    }
    let out = match (&l.tail, &r.tail) {
        (Column::Int(a), Column::Int(b)) if op != ArithOp::Div => {
            Column::Int(a.iter().zip(b).map(|(&x, &y)| op.apply_i64(x, y)).collect())
        }
        (Column::Int(a), Column::Int(b)) => Column::Float(
            a.iter().zip(b).map(|(&x, &y)| op.apply_f64(x as f64, y as f64)).collect(),
        ),
        (Column::Float(a), Column::Float(b)) => {
            Column::Float(a.iter().zip(b).map(|(&x, &y)| op.apply_f64(x, y)).collect())
        }
        (Column::Int(a), Column::Float(b)) => {
            Column::Float(a.iter().zip(b).map(|(&x, &y)| op.apply_f64(x as f64, y)).collect())
        }
        (Column::Float(a), Column::Int(b)) => {
            Column::Float(a.iter().zip(b).map(|(&x, &y)| op.apply_f64(x, y as f64)).collect())
        }
        (a, b) => {
            return Err(KernelError::TypeMismatch {
                op: "map_arith",
                expected: a.data_type(),
                found: b.data_type(),
            })
        }
    };
    Ok(Bat::transient(out))
}

/// Element-wise `b <op> scalar`.
pub fn map_arith_scalar(b: &Bat, op: ArithOp, scalar: &Value) -> Result<Bat> {
    let out = match (&b.tail, scalar) {
        (Column::Int(a), Value::Int(s)) if op != ArithOp::Div => {
            Column::Int(a.iter().map(|&x| op.apply_i64(x, *s)).collect())
        }
        (Column::Int(a), s) => {
            let s = numeric(s, "map_arith_scalar")?;
            Column::Float(a.iter().map(|&x| op.apply_f64(x as f64, s)).collect())
        }
        (Column::Float(a), s) => {
            let s = numeric(s, "map_arith_scalar")?;
            Column::Float(a.iter().map(|&x| op.apply_f64(x, s)).collect())
        }
        (c, _) => {
            return Err(KernelError::TypeMismatch {
                op: "map_arith_scalar",
                expected: crate::DataType::Float,
                found: c.data_type(),
            })
        }
    };
    Ok(Bat::transient(out))
}

fn numeric(v: &Value, op: &'static str) -> Result<f64> {
    v.as_f64().ok_or(KernelError::TypeMismatch {
        op: if op.is_empty() { "numeric" } else { "map" },
        expected: crate::DataType::Float,
        found: v.data_type(),
    })
}

/// Scalar division used by the avg merge (`global_sum / global_count`).
/// Returns `None` when the divisor is zero-count (empty window): SQL's
/// `avg` over an empty set is NULL, which we surface as absence.
pub fn div_values(num: &Value, den: &Value) -> Result<Option<Value>> {
    let n = numeric(num, "div")?;
    let d = numeric(den, "div")?;
    if d == 0.0 {
        return Ok(None);
    }
    Ok(Some(Value::Float(n / d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_add_stays_int() {
        let a = Bat::transient(Column::Int(vec![1, 2]));
        let b = Bat::transient(Column::Int(vec![10, 20]));
        assert_eq!(map_arith(&a, &b, ArithOp::Add).unwrap().tail, Column::Int(vec![11, 22]));
    }

    #[test]
    fn int_div_promotes_to_float() {
        let a = Bat::transient(Column::Int(vec![3]));
        let b = Bat::transient(Column::Int(vec![2]));
        assert_eq!(map_arith(&a, &b, ArithOp::Div).unwrap().tail, Column::Float(vec![1.5]));
    }

    #[test]
    fn mixed_types_promote() {
        let a = Bat::transient(Column::Int(vec![4]));
        let b = Bat::transient(Column::Float(vec![0.5]));
        assert_eq!(map_arith(&a, &b, ArithOp::Mul).unwrap().tail, Column::Float(vec![2.0]));
        assert_eq!(map_arith(&b, &a, ArithOp::Mul).unwrap().tail, Column::Float(vec![2.0]));
    }

    #[test]
    fn length_mismatch_errors() {
        let a = Bat::transient(Column::Int(vec![1]));
        let b = Bat::transient(Column::Int(vec![1, 2]));
        assert!(map_arith(&a, &b, ArithOp::Add).is_err());
    }

    #[test]
    fn scalar_ops() {
        let a = Bat::transient(Column::Int(vec![1, 2, 3]));
        assert_eq!(
            map_arith_scalar(&a, ArithOp::Mul, &Value::Int(10)).unwrap().tail,
            Column::Int(vec![10, 20, 30])
        );
        assert_eq!(
            map_arith_scalar(&a, ArithOp::Div, &Value::Int(2)).unwrap().tail,
            Column::Float(vec![0.5, 1.0, 1.5])
        );
    }

    #[test]
    fn scalar_on_strings_errors() {
        let a = Bat::transient(Column::Str(vec!["x".into()]));
        assert!(map_arith_scalar(&a, ArithOp::Add, &Value::Int(1)).is_err());
    }

    #[test]
    fn div_values_basic() {
        assert_eq!(div_values(&Value::Int(7), &Value::Int(2)).unwrap(), Some(Value::Float(3.5)));
    }

    #[test]
    fn div_values_by_zero_is_none() {
        assert_eq!(div_values(&Value::Int(7), &Value::Int(0)).unwrap(), None);
    }

    #[test]
    fn div_values_non_numeric_errors() {
        assert!(div_values(&Value::from("x"), &Value::Int(1)).is_err());
    }

    #[test]
    fn wrapping_semantics_documented() {
        let a = Bat::transient(Column::Int(vec![i64::MAX]));
        let b = Bat::transient(Column::Int(vec![1]));
        // Overflow wraps rather than panicking: stream aggregation must not
        // abort a standing query mid-flight.
        assert_eq!(map_arith(&a, &b, ArithOp::Add).unwrap().tail, Column::Int(vec![i64::MIN]));
    }

    #[test]
    fn symbols() {
        assert_eq!(ArithOp::Div.symbol(), "/");
    }
}
