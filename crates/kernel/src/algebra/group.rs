//! Grouping: MonetDB's `group.new` equivalent.
//!
//! Produces a dense group-id per input tuple plus the *extents* (position of
//! each group's first occurrence), from which group keys can be fetched.
//! This is the building block for `GROUP BY` and for the re-grouping
//! *compensating action* in incremental plans (paper Fig. 3d: a second
//! `groupby` runs over the concatenation of partial group keys).

use crate::column::Column;
use crate::error::KernelError;
use crate::hash::FastMap;
use crate::{Bat, Result};

/// Result of grouping one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Groups {
    /// For each input tuple, the dense id of its group (0-based).
    pub ids: Vec<u32>,
    /// For each group, the input position of its first member.
    pub extents: Vec<u32>,
}

impl Groups {
    /// Number of distinct groups.
    pub fn ngroups(&self) -> usize {
        self.extents.len()
    }

    /// Materialize the group keys by fetching the representative positions
    /// from the grouped column.
    pub fn keys(&self, col: &Bat) -> Result<Column> {
        let mut out = Column::with_capacity(col.data_type(), self.extents.len());
        for &pos in &self.extents {
            let v = col.value_at(pos as usize).ok_or(KernelError::OidOutOfRange {
                oid: col.hseq + pos as u64,
                hseq: col.hseq,
                len: col.len(),
            })?;
            out.push(v).expect("same type");
        }
        Ok(out)
    }
}

/// Group the tail of `b`; group ids are assigned in first-occurrence order,
/// so the operation is deterministic.
pub fn group(b: &Bat) -> Result<Groups> {
    let n = b.len();
    let mut ids = Vec::with_capacity(n);
    let mut extents = Vec::new();
    match &b.tail {
        Column::Int(v) => {
            let mut seen: FastMap<i64, u32> = FastMap::default();
            for (i, &k) in v.iter().enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry(k).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }
        Column::Str(v) => {
            let mut seen: FastMap<&str, u32> = FastMap::default();
            for (i, k) in v.iter().enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry(k).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }
        Column::Bool(v) => {
            let mut seen: FastMap<bool, u32> = FastMap::default();
            for (i, &k) in v.iter().enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry(k).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }
        Column::Oid(v) => {
            let mut seen: FastMap<u64, u32> = FastMap::default();
            for (i, &k) in v.iter().enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry(k).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }
        Column::Float(v) => {
            // Floats group by bit pattern: exact-equality grouping, the same
            // rule MonetDB applies. (-0.0 and 0.0 form distinct groups.)
            let mut seen: FastMap<u64, u32> = FastMap::default();
            for (i, &k) in v.iter().enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry(k.to_bits()).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }
    }
    Ok(Groups { ids, extents })
}

/// Refine an existing grouping by a further key column — MonetDB's
/// `group.derive`. The result groups rows that agree on *both* the original
/// grouping and the new keys, enabling multi-attribute `GROUP BY` as a
/// chain of refinements: `group(a)` then `group_derive(g, b)` …
pub fn group_derive(prev: &Groups, keys: &Bat) -> Result<Groups> {
    if prev.ids.len() != keys.len() {
        return Err(KernelError::LengthMismatch {
            op: "group_derive",
            left: prev.ids.len(),
            right: keys.len(),
        });
    }
    let n = keys.len();
    let mut ids = Vec::with_capacity(n);
    let mut extents = Vec::new();
    // Composite key: (previous group id, new key); dispatch once on type.
    // One arm per column type; `$key` maps an element to its hashable form.
    macro_rules! derive_arm {
        ($v:expr, $kty:ty, $key:expr) => {{
            let mut seen: FastMap<(u32, $kty), u32> = FastMap::default();
            for (i, (&pid, k)) in prev.ids.iter().zip($v.iter()).enumerate() {
                let next = extents.len() as u32;
                let gid = *seen.entry((pid, $key(k))).or_insert_with(|| {
                    extents.push(i as u32);
                    next
                });
                ids.push(gid);
            }
        }};
    }
    match &keys.tail {
        Column::Int(v) => derive_arm!(v, i64, |k: &i64| *k),
        Column::Str(v) => derive_arm!(v, &str, String::as_str),
        Column::Bool(v) => derive_arm!(v, bool, |k: &bool| *k),
        Column::Oid(v) => derive_arm!(v, u64, |k: &u64| *k),
        Column::Float(v) => derive_arm!(v, u64, |k: &f64| k.to_bits()),
    }
    Ok(Groups { ids, extents })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_assigns_first_occurrence_order() {
        let b = Bat::transient(Column::Int(vec![5, 3, 5, 7, 3]));
        let g = group(&b).unwrap();
        assert_eq!(g.ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(g.extents, vec![0, 1, 3]);
        assert_eq!(g.ngroups(), 3);
    }

    #[test]
    fn group_keys_materialize() {
        let b = Bat::transient(Column::Int(vec![5, 3, 5, 7]));
        let g = group(&b).unwrap();
        assert_eq!(g.keys(&b).unwrap(), Column::Int(vec![5, 3, 7]));
    }

    #[test]
    fn group_strings() {
        let b = Bat::transient(Column::Str(vec!["b".into(), "a".into(), "b".into()]));
        let g = group(&b).unwrap();
        assert_eq!(g.ngroups(), 2);
        assert_eq!(g.keys(&b).unwrap(), Column::Str(vec!["b".into(), "a".into()]));
    }

    #[test]
    fn group_empty() {
        let b = Bat::empty(crate::DataType::Int);
        let g = group(&b).unwrap();
        assert!(g.ids.is_empty());
        assert_eq!(g.ngroups(), 0);
    }

    #[test]
    fn group_float_by_bit_pattern() {
        let b = Bat::transient(Column::Float(vec![1.0, 2.0, 1.0]));
        let g = group(&b).unwrap();
        assert_eq!(g.ids, vec![0, 1, 0]);
        assert_eq!(g.keys(&b).unwrap(), Column::Float(vec![1.0, 2.0]));
    }

    #[test]
    fn group_single_group() {
        let b = Bat::transient(Column::Int(vec![4, 4, 4]));
        let g = group(&b).unwrap();
        assert_eq!(g.ids, vec![0, 0, 0]);
        assert_eq!(g.extents, vec![0]);
    }

    #[test]
    fn derive_refines_groups() {
        // (a, b) pairs: (1,x) (1,y) (2,x) (1,x) -> groups {(1,x): rows 0,3},
        // {(1,y): row 1}, {(2,x): row 2}.
        let a = Bat::transient(Column::Int(vec![1, 1, 2, 1]));
        let b = Bat::transient(Column::Str(vec!["x".into(), "y".into(), "x".into(), "x".into()]));
        let g1 = group(&a).unwrap();
        let g2 = group_derive(&g1, &b).unwrap();
        assert_eq!(g2.ids, vec![0, 1, 2, 0]);
        assert_eq!(g2.ngroups(), 3);
        // Keys of both columns are recoverable through the extents.
        assert_eq!(g2.keys(&a).unwrap(), Column::Int(vec![1, 1, 2]));
        assert_eq!(g2.keys(&b).unwrap(), Column::Str(vec!["x".into(), "y".into(), "x".into()]));
    }

    #[test]
    fn derive_is_order_insensitive_in_group_count() {
        // group(a) then derive(b) produces the same partition as
        // group(b) then derive(a).
        let a = Bat::transient(Column::Int(vec![1, 2, 1, 2, 1]));
        let b = Bat::transient(Column::Int(vec![5, 5, 6, 6, 5]));
        let ab = group_derive(&group(&a).unwrap(), &b).unwrap();
        let ba = group_derive(&group(&b).unwrap(), &a).unwrap();
        assert_eq!(ab.ngroups(), ba.ngroups());
        // Same rows grouped together (ids may be permuted).
        for i in 0..a.len() {
            for j in 0..a.len() {
                assert_eq!(ab.ids[i] == ab.ids[j], ba.ids[i] == ba.ids[j], "rows {i},{j}");
            }
        }
    }

    #[test]
    fn derive_length_mismatch() {
        let a = Bat::transient(Column::Int(vec![1, 2]));
        let b = Bat::transient(Column::Int(vec![1]));
        let g = group(&a).unwrap();
        assert!(group_derive(&g, &b).is_err());
    }

    #[test]
    fn derive_on_floats_by_bits() {
        let a = Bat::transient(Column::Int(vec![1, 1]));
        let b = Bat::transient(Column::Float(vec![0.5, 0.5]));
        let g = group_derive(&group(&a).unwrap(), &b).unwrap();
        assert_eq!(g.ngroups(), 1);
    }
}
