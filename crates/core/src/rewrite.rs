//! The DataCell incremental plan rewriter.
//!
//! This module implements the paper's §3: take the *normal* MAL plan the
//! SQL compiler/optimizer produced and classify it into the segments of an
//! incremental plan (Fig. 2/3):
//!
//! 1. **Split** the input stream into `n = |W|/|w|` basic windows — done at
//!    runtime by the factory; the rewriter decides *what runs where*.
//! 2. **Replicate** as much of the plan as possible so it runs independently
//!    per basic window ("the goal is to split the plan as deep as
//!    possible"). Replicable instructions are classified `PerBw`.
//! 3. **Merge** partial results with `concat` plus a per-operator
//!    *compensating action* (re-aggregation, re-grouping, re-sorting,
//!    summing partial counts). Instructions that must see merged data are
//!    classified `Merge`; the boundary variables between the two worlds are
//!    the *frontier*, whose per-basic-window values the runtime caches in
//!    rings and merges per slide.
//! 4. **Transition** — shifting the cached intermediates as the window
//!    slides — is pure runtime bookkeeping on the rings (see
//!    `factory::incremental`).
//!
//! Multi-stream joins get the n×n replication of Fig. 3(e): the join (and
//! everything downstream of it that is still replicable) is classified
//! `Matrix` and evaluated per pair of basic windows.
//!
//! `avg` is *expanded* (Fig. 3c) by a MAL→MAL pre-pass into `sum`+`count`
//! flows merged by a division.

use crate::error::DataCellError;
use datacell_kernel::algebra::{AggKind, ArithOp};
use datacell_plan::{Instr, MalOp, MalPlan, VarId};

/// Which part of the incremental plan computes a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Computed once at registration (persistent table binds and anything
    /// derived only from them).
    Static,
    /// Computed once per basic window of stream `k` (index into
    /// [`MalPlan::streams`]).
    PerBw(usize),
    /// Computed once per *pair* of basic windows (two-stream join flows).
    Matrix,
    /// Computed once per slide, over merged frontier values.
    Merge,
}

/// What a variable's value *is*, semantically — this decides the merge rule
/// applied when the variable crosses the per-basic-window → merge frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Row-faithful data: concatenating per-basic-window values yields
    /// exactly the whole-window value ("simple concatenation" category:
    /// select, fetch, map results).
    Rows,
    /// A partial scalar aggregate; merged by the compensating aggregate
    /// (paper: "applying the very operation ... also on the concatenated
    /// result", count compensated by sum).
    PartialScalar(AggKind),
    /// Per-group partial aggregate column, member of the group cluster
    /// identified by the `Group` variable (merged by re-grouping).
    GroupedPartial(AggKind),
    /// Per-basic-window distinct group keys (merged by re-grouping).
    GroupKeysPartial,
    /// A grouping structure — never allowed to cross the frontier.
    GroupsStruct,
    /// Per-basic-window distinct rows; merged by `distinct(concat(...))`.
    DistinctRows,
    /// Per-basic-window sorted rows; merged by `sort(concat(...))`.
    SortedRows {
        /// Sort direction.
        desc: bool,
    },
    /// Computed in the merge stage or statically; no merge rule needed.
    Plain,
}

/// One group-by cluster — the destinations of a fused `GroupAgg` node
/// whose partials cross the merge frontier. Merged as a unit (Fig. 3d):
/// concat the per-part distinct keys, re-group, compensate each
/// aggregate member. The pre-fusion `Group`/`GroupKeys`/`GroupedAgg`
/// triple collapsed into this node, so the cluster is just the node's
/// destination list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The fused node's keys destination (per-bw distinct keys).
    pub keys_var: VarId,
    /// Aggregate member variables and their kinds.
    pub agg_vars: Vec<(VarId, AggKind)>,
    /// The node's *input* is placement-aligned: it groups stream-derived
    /// rows per basic window, so under `PlacementMode::Aligned` the rows
    /// a keyed receptor routed to shard *i* carry the same canonical
    /// key-hash the kernel uses to carve morsel *i* — partials own
    /// disjoint keys end to end. The incremental factory cashes this mark
    /// in at execution time: per-bw segments of a plan with an aligned
    /// cluster run with `ParConfig::with_aligned_input(true)`, letting the
    /// aligned aggregate and join kernels elide their internal re-scatter
    /// in favor of run-compressed partition copies (the kernel still
    /// hashes every key, so the mark can never corrupt results). `false`
    /// for matrix (post-join) clusters, whose input rows follow the join
    /// pair order, not the grouping key's placement; the kernel then
    /// re-scatters internally.
    pub placement_aligned: bool,
}

/// The rewritten plan: the original program plus the classification that
/// tells the incremental runtime what to run per basic window, per pair,
/// and per slide.
#[derive(Debug, Clone)]
pub struct IncrementalPlan {
    /// The (avg-expanded) MAL program.
    pub mal: MalPlan,
    /// Stage per variable.
    pub stages: Vec<Stage>,
    /// Kind per variable.
    pub kinds: Vec<VarKind>,
    /// Instructions evaluated once at registration.
    pub static_instrs: Vec<usize>,
    /// Instructions evaluated per new basic window, grouped by stream index.
    pub perbw_instrs: Vec<Vec<usize>>,
    /// Instructions evaluated per new (left, right) basic-window pair.
    pub matrix_instrs: Vec<usize>,
    /// Instructions evaluated per slide over merged data.
    pub merge_instrs: Vec<usize>,
    /// Frontier variables: flow variables whose per-bw (or per-cell) values
    /// are cached and merged.
    pub frontier: Vec<VarId>,
    /// Per-bw variables that matrix cells read (join inputs); cached in
    /// rings even if not themselves merged.
    pub ring_only: Vec<VarId>,
    /// Group-by clusters.
    pub clusters: Vec<Cluster>,
    /// Stream indices joined by the (single) matrix join, if any.
    pub matrix_pair: Option<(usize, usize)>,
}

impl IncrementalPlan {
    /// All per-bw variables the runtime must cache per basic window.
    pub fn ring_vars(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = self
            .frontier
            .iter()
            .copied()
            .filter(|&v| matches!(self.stages[v], Stage::PerBw(_)))
            .collect();
        for &v in &self.ring_only {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Frontier variables living in the join matrix.
    pub fn matrix_ring_vars(&self) -> Vec<VarId> {
        self.frontier.iter().copied().filter(|&v| self.stages[v] == Stage::Matrix).collect()
    }

    /// Render the incremental plan: the MAL program annotated with stages —
    /// the textual analogue of the paper's Fig. 3 right-hand sides.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("incremental plan (stage | instruction):\n");
        for ins in &self.mal.instrs {
            let stage = self.stages[ins.dests[0]];
            let tag = match stage {
                Stage::Static => "static ",
                Stage::PerBw(k) => {
                    out.push_str(&format!("per-bw[{k}] | "));
                    ""
                }
                Stage::Matrix => "per-cell",
                Stage::Merge => "merge  ",
            };
            if !tag.is_empty() {
                out.push_str(&format!("{tag} | "));
            }
            let dests: Vec<String> = ins.dests.iter().map(|d| format!("X_{d}")).collect();
            out.push_str(&format!("{} := {}\n", dests.join(", "), ins.op.name()));
        }
        let aligned = self.clusters.iter().filter(|c| c.placement_aligned).count();
        out.push_str(&format!(
            "frontier: {:?}\nclusters: {} ({aligned} placement-aligned)\n",
            self.frontier,
            self.clusters.len()
        ));
        out
    }
}

/// Expand `avg` into `sum` + `count` + divide (the paper's *expanding
/// replication*, Fig. 3c) as a MAL→MAL rewrite, keeping all other
/// instructions and variable ids intact.
pub fn expand_avg(plan: &MalPlan) -> MalPlan {
    let mut nvars = plan.nvars;
    let mut instrs = Vec::with_capacity(plan.instrs.len());
    for ins in &plan.instrs {
        match &ins.op {
            MalOp::ScalarAgg { kind: AggKind::Avg, vals } => {
                let s = nvars;
                let c = nvars + 1;
                nvars += 2;
                instrs.push(Instr {
                    dests: vec![s],
                    op: MalOp::ScalarAgg { kind: AggKind::Sum, vals: *vals },
                });
                instrs.push(Instr {
                    dests: vec![c],
                    op: MalOp::ScalarAgg { kind: AggKind::Count, vals: *vals },
                });
                instrs.push(Instr {
                    dests: ins.dests.clone(),
                    op: MalOp::DivScalar { num: s, den: c },
                });
            }
            MalOp::GroupedAgg { kind: AggKind::Avg, vals, groups } => {
                let s = nvars;
                let c = nvars + 1;
                nvars += 2;
                instrs.push(Instr {
                    dests: vec![s],
                    op: MalOp::GroupedAgg { kind: AggKind::Sum, vals: *vals, groups: *groups },
                });
                instrs.push(Instr {
                    dests: vec![c],
                    op: MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: *groups },
                });
                instrs.push(Instr {
                    dests: ins.dests.clone(),
                    op: MalOp::MapArith { left: s, right: c, op: ArithOp::Div },
                });
            }
            MalOp::GroupAgg { keys, aggs } if aggs.iter().any(|(k, _)| *k == AggKind::Avg) => {
                // Expand each avg slot of the fused node into a sum slot
                // + a count slot (fresh destinations) and divide them
                // into the original avg destination right after the node.
                let mut new_aggs = Vec::with_capacity(aggs.len() + 1);
                let mut new_dests = vec![ins.dests[0]];
                let mut divs = Vec::new();
                for ((kind, vals), &dest) in aggs.iter().zip(&ins.dests[1..]) {
                    match kind {
                        AggKind::Avg => {
                            let s = nvars;
                            let c = nvars + 1;
                            nvars += 2;
                            new_aggs.push((AggKind::Sum, *vals));
                            new_aggs.push((AggKind::Count, None));
                            new_dests.push(s);
                            new_dests.push(c);
                            divs.push((s, c, dest));
                        }
                        k => {
                            new_aggs.push((*k, *vals));
                            new_dests.push(dest);
                        }
                    }
                }
                instrs.push(Instr {
                    dests: new_dests,
                    op: MalOp::GroupAgg { keys: *keys, aggs: new_aggs },
                });
                for (s, c, d) in divs {
                    instrs.push(Instr {
                        dests: vec![d],
                        op: MalOp::MapArith { left: s, right: c, op: ArithOp::Div },
                    });
                }
            }
            _ => instrs.push(ins.clone()),
        }
    }
    MalPlan {
        instrs,
        result_names: plan.result_names.clone(),
        result_vars: plan.result_vars.clone(),
        nvars,
        streams: plan.streams.clone(),
    }
}

/// Classify a normal plan into an incremental plan.
///
/// Errors with [`DataCellError::Unsupported`] for shapes outside the
/// incremental rewriter's reach (more than one stream-stream join, ops that
/// mix two streams without a join, landmark joins are rejected later by the
/// factory). Callers can fall back to re-evaluation mode for those.
pub fn rewrite(plan: &MalPlan) -> Result<IncrementalPlan, DataCellError> {
    // Lower any hand-built Group/GroupKeys/GroupedAgg chains to the fused
    // GroupAgg form first (the SQL compiler already emits it), then
    // expand avg so every surviving aggregate has a compensating action.
    // Both passes run under the differential verifier (`checked_pass`):
    // a structurally broken plan is rejected at the pass boundary that
    // produced it, with the pass name in the diagnostic.
    let mut fusion_diags = Vec::new();
    let fused = datacell_plan::checked_pass("fuse_group_agg", plan, |p| {
        let (out, diags) = datacell_plan::fuse_group_agg_diag(p);
        fusion_diags = diags;
        out
    })
    .map_err(DataCellError::Plan)?;
    let mal = datacell_plan::checked_pass("expand_avg", &fused, expand_avg)
        .map_err(DataCellError::Plan)?;
    mal.validate().map_err(DataCellError::Plan)?;
    let n_streams = mal.streams.len();
    let mut stages: Vec<Stage> = vec![Stage::Static; mal.nvars];
    let mut kinds: Vec<VarKind> = vec![VarKind::Plain; mal.nvars];
    let mut matrix_pair: Option<(usize, usize)> = None;

    // -- stage/kind classification, one instruction at a time (the
    //    paper's "greedy manner ... consumes one operator of the target
    //    plan at a time").
    for ins in &mal.instrs {
        let (stage, kind) = classify(&ins.op, &stages, &kinds, &mal, &mut matrix_pair)?;
        match (&ins.op, stage) {
            // A replicated fused group-agg writes mixed kinds: distinct
            // keys first, then one grouped partial per aggregate.
            (MalOp::GroupAgg { aggs, .. }, Stage::PerBw(_) | Stage::Matrix) => {
                stages[ins.dests[0]] = stage;
                kinds[ins.dests[0]] = VarKind::GroupKeysPartial;
                for ((k, _), &d) in aggs.iter().zip(&ins.dests[1..]) {
                    stages[d] = stage;
                    kinds[d] = VarKind::GroupedPartial(*k);
                }
            }
            _ => {
                for &d in &ins.dests {
                    stages[d] = stage;
                    kinds[d] = kind;
                }
            }
        }
    }

    // -- segment assignment per instruction.
    let mut static_instrs = Vec::new();
    let mut perbw_instrs: Vec<Vec<usize>> = vec![Vec::new(); n_streams];
    let mut matrix_instrs = Vec::new();
    let mut merge_instrs = Vec::new();
    for (i, ins) in mal.instrs.iter().enumerate() {
        match stages[ins.dests[0]] {
            Stage::Static => static_instrs.push(i),
            Stage::PerBw(k) => perbw_instrs[k].push(i),
            Stage::Matrix => matrix_instrs.push(i),
            Stage::Merge => merge_instrs.push(i),
        }
    }

    // -- frontier: flow vars read by merge instrs, plus flow result vars.
    let mut frontier: Vec<VarId> = Vec::new();
    let push_frontier = |v: VarId, frontier: &mut Vec<VarId>| {
        if !frontier.contains(&v) {
            frontier.push(v);
        }
    };
    for &i in &merge_instrs {
        for a in mal.instrs[i].op.args() {
            if matches!(stages[a], Stage::PerBw(_) | Stage::Matrix) {
                push_frontier(a, &mut frontier);
            }
        }
    }
    for &v in &mal.result_vars {
        if matches!(stages[v], Stage::PerBw(_) | Stage::Matrix) {
            push_frontier(v, &mut frontier);
        }
    }
    for &v in &frontier {
        if kinds[v] == VarKind::GroupsStruct {
            return Err(DataCellError::Unsupported(
                "a grouping structure crosses the merge frontier; \
                 restructure the query or use re-evaluation mode"
                    .into(),
            ));
        }
    }

    // -- ring-only vars: per-bw vars read by matrix instructions.
    let mut ring_only = Vec::new();
    for &i in &matrix_instrs {
        for a in mal.instrs[i].op.args() {
            if matches!(stages[a], Stage::PerBw(_)) && !ring_only.contains(&a) {
                ring_only.push(a);
            }
        }
    }

    // -- group clusters: every per-bw/matrix fused GroupAgg node whose
    //    members touch the frontier. A frontier member pulls the whole
    //    cluster into the frontier (keys are needed to re-group partials).
    let mut clusters = Vec::new();
    for ins in &mal.instrs {
        let MalOp::GroupAgg { aggs, .. } = &ins.op else { continue };
        let keys_var = ins.dests[0];
        if !matches!(stages[keys_var], Stage::PerBw(_) | Stage::Matrix) {
            continue;
        }
        let agg_vars: Vec<(VarId, AggKind)> =
            ins.dests[1..].iter().zip(aggs).map(|(&d, &(k, _))| (d, k)).collect();
        let any_frontier =
            frontier.contains(&keys_var) || agg_vars.iter().any(|(v, _)| frontier.contains(v));
        if !any_frontier {
            continue;
        }
        // All members must be cached to allow re-grouping — the keys dest
        // always exists on the fused node, so the pre-fusion "grouped
        // aggregation without group keys" failure mode is gone.
        for v in std::iter::once(keys_var).chain(agg_vars.iter().map(|(v, _)| *v)) {
            if !frontier.contains(&v) {
                frontier.push(v);
            }
        }
        clusters.push(Cluster {
            keys_var,
            agg_vars,
            placement_aligned: matches!(stages[keys_var], Stage::PerBw(_)),
        });
    }

    // Unfused Group/GroupKeys/GroupedAgg chains (shapes fuse_group_agg
    // declined) cannot cross the frontier: their partial kinds have no
    // standalone merge rule.
    for &v in &frontier {
        let in_cluster =
            clusters.iter().any(|c| c.keys_var == v || c.agg_vars.iter().any(|&(av, _)| av == v));
        if !in_cluster && matches!(kinds[v], VarKind::GroupKeysPartial | VarKind::GroupedPartial(_))
        {
            // The fusion pass explained exactly why it declined this
            // chain — surface that instead of a bare string.
            let why = fusion_diags
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            let detail = if why.is_empty() { String::new() } else { format!(": {why}") };
            return Err(DataCellError::Unsupported(format!(
                "an unfused group/aggregate chain crosses the merge frontier; \
                 restructure the query or use re-evaluation mode{detail}"
            )));
        }
    }

    let inc = IncrementalPlan {
        mal,
        stages,
        kinds,
        static_instrs,
        perbw_instrs,
        matrix_instrs,
        merge_instrs,
        frontier,
        ring_only,
        clusters,
        matrix_pair,
    };
    // Close the loop: under the verifier, the classification itself is a
    // pass whose output must satisfy the ring-variable discipline.
    if datacell_plan::verify::enabled() {
        verify_incremental(&inc)?;
    }
    Ok(inc)
}

/// Verify the ring-variable discipline and segment/stage consistency of an
/// incremental plan — the `core`-side layer of the static analyzer (the
/// `plan`-side layers are [`datacell_plan::verify_all`] and
/// [`datacell_plan::lint_incremental`]).
///
/// Checks: stage/kind tables cover every variable; the four instruction
/// segments partition the program and agree with the per-variable stages;
/// every frontier variable is a flow variable with a mergeable kind;
/// `ring_vars`/`matrix_ring_vars` are consistent with the stages; matrix
/// instructions exist only alongside a joined stream pair; and every
/// cluster member is a frontier variable whose kind matches its slot.
pub fn verify_incremental(inc: &IncrementalPlan) -> Result<(), DataCellError> {
    use datacell_plan::verify::{Rule, VerifyError};
    let fail =
        |e: VerifyError| Err(DataCellError::Plan(datacell_plan::PlanError::Verify(Box::new(e))));
    let ring_err = |msg: String, var: Option<VarId>| {
        let mut e = VerifyError::plan_level(Rule::RingDiscipline, msg);
        if let Some(v) = var {
            e = e.with_var(v);
        }
        fail(e)
    };

    let nvars = inc.mal.nvars;
    if inc.stages.len() != nvars || inc.kinds.len() != nvars {
        return ring_err(
            format!(
                "stage/kind tables cover {}/{} variables of {nvars}",
                inc.stages.len(),
                inc.kinds.len()
            ),
            None,
        );
    }

    // Segments partition the instruction list and agree with the stages.
    let mut seen = vec![0usize; inc.mal.instrs.len()];
    let segments: Vec<(&str, &[usize])> = {
        let mut s: Vec<(&str, &[usize])> = vec![
            ("static", &inc.static_instrs),
            ("matrix", &inc.matrix_instrs),
            ("merge", &inc.merge_instrs),
        ];
        for per in &inc.perbw_instrs {
            s.push(("per-bw", per));
        }
        s
    };
    for (seg_name, idxs) in segments {
        for &i in idxs {
            if i >= inc.mal.instrs.len() {
                return ring_err(
                    format!("{seg_name} segment references instr {i} out of range"),
                    None,
                );
            }
            seen[i] += 1;
            let stage = inc.stages[inc.mal.instrs[i].dests[0]];
            let matches_seg = match stage {
                Stage::Static => seg_name == "static",
                Stage::PerBw(_) => seg_name == "per-bw",
                Stage::Matrix => seg_name == "matrix",
                Stage::Merge => seg_name == "merge",
            };
            if !matches_seg {
                return ring_err(
                    format!("instr {i} sits in the {seg_name} segment but its stage is {stage:?}"),
                    Some(inc.mal.instrs[i].dests[0]),
                );
            }
        }
    }
    if let Some(i) = seen.iter().position(|&c| c != 1) {
        return ring_err(
            format!("instr {i} appears {} times across segments (want exactly 1)", seen[i]),
            None,
        );
    }

    // Frontier vars are flow variables with a merge rule.
    for &v in &inc.frontier {
        if !matches!(inc.stages[v], Stage::PerBw(_) | Stage::Matrix) {
            return ring_err(
                format!("frontier variable has non-flow stage {:?}", inc.stages[v]),
                Some(v),
            );
        }
        if inc.kinds[v] == VarKind::GroupsStruct {
            return ring_err("a grouping structure is cached in a ring".into(), Some(v));
        }
    }

    // Ring-var views derive from frontier/ring_only and the stage table.
    for v in inc.ring_vars() {
        if !matches!(inc.stages[v], Stage::PerBw(_)) {
            return ring_err(
                format!("ring variable has stage {:?}, want per-bw", inc.stages[v]),
                Some(v),
            );
        }
    }
    for v in inc.matrix_ring_vars() {
        if inc.stages[v] != Stage::Matrix {
            return ring_err(
                format!("matrix ring variable has stage {:?}, want matrix", inc.stages[v]),
                Some(v),
            );
        }
    }
    if !inc.matrix_instrs.is_empty() && inc.matrix_pair.is_none() {
        return ring_err("matrix instructions without a joined stream pair".into(), None);
    }

    // Cluster members live on the frontier with the kinds their slots
    // require (keys partial + grouped partials) — the re-grouping merge
    // rule reads all of them.
    for c in &inc.clusters {
        if !inc.frontier.contains(&c.keys_var) {
            return ring_err(
                "cluster keys variable is not cached on the frontier".into(),
                Some(c.keys_var),
            );
        }
        if inc.kinds[c.keys_var] != VarKind::GroupKeysPartial {
            return ring_err(
                format!(
                    "cluster keys variable has kind {:?}, want group-keys partial",
                    inc.kinds[c.keys_var]
                ),
                Some(c.keys_var),
            );
        }
        for &(v, k) in &c.agg_vars {
            if !inc.frontier.contains(&v) {
                return ring_err(
                    "cluster aggregate member is not cached on the frontier".into(),
                    Some(v),
                );
            }
            if inc.kinds[v] != VarKind::GroupedPartial(k) {
                return ring_err(
                    format!(
                        "cluster member has kind {:?}, want grouped partial {k:?}",
                        inc.kinds[v]
                    ),
                    Some(v),
                );
            }
        }
    }
    Ok(())
}

/// Classify one operator given the stages/kinds of its arguments.
fn classify(
    op: &MalOp,
    stages: &[Stage],
    kinds: &[VarKind],
    mal: &MalPlan,
    matrix_pair: &mut Option<(usize, usize)>,
) -> Result<(Stage, VarKind), DataCellError> {
    // Stream binds start flows.
    if let MalOp::BindStream { stream, .. } = op {
        let k = mal
            .streams
            .iter()
            .position(|s| s == stream)
            .expect("bound stream is registered in plan.streams");
        return Ok((Stage::PerBw(k), VarKind::Rows));
    }
    if matches!(op, MalOp::BindTable { .. }) {
        return Ok((Stage::Static, VarKind::Plain));
    }

    let args = op.args();
    let arg_stages: Vec<Stage> = args.iter().map(|&a| stages[a]).collect();
    let any_partial = args.iter().any(|&a| {
        matches!(
            kinds[a],
            VarKind::PartialScalar(_)
                | VarKind::GroupedPartial(_)
                | VarKind::GroupKeysPartial
                | VarKind::DistinctRows
                | VarKind::SortedRows { .. }
        ) && matches!(stages[a], Stage::PerBw(_) | Stage::Matrix)
    });

    // The unique flow stage among the args (or Merge/Static).
    let flow = combined_flow(op, &arg_stages, matrix_pair)?;

    // Ops that never replicate: run at merge over merged inputs.
    let never_replicates =
        matches!(op, MalOp::SortPerm { .. } | MalOp::Slice { .. } | MalOp::DivScalar { .. });

    // An op consuming partial values cannot be replicated — partials must
    // be merged first (replicating would aggregate aggregates).
    if never_replicates || any_partial {
        if matches!(flow, Stage::PerBw(_) | Stage::Matrix | Stage::Merge) {
            return Ok((Stage::Merge, merge_kind(op)));
        }
        return Ok((Stage::Static, VarKind::Plain));
    }

    match flow {
        Stage::Static => Ok((Stage::Static, VarKind::Plain)),
        Stage::Merge => Ok((Stage::Merge, merge_kind(op))),
        stage @ (Stage::PerBw(_) | Stage::Matrix) => {
            let kind = match op {
                MalOp::Select { .. }
                | MalOp::Fetch { .. }
                | MalOp::MapArith { .. }
                | MalOp::MapScalar { .. }
                | MalOp::Concat { .. }
                | MalOp::Join { .. } => VarKind::Rows,
                MalOp::ScalarAgg { kind, .. } => VarKind::PartialScalar(*kind),
                MalOp::Group { .. } => VarKind::GroupsStruct,
                MalOp::GroupKeys { .. } => VarKind::GroupKeysPartial,
                MalOp::GroupedAgg { kind, .. } => VarKind::GroupedPartial(*kind),
                // Placeholder for the keys dest; the rewrite loop assigns
                // the per-destination kinds of a fused node itself.
                MalOp::GroupAgg { .. } => VarKind::GroupKeysPartial,
                MalOp::Distinct { .. } => VarKind::DistinctRows,
                MalOp::Sort { desc, .. } => VarKind::SortedRows { desc: *desc },
                MalOp::BindStream { .. } | MalOp::BindTable { .. } => unreachable!("handled above"),
                MalOp::SortPerm { .. } | MalOp::Slice { .. } | MalOp::DivScalar { .. } => {
                    unreachable!("never_replicates handled above")
                }
            };
            Ok((stage, kind))
        }
    }
}

/// Combine argument stages into the op's flow stage. Handles the join
/// boundary (two different streams → Matrix) and rejects unsupported
/// mixtures.
fn combined_flow(
    op: &MalOp,
    arg_stages: &[Stage],
    matrix_pair: &mut Option<(usize, usize)>,
) -> Result<Stage, DataCellError> {
    let mut flow = Stage::Static;
    for (idx, s) in arg_stages.iter().enumerate() {
        match (flow, *s) {
            (f, Stage::Static) => flow = f,
            (Stage::Static, s) => flow = s,
            (Stage::Merge, _) | (_, Stage::Merge) => flow = Stage::Merge,
            (Stage::PerBw(a), Stage::PerBw(b)) if a == b => flow = Stage::PerBw(a),
            (Stage::PerBw(a), Stage::PerBw(b)) => {
                if matches!(op, MalOp::Join { .. }) && idx == 1 {
                    match matrix_pair {
                        None => {
                            *matrix_pair = Some((a, b));
                            flow = Stage::Matrix;
                        }
                        Some(pair) if *pair == (a, b) => flow = Stage::Matrix,
                        Some(_) => {
                            return Err(DataCellError::Unsupported(
                                "more than one stream-stream join; incremental mode \
                                 supports a single join pair (use re-evaluation)"
                                    .into(),
                            ))
                        }
                    }
                } else {
                    return Err(DataCellError::Unsupported(format!(
                        "{} combines two streams without a join",
                        op.name()
                    )));
                }
            }
            (Stage::Matrix, Stage::PerBw(k)) | (Stage::PerBw(k), Stage::Matrix) => {
                // Reading a per-bw var inside a matrix cell is fine if the
                // stream is one of the joined pair.
                match matrix_pair {
                    Some((a, b)) if k == *a || k == *b => flow = Stage::Matrix,
                    _ => {
                        return Err(DataCellError::Unsupported(
                            "matrix flow mixed with an unjoined stream".into(),
                        ))
                    }
                }
            }
            (Stage::Matrix, Stage::Matrix) => flow = Stage::Matrix,
        }
    }
    Ok(flow)
}

/// Kind assigned to merge-stage destinations.
fn merge_kind(_op: &MalOp) -> VarKind {
    VarKind::Plain
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::algebra::Predicate;
    use datacell_plan::AggExpr;
    use datacell_plan::{compile, ColumnRef, LogicalPlan};

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    /// Fig 3a: select a from stream where a < v1
    fn fig3a() -> MalPlan {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::lt(10))
            .project(vec![(col("s", "a"), "a".into())]);
        compile(&p).unwrap()
    }

    /// Fig 3b: select sum(a) from stream where a < v1
    fn fig3b() -> MalPlan {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::lt(10))
            .aggregate(None, vec![AggExpr::new(AggKind::Sum, col("s", "a"), "sum_a")]);
        compile(&p).unwrap()
    }

    /// Fig 3c: select avg(a) from stream where a < v1
    fn fig3c() -> MalPlan {
        let p = LogicalPlan::stream("s")
            .filter(col("s", "a"), Predicate::lt(10))
            .aggregate(None, vec![AggExpr::new(AggKind::Avg, col("s", "a"), "avg_a")]);
        compile(&p).unwrap()
    }

    /// Fig 3d: select a1, max(a2) from stream where a1 < v1 group by a1
    fn fig3d() -> MalPlan {
        let p = LogicalPlan::stream("s").filter(col("s", "a1"), Predicate::lt(10)).aggregate(
            Some(col("s", "a1")),
            vec![AggExpr::new(AggKind::Max, col("s", "a2"), "max_a2")],
        );
        compile(&p).unwrap()
    }

    /// Fig 3e: select max(a1) from sA, sB where a1<v1 and b1<v2 and a1=b1
    fn fig3e() -> MalPlan {
        let p = LogicalPlan::stream("sA")
            .filter(col("sA", "a1"), Predicate::lt(10))
            .join(
                LogicalPlan::stream("sB").filter(col("sB", "b1"), Predicate::lt(20)),
                col("sA", "a1"),
                col("sB", "b1"),
            )
            .aggregate(None, vec![AggExpr::new(AggKind::Max, col("sA", "a1"), "max_a1")]);
        compile(&p).unwrap()
    }

    #[test]
    fn fig3a_fully_replicates() {
        let inc = rewrite(&fig3a()).unwrap();
        // Everything is per-bw; the only merge work is frontier concat.
        assert!(inc.merge_instrs.is_empty());
        assert_eq!(inc.perbw_instrs[0].len(), inc.mal.instrs.len());
        // Result var is the frontier, kind Rows -> simple concatenation.
        assert_eq!(inc.frontier.len(), 1);
        assert_eq!(inc.kinds[inc.frontier[0]], VarKind::Rows);
        assert!(inc.matrix_pair.is_none());
    }

    #[test]
    fn fig3b_sum_is_partial_scalar() {
        let inc = rewrite(&fig3b()).unwrap();
        assert_eq!(inc.frontier.len(), 1);
        assert_eq!(inc.kinds[inc.frontier[0]], VarKind::PartialScalar(AggKind::Sum));
        assert!(inc.merge_instrs.is_empty()); // compensation is the merge rule itself
    }

    #[test]
    fn fig3c_avg_expands_to_two_flows_plus_div() {
        let inc = rewrite(&fig3c()).unwrap();
        // Two frontier vars: partial sum + partial count.
        let kinds: Vec<VarKind> = inc.frontier.iter().map(|&v| inc.kinds[v]).collect();
        assert!(kinds.contains(&VarKind::PartialScalar(AggKind::Sum)));
        assert!(kinds.contains(&VarKind::PartialScalar(AggKind::Count)));
        // The division runs at merge.
        assert_eq!(inc.merge_instrs.len(), 1);
        assert!(matches!(inc.mal.instrs[inc.merge_instrs[0]].op, MalOp::DivScalar { .. }));
    }

    #[test]
    fn fig3d_builds_group_cluster() {
        let inc = rewrite(&fig3d()).unwrap();
        assert_eq!(inc.clusters.len(), 1);
        let c = &inc.clusters[0];
        assert_eq!(c.agg_vars.len(), 1);
        assert_eq!(c.agg_vars[0].1, AggKind::Max);
        // Keys and aggs are both cached.
        assert!(inc.frontier.contains(&c.keys_var));
        assert!(inc.frontier.contains(&c.agg_vars[0].0));
    }

    #[test]
    fn per_bw_clusters_are_placement_aligned_matrix_clusters_are_not() {
        // Grouping stream rows directly: the ingest-side key hash and the
        // kernel morsel hash can line up, so the cluster is marked.
        let inc = rewrite(&fig3d()).unwrap();
        assert!(inc.clusters[0].placement_aligned);
        assert!(inc.explain().contains("clusters: 1 (1 placement-aligned)"));
        // Grouping join output: rows follow the pair order, not the
        // grouping key's placement — not marked.
        let p = LogicalPlan::stream("sA")
            .join(LogicalPlan::stream("sB"), col("sA", "a1"), col("sB", "b1"))
            .aggregate(
                Some(col("sA", "a1")),
                vec![AggExpr::new(AggKind::Sum, col("sB", "b2"), "s")],
            );
        let inc = rewrite(&compile(&p).unwrap()).unwrap();
        assert_eq!(inc.clusters.len(), 1);
        assert!(!inc.clusters[0].placement_aligned);
        assert!(inc.explain().contains("clusters: 1 (0 placement-aligned)"));
    }

    #[test]
    fn cluster_is_the_fused_node_dest_list() {
        // The rewriter consumes the fused GroupAgg node directly: the
        // cluster's keys/agg vars are exactly the node's destinations,
        // with per-destination kinds (keys partial + grouped partials).
        let inc = rewrite(&fig3d()).unwrap();
        let ga = inc
            .mal
            .instrs
            .iter()
            .find(|i| matches!(i.op, MalOp::GroupAgg { .. }))
            .expect("compiler emits the fused node");
        let c = &inc.clusters[0];
        assert_eq!(c.keys_var, ga.dests[0]);
        assert_eq!(c.agg_vars[0].0, ga.dests[1]);
        assert_eq!(inc.kinds[ga.dests[0]], VarKind::GroupKeysPartial);
        assert_eq!(inc.kinds[ga.dests[1]], VarKind::GroupedPartial(AggKind::Max));
        assert!(matches!(inc.stages[ga.dests[0]], Stage::PerBw(0)));
    }

    #[test]
    fn hand_built_unfused_chain_rewrites_through_the_shim() {
        // A plan assembled with standalone Group/GroupKeys/GroupedAgg
        // nodes (the pre-fusion MAL dialect) is lowered by fuse_group_agg
        // inside rewrite() and builds the same cluster shape.
        use datacell_plan::mal::MalBuilder;
        let mut b = MalBuilder::new();
        let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
        let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
        let g = b.emit(MalOp::Group { keys: k });
        let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
        let s = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: Some(v), groups: g });
        let plan = b.finish(vec!["k".into(), "s".into()], vec![gk, s]);
        let inc = rewrite(&plan).unwrap();
        assert!(inc.mal.instrs.iter().any(|i| matches!(i.op, MalOp::GroupAgg { .. })));
        assert!(!inc.mal.instrs.iter().any(|i| matches!(i.op, MalOp::Group { .. })));
        assert_eq!(inc.clusters.len(), 1);
        assert_eq!(inc.clusters[0].agg_vars[0].1, AggKind::Sum);
    }

    #[test]
    fn fig3e_join_becomes_matrix() {
        let inc = rewrite(&fig3e()).unwrap();
        assert_eq!(inc.matrix_pair, Some((0, 1)));
        assert!(!inc.matrix_instrs.is_empty());
        // The max over the join is a per-cell partial scalar.
        let max_var =
            inc.frontier.iter().find(|&&v| inc.kinds[v] == VarKind::PartialScalar(AggKind::Max));
        assert!(max_var.is_some());
        assert_eq!(inc.stages[*max_var.unwrap()], Stage::Matrix);
        // Join inputs (select/fetch results per stream) are ring-cached.
        assert!(!inc.ring_only.is_empty());
        for &v in &inc.ring_only {
            assert!(matches!(inc.stages[v], Stage::PerBw(_)));
        }
    }

    #[test]
    fn avg_expansion_rewrites_scalar_and_grouped() {
        let mal = fig3c();
        let has_avg =
            mal.instrs.iter().any(|i| matches!(i.op, MalOp::ScalarAgg { kind: AggKind::Avg, .. }));
        assert!(has_avg);
        let expanded = expand_avg(&mal);
        expanded.validate().unwrap();
        assert!(!expanded
            .instrs
            .iter()
            .any(|i| matches!(i.op, MalOp::ScalarAgg { kind: AggKind::Avg, .. })));
        assert!(expanded.instrs.iter().any(|i| matches!(i.op, MalOp::DivScalar { .. })));
    }

    #[test]
    fn grouped_avg_expansion() {
        let p = LogicalPlan::stream("s")
            .aggregate(Some(col("s", "k")), vec![AggExpr::new(AggKind::Avg, col("s", "v"), "a")]);
        let mal = compile(&p).unwrap();
        let inc = rewrite(&mal).unwrap();
        // Cluster contains sum and count partials; div is at merge.
        let c = &inc.clusters[0];
        let kinds: Vec<AggKind> = c.agg_vars.iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&AggKind::Sum));
        assert!(kinds.contains(&AggKind::Count));
        assert_eq!(inc.merge_instrs.len(), 1);
        assert!(matches!(inc.mal.instrs[inc.merge_instrs[0]].op, MalOp::MapArith { .. }));
    }

    #[test]
    fn distinct_and_sort_get_compensation_kinds() {
        let p = LogicalPlan::stream("s").project(vec![(col("s", "a"), "a".into())]).distinct();
        let inc = rewrite(&compile(&p).unwrap()).unwrap();
        assert_eq!(inc.kinds[inc.frontier[0]], VarKind::DistinctRows);
    }

    #[test]
    fn orderby_limit_run_at_merge() {
        let p = LogicalPlan::stream("s")
            .project(vec![(col("s", "a"), "a".into())])
            .order_by(col("s", "a"), false)
            .limit(3);
        let inc = rewrite(&compile(&p).unwrap()).unwrap();
        // SortPerm, Fetch-through-perm and Slice all happen at merge.
        assert!(inc.merge_instrs.len() >= 3);
        // The projected rows are the frontier.
        assert!(inc.frontier.iter().any(|&v| inc.kinds[v] == VarKind::Rows));
    }

    #[test]
    fn stream_table_join_stays_per_bw() {
        let p = LogicalPlan::stream("s")
            .join(LogicalPlan::table("dim"), col("s", "k"), col("dim", "k"))
            .aggregate(None, vec![AggExpr::new(AggKind::Count, col("dim", "k"), "n")]);
        let inc = rewrite(&compile(&p).unwrap()).unwrap();
        assert!(inc.matrix_pair.is_none());
        assert!(inc.matrix_instrs.is_empty());
        assert!(!inc.static_instrs.is_empty()); // the table bind

        // Join replicated per basic window.
        let join_idx =
            inc.mal.instrs.iter().position(|i| matches!(i.op, MalOp::Join { .. })).unwrap();
        assert!(inc.perbw_instrs[0].contains(&join_idx));
    }

    #[test]
    fn verify_incremental_accepts_rewriter_output() {
        for plan in [fig3a(), fig3b(), fig3c(), fig3d(), fig3e()] {
            let inc = rewrite(&plan).unwrap();
            verify_incremental(&inc).unwrap();
        }
    }

    #[test]
    fn verify_incremental_catches_tampered_ring_discipline() {
        use datacell_plan::{PlanError, Rule};
        let assert_ring_err = |res: Result<(), DataCellError>| {
            let err = res.expect_err("tampered plan must be rejected");
            let DataCellError::Plan(PlanError::Verify(v)) = err else {
                panic!("expected a verify diagnostic, got {err}");
            };
            assert_eq!(v.rule, Rule::RingDiscipline);
        };

        // A frontier variable reclassified as merge-stage.
        let mut inc = rewrite(&fig3b()).unwrap();
        let f = inc.frontier[0];
        inc.stages[f] = Stage::Merge;
        assert_ring_err(verify_incremental(&inc));

        // A grouping structure smuggled onto the frontier.
        let mut inc = rewrite(&fig3b()).unwrap();
        let f = inc.frontier[0];
        inc.kinds[f] = VarKind::GroupsStruct;
        assert_ring_err(verify_incremental(&inc));

        // A cluster member dropped from the frontier cache.
        let mut inc = rewrite(&fig3d()).unwrap();
        let keys = inc.clusters[0].keys_var;
        inc.frontier.retain(|&v| v != keys);
        assert_ring_err(verify_incremental(&inc));

        // An instruction moved into the wrong segment.
        let mut inc = rewrite(&fig3c()).unwrap();
        let i = inc.merge_instrs.pop().unwrap();
        inc.static_instrs.push(i);
        assert_ring_err(verify_incremental(&inc));

        // Matrix instructions without a joined pair.
        let mut inc = rewrite(&fig3e()).unwrap();
        inc.matrix_pair = None;
        assert_ring_err(verify_incremental(&inc));
    }

    #[test]
    fn unfused_frontier_chain_error_carries_fusion_diagnostics() {
        // A declined chain (member dest read before the fusion site) whose
        // partials must cross the frontier: the error names the reason.
        use datacell_plan::mal::MalBuilder;
        let mut b = MalBuilder::new();
        let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
        let g = b.emit(MalOp::Group { keys: k });
        let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
        let srt = b.emit(MalOp::Sort { input: gk, desc: false });
        let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
        let plan = b.finish(vec!["k".into(), "n".into()], vec![srt, n]);
        let err = rewrite(&plan).expect_err("unfused chain cannot cross the frontier");
        let text = err.to_string();
        assert!(text.contains("unfused group/aggregate chain"), "{text}");
        assert!(text.contains("open-group-chain"), "{text}");
        assert!(text.contains("instr 3"), "{text}");
    }

    #[test]
    fn explain_mentions_stages() {
        let inc = rewrite(&fig3b()).unwrap();
        let e = inc.explain();
        assert!(e.contains("per-bw[0]"));
        assert!(e.contains("frontier"));
    }
}
