//! The DataCell engine facade.
//!
//! Ties the whole architecture of Fig. 1 together: streams enter baskets
//! via [`Engine::append`] (or receptors feeding the shared baskets
//! directly), continuous queries register as factories with the Petri-net
//! scheduler, the scheduler fires them as windows fill, and window results
//! accumulate per query until drained (the emitter side).

use crate::adaptive::AdaptiveChunker;
use crate::error::DataCellError;
use crate::factory::incremental::IncrementalFactory;
use crate::factory::reeval::ReevalFactory;
use crate::factory::{Factory, StreamInput};
use crate::metrics::SlideMetrics;
use crate::rewrite::{rewrite, IncrementalPlan};
use crate::scheduler::{workers_from_env, ConsumerId, ParallelScheduler};
use datacell_basket::{shards_from_env, Basket, ShardedBasket, Timestamp};
use datacell_kernel::par::{partitions_from_env, placement_from_env};
use datacell_kernel::{Catalog, Column, DataType, Oid, PlacementMode, Table};
use datacell_plan::{
    compile, optimize, verify_all, LogicalPlan, MalOp, MalPlan, PlanError, ResultSet,
    SchemaOverlay, WindowSpec,
};
use datacell_telemetry::{Counter, Family, Histogram, MetricKind, Snapshot};
use std::collections::HashMap;
use std::time::Duration;

/// Identifier of a registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// Which execution strategy a continuous query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Incremental plan rewriting (DataCell proper).
    Incremental,
    /// Full re-evaluation per slide (the DataCellR baseline).
    Reevaluation,
}

/// Options for query registration.
#[derive(Debug, Clone)]
pub struct RegisterOptions {
    /// Execution strategy.
    pub mode: ExecMode,
    /// Enable the m-chunk optimization with this controller
    /// (incremental single-stream count-sliding queries only).
    pub chunker: Option<AdaptiveChunker>,
}

impl Default for RegisterOptions {
    fn default() -> Self {
        RegisterOptions { mode: ExecMode::Incremental, chunker: None }
    }
}

/// Per-query telemetry series, folded from each slide's [`SlideMetrics`]
/// at the engine's emission-collection point ([`Engine::run_until_idle`]).
/// Engine-owned (not globally registered), so `query` labels never
/// collide across engines in one process; lives exactly as long as the
/// query's registration.
struct QuerySeries {
    /// The factory label (`q0`, `q1`, …) — the `query` label value.
    label: String,
    slides: Counter,
    rows: Counter,
    /// Nanosecond totals of the paper's Fig. 7 cost decomposition.
    total_ns: Counter,
    main_plan_ns: Counter,
    merge_ns: Counter,
    /// Distribution of per-slide total latency.
    latency: Histogram,
}

impl QuerySeries {
    fn new(label: String) -> QuerySeries {
        QuerySeries {
            label,
            slides: Counter::new(),
            rows: Counter::new(),
            total_ns: Counter::new(),
            main_plan_ns: Counter::new(),
            merge_ns: Counter::new(),
            latency: Histogram::new(),
        }
    }

    /// Fold one slide in. The timings come from the factory's own
    /// (always-on) [`SlideMetrics`] clock, so per-query series stay
    /// populated even under the `DATACELL_TELEMETRY` kill switch.
    fn observe(&self, m: &SlideMetrics) {
        self.slides.inc();
        self.rows.add(m.rows as u64);
        self.total_ns.add(duration_ns(m.total));
        self.main_plan_ns.add(duration_ns(m.main_plan));
        self.merge_ns.add(duration_ns(m.merge));
        self.latency.record(m.total);
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

const NS_PER_SEC: f64 = 1e9;

/// The engine: baskets + catalog + scheduler + per-query outputs.
pub struct Engine {
    baskets: HashMap<String, ShardedBasket>,
    catalog: Catalog,
    scheduler: ParallelScheduler,
    outputs: HashMap<usize, Vec<ResultSet>>,
    /// Telemetry series per registered query, keyed like `outputs`.
    series: HashMap<usize, QuerySeries>,
    clock: Timestamp,
    /// Intra-operator partition fan-out (`kernel::par`) applied to every
    /// registered factory. Orthogonal to the scheduler's worker count:
    /// workers parallelize *across* factories, partitions parallelize
    /// *inside* one factory's kernel operators.
    partitions: usize,
    /// Staging shards per basket — the third parallelism axis: workers
    /// scale across factories, partitions inside operators, shards across
    /// *receptors* appending to one stream. 1 is the single-mutex path.
    basket_shards: usize,
    /// Explicit placement-mode override (`DATACELL_PLACEMENT` or
    /// [`Engine::set_placement`]). `None` auto-resolves: `Aligned` when
    /// the basket shard count equals the partition fan-out (morsels then
    /// inherit the shard key-hash so partial merges are pure concat),
    /// `RoundRobin` otherwise.
    placement_override: Option<PlacementMode>,
    /// Run the typed static analyzer (`plan::verify`) over every compiled
    /// plan at registration, with the real stream/table schemas. Defaults
    /// to on under `debug_assertions` or `DATACELL_VERIFY=1`.
    verify: bool,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine. The scheduler worker count defaults to 1
    /// (sequential, deterministic) unless the `DATACELL_WORKERS`
    /// environment variable overrides it; [`Engine::set_workers`] always
    /// wins over both. The kernel partition fan-out likewise defaults to
    /// 1 unless `DATACELL_PARTITIONS` overrides it
    /// ([`Engine::set_partitions`] always wins), and the basket shard
    /// count to 1 unless `DATACELL_BASKET_SHARDS` overrides it
    /// ([`Engine::set_basket_shards`] always wins).
    pub fn new() -> Engine {
        Engine::with_workers(workers_from_env())
    }

    /// A fresh engine with an explicit scheduler worker count (min 1).
    /// One worker runs the sequential Petri-net scheduler unchanged;
    /// more workers fire independent factories concurrently. The
    /// partition fan-out still comes from `DATACELL_PARTITIONS` (1 when
    /// unset) — the two axes compose: factories × partitions threads can
    /// run during a drain.
    pub fn with_workers(workers: usize) -> Engine {
        Engine {
            baskets: HashMap::new(),
            catalog: Catalog::default(),
            scheduler: ParallelScheduler::new(workers),
            outputs: HashMap::new(),
            series: HashMap::new(),
            clock: 0,
            partitions: partitions_from_env(),
            basket_shards: shards_from_env(),
            placement_override: placement_from_env(),
            verify: datacell_plan::verify::enabled(),
        }
    }

    /// Is registration-time plan verification enabled?
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// Toggle registration-time plan verification
    /// ([`Engine::new`] seeds it from `debug_assertions` /
    /// `DATACELL_VERIFY`; this setter always wins).
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Scheduler worker threads currently configured.
    pub fn workers(&self) -> usize {
        self.scheduler.workers()
    }

    /// Change the scheduler worker count (min 1); takes effect on the
    /// next [`Engine::run_until_idle`]. Determinism-sensitive callers
    /// (tests, result-diffing harnesses) should pin this to 1.
    pub fn set_workers(&mut self, workers: usize) {
        self.scheduler.set_workers(workers);
    }

    /// The kernel partition fan-out currently configured.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Change the intra-operator partition fan-out (min 1): `kernel::par`
    /// splits heavy join/select nodes of every registered query — current
    /// and future — across this many scoped threads per operator call.
    /// 1 runs the sequential kernel code paths. Join *pair order* at
    /// partitions > 1 follows `kernel::par`'s canonical (partition,
    /// probe) order rather than the sequential probe order; aggregate and
    /// select results are byte-identical either way.
    pub fn set_partitions(&mut self, partitions: usize) {
        self.partitions = partitions.max(1);
        self.push_par_config();
    }

    /// Staging shards per basket currently configured.
    pub fn basket_shards(&self) -> usize {
        self.basket_shards
    }

    /// Change the basket shard count (min 1) — how many receptors can
    /// append to one stream without contending on its mutex. Applies to
    /// every registered stream (existing staged data is sealed across the
    /// switch) and to streams created later. 1 is the single-mutex path,
    /// byte-identical to the pre-sharding engine. Quiesce receptor
    /// threads before resharding live streams: the switch waits out
    /// in-flight appends, but a receptor that keeps appending mid-switch
    /// simply lands in the rebuilt shard set.
    pub fn set_basket_shards(&mut self, shards: usize) {
        self.basket_shards = shards.max(1);
        for b in self.baskets.values() {
            b.set_shards(self.basket_shards);
        }
        // Resharding can flip the auto-resolved placement mode.
        self.push_par_config();
    }

    /// The morsel placement mode in effect: the explicit override
    /// (`DATACELL_PLACEMENT` / [`Engine::set_placement`]) when present,
    /// otherwise `Aligned` iff `basket_shards == partitions` — the one
    /// configuration where staging shards and kernel morsels can share
    /// the canonical key-hash map, making grouped-aggregation partial
    /// merges pure concatenation. Both modes are byte-identical to the
    /// sequential result.
    pub fn placement(&self) -> PlacementMode {
        self.placement_override.unwrap_or({
            if self.basket_shards == self.partitions {
                PlacementMode::Aligned
            } else {
                PlacementMode::RoundRobin
            }
        })
    }

    /// Pin the placement mode explicitly, disabling auto-resolution
    /// (this setter and `DATACELL_PLACEMENT` always win over the
    /// shards == partitions heuristic). Applies to every registered
    /// factory — current and future.
    pub fn set_placement(&mut self, placement: PlacementMode) {
        self.placement_override = Some(placement);
        self.push_par_config();
    }

    /// Re-plumb the partition fan-out and resolved placement mode into
    /// every registered factory.
    fn push_par_config(&mut self) {
        let placement = self.placement();
        for id in self.scheduler.ids() {
            if let Ok(f) = self.scheduler.factory_mut(id) {
                f.set_partitions(self.partitions);
                f.set_placement(placement);
            }
        }
    }

    // -- streams and tables ------------------------------------------------

    /// Register an input stream with its schema.
    pub fn create_stream(
        &mut self,
        name: &str,
        schema: &[(&str, DataType)],
    ) -> Result<(), DataCellError> {
        if self.baskets.contains_key(name) {
            return Err(DataCellError::AlreadyExists(name.to_owned()));
        }
        self.baskets.insert(
            name.to_owned(),
            ShardedBasket::new(Basket::new(name, schema), self.basket_shards),
        );
        Ok(())
    }

    /// Register a persistent table.
    pub fn create_table(&mut self, table: Table) -> Result<(), DataCellError> {
        self.catalog.create_table(table)?;
        Ok(())
    }

    /// The persistent catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (loading data into tables).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The write handle of a stream (receptors feed through this). At
    /// `basket_shards > 1` appends stage into per-receptor shards and the
    /// scheduler seals them into the ordered view on every drain; at 1
    /// shard it is the classic single-mutex `SharedBasket` path. The
    /// merged read view is [`ShardedBasket::shared`] — never append
    /// through that view directly when shards > 1.
    pub fn basket(&self, stream: &str) -> Result<ShardedBasket, DataCellError> {
        self.baskets
            .get(stream)
            .cloned()
            .ok_or_else(|| DataCellError::UnknownStream(stream.to_owned()))
    }

    /// Append a batch of columns to a stream, stamped with the current
    /// engine clock.
    ///
    /// **Clock rule** (shared with [`Engine::append_at`]): every append
    /// stamps its tuples with one arrival timestamp and then advances the
    /// engine clock to that stamp if — and only if — the stamp is ahead;
    /// the clock never moves backwards. Here the stamp *is* the current
    /// clock, so this is `append_at(stream, batch, self.clock())`.
    pub fn append(&mut self, stream: &str, batch: &[Column]) -> Result<(), DataCellError> {
        self.append_at(stream, batch, self.clock)
    }

    /// Append with an explicit arrival timestamp.
    ///
    /// **Clock rule** (shared with [`Engine::append`]): the batch is
    /// stamped `at`, and the engine clock advances to `at` when `at` is
    /// ahead of it; a stamp at or behind the clock leaves the clock
    /// untouched (it never regresses). Note the *basket* separately
    /// requires non-decreasing stamps per stream, so back-dated appends
    /// only succeed on streams whose newest tuple is older than `at`.
    pub fn append_at(
        &mut self,
        stream: &str,
        batch: &[Column],
        at: Timestamp,
    ) -> Result<(), DataCellError> {
        let b = self.basket(stream)?;
        b.append(batch, at)?;
        if at > self.clock {
            self.clock = at;
        }
        Ok(())
    }

    /// The engine clock (logical milliseconds).
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Advance the engine clock (drives time-based windows).
    pub fn advance_clock(&mut self, to: Timestamp) {
        if to > self.clock {
            self.clock = to;
        }
    }

    // -- query registration --------------------------------------------------

    /// Register a continuous query from SQL text (window clause required).
    pub fn register_sql(&mut self, sql: &str) -> Result<QueryId, DataCellError> {
        self.register_sql_with(sql, RegisterOptions::default())
    }

    /// Register a continuous query from SQL with explicit options.
    pub fn register_sql_with(
        &mut self,
        sql: &str,
        opts: RegisterOptions,
    ) -> Result<QueryId, DataCellError> {
        let q = datacell_sql::parse(sql)?;
        let window = q.window.ok_or_else(|| {
            DataCellError::Unsupported(
                "continuous queries need a WINDOW clause (e.g. WINDOW SIZE 100 SLIDE 10)".into(),
            )
        })?;
        self.register_cq(q.plan, window, opts)
    }

    /// Register a continuous query from a logical plan.
    pub fn register_cq(
        &mut self,
        plan: LogicalPlan,
        window: WindowSpec,
        opts: RegisterOptions,
    ) -> Result<QueryId, DataCellError> {
        // The SQL front-end is schema-unaware: FROM sources arrive as
        // stream scans. Rewrite scans of catalog tables into table scans.
        let plan = self.resolve_sources(plan);
        let plan = optimize(plan);
        let mal = compile(&plan)?;
        // The registration-time verification pass: unlike the schema-less
        // checks inside compile/rewrite, this one sees the real stream and
        // table schemas, so column-type mismatches surface here — before
        // the query is wired into the scheduler.
        if self.verify {
            self.verify_plan(&mal)?;
        }
        // Validate stream references and build inputs in plan order.
        let mut inputs = Vec::new();
        for s in &mal.streams {
            let basket = self
                .baskets
                .get(s)
                .cloned()
                .ok_or_else(|| DataCellError::UnknownStream(s.clone()))?;
            inputs.push(StreamInput::new(s.clone(), basket.shared()));
        }
        if inputs.is_empty() {
            return Err(DataCellError::Unsupported(
                "continuous queries must read at least one stream".into(),
            ));
        }
        let tables = self.table_snapshot(&mal)?;
        let label = format!("q{}", self.outputs.len());
        let factory: Box<dyn Factory> = match opts.mode {
            ExecMode::Incremental => {
                let inc: IncrementalPlan = rewrite(&mal)?;
                Box::new(IncrementalFactory::new(label, inc, window, inputs, tables, opts.chunker)?)
            }
            ExecMode::Reevaluation => {
                Box::new(ReevalFactory::new(label, mal, window, inputs, tables)?)
            }
        };
        self.register_factory(factory)
    }

    /// Register a hand-built [`Factory`] — custom operators beyond what
    /// the SQL front-end can express (bench harnesses, user-defined
    /// transitions). Every input stream it names must be registered; the
    /// factory joins the Petri net like any SQL-derived query and its
    /// results are drained through [`Engine::drain_results`].
    pub fn register_factory(&mut self, mut f: Box<dyn Factory>) -> Result<QueryId, DataCellError> {
        for s in f.input_streams() {
            if !self.baskets.contains_key(&s) {
                return Err(DataCellError::UnknownStream(s));
            }
        }
        f.set_partitions(self.partitions);
        f.set_placement(self.placement());
        let label = f.label().to_owned();
        let baskets = &self.baskets;
        let id = self.scheduler.register(f, |s| baskets.get(s).cloned());
        self.outputs.insert(id, Vec::new());
        self.series.insert(id, QuerySeries::new(label));
        Ok(QueryId(id))
    }

    /// Rewrite `ScanStream` nodes naming catalog tables into `ScanTable`
    /// nodes. Registered streams shadow tables of the same name.
    fn resolve_sources(&self, plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::ScanStream { stream }
                if !self.baskets.contains_key(&stream) && self.catalog.table(&stream).is_ok() =>
            {
                LogicalPlan::ScanTable { table: stream }
            }
            LogicalPlan::Filter { input, column, pred } => {
                LogicalPlan::Filter { input: Box::new(self.resolve_sources(*input)), column, pred }
            }
            LogicalPlan::Join { left, right, left_on, right_on } => LogicalPlan::Join {
                left: Box::new(self.resolve_sources(*left)),
                right: Box::new(self.resolve_sources(*right)),
                left_on,
                right_on,
            },
            LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
                input: Box::new(self.resolve_sources(*input)),
                group_by,
                aggs,
            },
            LogicalPlan::Project { input, columns } => {
                LogicalPlan::Project { input: Box::new(self.resolve_sources(*input)), columns }
            }
            LogicalPlan::Distinct { input } => {
                LogicalPlan::Distinct { input: Box::new(self.resolve_sources(*input)) }
            }
            LogicalPlan::OrderBy { input, column, desc } => {
                LogicalPlan::OrderBy { input: Box::new(self.resolve_sources(*input)), column, desc }
            }
            LogicalPlan::Limit { input, n } => {
                LogicalPlan::Limit { input: Box::new(self.resolve_sources(*input)), n }
            }
            leaf => leaf,
        }
    }

    /// Run the typed static analyzer over a compiled plan, seeding type
    /// inference with the schemas of every stream the plan binds plus the
    /// persistent catalog.
    fn verify_plan(&self, mal: &MalPlan) -> Result<(), DataCellError> {
        let mut schema = SchemaOverlay::new(&self.catalog);
        for s in &mal.streams {
            if let Some(b) = self.baskets.get(s) {
                schema = schema.with_stream(s.clone(), b.with(|bk| bk.schema().to_vec()));
            }
        }
        match verify_all(mal, &schema).into_iter().next() {
            None => Ok(()),
            Some(e) => Err(DataCellError::Plan(PlanError::Verify(Box::new(e)))),
        }
    }

    /// Snapshot the persistent tables a plan binds (table contents are
    /// frozen at registration; re-register after bulk reloads).
    fn table_snapshot(&self, mal: &MalPlan) -> Result<HashMap<String, Table>, DataCellError> {
        let mut tables = HashMap::new();
        for ins in &mal.instrs {
            if let MalOp::BindTable { table, .. } = &ins.op {
                if !tables.contains_key(table) {
                    tables.insert(table.clone(), self.catalog.table(table)?.clone());
                }
            }
        }
        Ok(tables)
    }

    /// Drop a continuous query.
    pub fn deregister(&mut self, q: QueryId) -> Result<(), DataCellError> {
        self.scheduler.deregister(q.0)?;
        self.outputs.remove(&q.0);
        self.series.remove(&q.0);
        Ok(())
    }

    // -- execution ---------------------------------------------------------

    /// Run the scheduler until no factory is enabled; results accumulate
    /// per query. Expired basket prefixes are garbage collected after the
    /// drain, when every factory's consumption cursor is settled.
    ///
    /// With one worker (the default) this is the sequential round-robin
    /// Petri-net loop; with more ([`Engine::set_workers`] /
    /// `DATACELL_WORKERS`) independent factories fire concurrently on the
    /// scheduler's worker pool. Per-query result order is identical either
    /// way; only cross-query interleaving (invisible through
    /// [`Engine::drain_results`]) differs.
    pub fn run_until_idle(&mut self) -> Result<(), DataCellError> {
        let emissions = self.scheduler.run_until_idle(self.clock)?;
        for e in emissions {
            if let Some(s) = self.series.get(&e.factory) {
                s.observe(&e.metrics);
            }
            self.outputs.entry(e.factory).or_default().push(e.result);
        }
        self.gc();
        Ok(())
    }

    /// Expire basket prefixes every factory has consumed.
    fn gc(&mut self) {
        for (name, basket) in &self.baskets {
            if let Some(upto) = self.scheduler.min_consumed(name) {
                basket.with(|b| b.expire_upto(upto));
            }
        }
    }

    /// All registered queries with their labels (`q0`, `q1`, …), sorted by
    /// label. The network edge resolves `SUBSCRIBE <label>` through this.
    pub fn queries(&self) -> Vec<(QueryId, String)> {
        let mut qs: Vec<(QueryId, String)> =
            self.series.iter().map(|(&id, s)| (QueryId(id), s.label.clone())).collect();
        qs.sort_by(|a, b| a.1.cmp(&b.1));
        qs
    }

    // -- external consumers --------------------------------------------------

    /// Register an external consumer of `stream` — an egress-side reader
    /// (network subscriber, emitter process) that is not a factory but
    /// whose delivery cursor must bound the stream's garbage collection.
    /// The cursor starts at the basket's current base, so everything still
    /// resident is retained for delivery. Advance it with
    /// [`Engine::advance_consumer`] as rows are delivered; evict it with
    /// [`Engine::evict_consumer`] when the reader disconnects or stalls
    /// past its queue bound, or its stake pins the basket forever.
    pub fn register_consumer(&mut self, stream: &str) -> Result<ConsumerId, DataCellError> {
        let base = self.basket(stream)?.base_oid();
        Ok(self.scheduler.register_consumer(stream, base))
    }

    /// Register an external consumer starting at the stream's current
    /// *end*: only rows appended after registration are retained for it
    /// (late-subscriber semantics — no backlog replay).
    pub fn register_consumer_at_end(&mut self, stream: &str) -> Result<ConsumerId, DataCellError> {
        let end = self.basket(stream)?.end_oid();
        Ok(self.scheduler.register_consumer(stream, end))
    }

    /// Move an external consumer's delivery cursor forward (monotone).
    pub fn advance_consumer(&mut self, id: ConsumerId, upto: Oid) -> Result<(), DataCellError> {
        self.scheduler.advance_consumer(id, upto)
    }

    /// Remove an external consumer's GC stake; returns the stream it was
    /// reading. GC resumes from the surviving readers' cursors on the
    /// next [`Engine::run_until_idle`].
    pub fn evict_consumer(&mut self, id: ConsumerId) -> Result<String, DataCellError> {
        self.scheduler.evict_consumer(id)
    }

    /// An external consumer's current cursor (`None` after eviction).
    pub fn consumer_cursor(&self, id: ConsumerId) -> Option<Oid> {
        self.scheduler.consumer_cursor(id)
    }

    /// External consumers currently holding a stake on `stream`.
    pub fn consumers_of(&self, stream: &str) -> usize {
        self.scheduler.consumers_of(stream)
    }

    /// Take all window results produced by a query since the last drain.
    pub fn drain_results(&mut self, q: QueryId) -> Result<Vec<ResultSet>, DataCellError> {
        self.outputs.get_mut(&q.0).map(std::mem::take).ok_or(DataCellError::UnknownQuery(q.0))
    }

    /// Per-slide metrics of a query.
    pub fn metrics(&self, q: QueryId) -> Result<&[SlideMetrics], DataCellError> {
        Ok(self.scheduler.factory(q.0)?.metrics())
    }

    /// Resident tuple count of a stream's basket (tests/monitoring).
    pub fn basket_len(&self, stream: &str) -> Result<usize, DataCellError> {
        Ok(self.basket(stream)?.len())
    }

    /// The adaptive chunker's probe trail of a query, when it runs chunked.
    pub fn chunker_history(
        &self,
        q: QueryId,
    ) -> Result<Option<Vec<(usize, std::time::Duration)>>, DataCellError> {
        Ok(self.scheduler.factory(q.0)?.chunker_history())
    }

    // -- telemetry ---------------------------------------------------------

    /// One coherent snapshot of every telemetry signal: the process-wide
    /// registry (kernel aggregation and basket-seal internals) merged
    /// with this engine's own series — per-query slide latency and the
    /// paper's Fig. 7 main-plan/merge cost split, scheduler worker-pool
    /// utilization, and per-shard basket depth. Render it with
    /// [`datacell_telemetry::render_text`].
    ///
    /// Engine-local families are assembled from engine-owned handles
    /// (never registered globally), so `query` labels cannot collide
    /// across engines in one process. Between two quiesced drains with
    /// no appends, consecutive snapshots of the engine-local families
    /// are identical.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut snap = datacell_telemetry::global().snapshot();
        self.query_families(&mut snap);
        self.scheduler_families(&mut snap);
        self.basket_families(&mut snap);
        snap
    }

    /// Per-query series: one sample per registered query, labelled
    /// `query="<label>"`, in label order.
    fn query_families(&self, snap: &mut Snapshot) {
        let mut series: Vec<&QuerySeries> = self.series.values().collect();
        series.sort_by(|a, b| a.label.cmp(&b.label));
        let mut slides = Family::new(
            "datacell_query_slides_total",
            "Window slides produced by a continuous query.",
            MetricKind::Counter,
        );
        let mut rows = Family::new(
            "datacell_query_rows_total",
            "Result rows emitted by a continuous query.",
            MetricKind::Counter,
        );
        let mut total = Family::new(
            "datacell_query_total_seconds_total",
            "Total slide execution time of a continuous query.",
            MetricKind::Counter,
        );
        let mut main_plan = Family::new(
            "datacell_query_main_plan_seconds_total",
            "Time in the original plan's operators (Fig. 7 main-plan component).",
            MetricKind::Counter,
        );
        let mut merge = Family::new(
            "datacell_query_merge_seconds_total",
            "Time in incremental merge machinery (Fig. 7 merge component).",
            MetricKind::Counter,
        );
        let mut latency = Family::new(
            "datacell_query_slide_seconds",
            "Per-slide total latency distribution of a continuous query.",
            MetricKind::Histogram,
        );
        for s in series {
            let lbl = [("query", s.label.as_str())];
            slides.push_value(&lbl, s.slides.get() as f64);
            rows.push_value(&lbl, s.rows.get() as f64);
            total.push_value(&lbl, s.total_ns.get() as f64 / NS_PER_SEC);
            main_plan.push_value(&lbl, s.main_plan_ns.get() as f64 / NS_PER_SEC);
            merge.push_value(&lbl, s.merge_ns.get() as f64 / NS_PER_SEC);
            latency.push_histogram(&lbl, s.latency.snapshot());
        }
        // A family declared with zero samples (no queries registered) is
        // noise the strict parser rightly rejects — drop it instead.
        for fam in [slides, rows, total, main_plan, merge, latency] {
            if !fam.samples.is_empty() {
                snap.push(fam);
            }
        }
    }

    /// Scheduler worker-pool series: queue depth, wake-to-fire latency
    /// and per-worker utilization (the latter only while a pool is live —
    /// the one-worker sequential path has no workers to report).
    fn scheduler_families(&self, snap: &mut Snapshot) {
        let mut depth = Family::new(
            "datacell_scheduler_queue_depth",
            "Factories dispatched to the worker pool and not yet picked up; 0 when quiesced.",
            MetricKind::Gauge,
        );
        depth.push_value(&[], self.scheduler.queue_depth() as f64);
        snap.push(depth);
        let mut wake = Family::new(
            "datacell_scheduler_wake_to_fire_seconds",
            "Time a dispatched factory waited in the work queue before a worker fired it.",
            MetricKind::Histogram,
        );
        wake.push_histogram(&[], self.scheduler.wake_to_fire());
        snap.push(wake);
        let stats = self.scheduler.worker_stats();
        if stats.is_empty() {
            return;
        }
        let mut fires = Family::new(
            "datacell_scheduler_worker_fires_total",
            "Factory fire calls executed, per pool worker.",
            MetricKind::Counter,
        );
        let mut busy = Family::new(
            "datacell_scheduler_worker_busy_seconds_total",
            "Time spent firing factories, per pool worker.",
            MetricKind::Counter,
        );
        let mut idle = Family::new(
            "datacell_scheduler_worker_idle_seconds_total",
            "Time spent waiting between jobs, per pool worker (recorded when the wait ends).",
            MetricKind::Counter,
        );
        for (i, w) in stats.iter().enumerate() {
            let worker = i.to_string();
            let lbl = [("worker", worker.as_str())];
            fires.push_value(&lbl, w.fires() as f64);
            busy.push_value(&lbl, w.busy_ns() as f64 / NS_PER_SEC);
            idle.push_value(&lbl, w.idle_ns() as f64 / NS_PER_SEC);
        }
        for fam in [fires, busy, idle] {
            snap.push(fam);
        }
    }

    /// Basket ingest-edge series: per-shard staged depth, cumulative rows
    /// and a per-stream shard-imbalance ratio (max over mean of
    /// cumulative rows; 1.0 is perfectly balanced, 0 when nothing has
    /// been staged since the last reshard).
    fn basket_families(&self, snap: &mut Snapshot) {
        let mut names: Vec<&String> = self.baskets.keys().collect();
        names.sort();
        let mut staged_rows = Family::new(
            "datacell_basket_staged_rows",
            "Rows currently staged (appended, not yet sealed) per basket shard.",
            MetricKind::Gauge,
        );
        let mut staged_segs = Family::new(
            "datacell_basket_staged_segments",
            "Staged append segments awaiting seal, per basket shard.",
            MetricKind::Gauge,
        );
        let mut shard_rows = Family::new(
            "datacell_basket_shard_rows_total",
            "Rows ever staged into a basket shard (resets on reshard).",
            MetricKind::Counter,
        );
        let mut imbalance = Family::new(
            "datacell_basket_shard_imbalance_ratio",
            "Max-over-mean of cumulative rows across a basket's shards; 1.0 is balanced.",
            MetricKind::Gauge,
        );
        for name in names {
            let stats = self.baskets[name].shard_stats();
            let sum: u64 = stats.iter().map(|s| s.total_rows).sum();
            let max = stats.iter().map(|s| s.total_rows).max().unwrap_or(0);
            let ratio = if sum == 0 { 0.0 } else { max as f64 * stats.len() as f64 / sum as f64 };
            imbalance.push_value(&[("stream", name)], ratio);
            for (i, s) in stats.iter().enumerate() {
                let shard = i.to_string();
                let lbl = [("stream", name.as_str()), ("shard", shard.as_str())];
                staged_rows.push_value(&lbl, s.staged_rows as f64);
                staged_segs.push_value(&lbl, s.staged_segments as f64);
                shard_rows.push_value(&lbl, s.total_rows as f64);
            }
        }
        for fam in [staged_rows, staged_segs, shard_rows, imbalance] {
            if !fam.samples.is_empty() {
                snap.push(fam);
            }
        }
    }

    /// EXPLAIN: show all three plan levels for a continuous query — the
    /// optimized logical plan, the normal MAL program the one-shot executor
    /// would run (DataCellR), and the incremental classification the
    /// rewriter produces (DataCell). Does not register anything.
    pub fn explain_sql(&self, sql: &str) -> Result<String, DataCellError> {
        let q = datacell_sql::parse(sql)?;
        let plan = optimize(self.resolve_sources(q.plan));
        let mal = compile(&plan)?;
        let mut out = String::new();
        out.push_str("== logical plan ==\n");
        out.push_str(&plan.explain());
        out.push_str("\n== normal (re-evaluation) MAL plan ==\n");
        out.push_str(&mal.explain());
        out.push_str("\n== incremental plan ==\n");
        match rewrite(&mal) {
            Ok(inc) => out.push_str(&inc.explain()),
            Err(e) => out.push_str(&format!("(not incrementally executable: {e})\n")),
        }
        if let Some(w) = q.window {
            out.push_str(&format!("\nwindow: {w:?}\n"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::Value;

    fn engine_with_stream() -> Engine {
        let mut e = Engine::new();
        e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        e
    }

    #[test]
    fn end_to_end_sql_incremental() {
        let mut e = engine_with_stream();
        let q =
            e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 2").unwrap();
        e.append(
            "s",
            &[Column::Int(vec![5, 20, 30, 7, 40, 8]), Column::Int(vec![1, 2, 3, 4, 5, 6])],
        )
        .unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rows(), vec![vec![Value::Int(5)]]);
        assert_eq!(out[1].rows(), vec![vec![Value::Int(8)]]);
        // Drained: second drain is empty.
        assert!(e.drain_results(q).unwrap().is_empty());
        // Metrics recorded.
        assert_eq!(e.metrics(q).unwrap().len(), 2);
    }

    #[test]
    fn incremental_and_reeval_agree() {
        let mut e = engine_with_stream();
        let qi = e
            .register_sql(
                "SELECT x1, sum(x2) FROM s WHERE x1 > 2 GROUP BY x1 WINDOW SIZE 6 SLIDE 2",
            )
            .unwrap();
        let qr = e
            .register_sql_with(
                "SELECT x1, sum(x2) FROM s WHERE x1 > 2 GROUP BY x1 WINDOW SIZE 6 SLIDE 2",
                RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
            )
            .unwrap();
        let xs: Vec<i64> = (0..20).map(|i| i % 5).collect();
        let ys: Vec<i64> = (0..20).collect();
        e.append("s", &[Column::Int(xs), Column::Int(ys)]).unwrap();
        e.run_until_idle().unwrap();
        let ri = e.drain_results(qi).unwrap();
        let rr = e.drain_results(qr).unwrap();
        assert_eq!(ri.len(), rr.len());
        assert!(!ri.is_empty());
        for (a, b) in ri.iter().zip(&rr) {
            assert_eq!(a.sorted_rows(), b.sorted_rows());
        }
    }

    #[test]
    fn multiple_queries_share_basket_gc_respects_slowest() {
        let mut e = engine_with_stream();
        let _q1 =
            e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 2").unwrap();
        let _q2 =
            e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 8 SLIDE 4").unwrap();
        e.append("s", &[Column::Int(vec![1; 6]), Column::Int(vec![1; 6])]).unwrap();
        e.run_until_idle().unwrap();
        // q1 consumed 6 (3 windows of 2); q2 consumed 4 (one step of 4,
        // waiting for more). GC must keep the 2 tuples q2 hasn't seen.
        assert_eq!(e.basket_len("s").unwrap(), 2);
    }

    #[test]
    fn deregistered_query_frees_gc() {
        let mut e = engine_with_stream();
        let q1 =
            e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 100 SLIDE 100").unwrap();
        e.append("s", &[Column::Int(vec![1; 5]), Column::Int(vec![1; 5])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("s").unwrap(), 5); // q1 waits for 100
        e.deregister(q1).unwrap();
        e.run_until_idle().unwrap();
        // No factory reads s anymore; GC has no bound -> basket retained.
        // (Streams without readers keep data until a reader registers.)
        assert_eq!(e.basket_len("s").unwrap(), 5);
        assert!(e.drain_results(q1).is_err());
    }

    #[test]
    fn external_consumer_retains_and_releases_basket_rows() {
        // An emitter basket: no factory reads it, only external consumers.
        let mut e = Engine::new();
        e.create_stream("out", &[("v", DataType::Int)]).unwrap();
        // No stakes at all: GC has no bound, rows are retained.
        e.append("out", &[Column::Int(vec![1, 2])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("out").unwrap(), 2);
        let slow = e.register_consumer("out").unwrap(); // stake from base: backlog retained
        let fast = e.register_consumer("out").unwrap();
        assert_eq!(e.consumers_of("out"), 2);
        e.append("out", &[Column::Int(vec![3, 4])]).unwrap();
        e.advance_consumer(fast, 4).unwrap();
        e.run_until_idle().unwrap();
        // The slow stake (cursor 0) pins everything.
        assert_eq!(e.basket_len("out").unwrap(), 4);
        // Eviction releases the pin; the fast reader's cursor now rules.
        e.evict_consumer(slow).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("out").unwrap(), 0);
        assert_eq!(e.consumer_cursor(slow), None);
        // A late subscriber starts at the end: old rows are not re-pinned.
        let late = e.register_consumer_at_end("out").unwrap();
        assert_eq!(e.consumer_cursor(late), Some(4));
        assert!(e.register_consumer("ghost").is_err());
    }

    #[test]
    fn queries_lists_labels_in_order() {
        let mut e = engine_with_stream();
        let q0 = e.register_sql("SELECT sum(x2) FROM s WINDOW SIZE 2 SLIDE 2").unwrap();
        let q1 = e.register_sql("SELECT count(x1) FROM s WINDOW SIZE 4 SLIDE 4").unwrap();
        let qs = e.queries();
        assert_eq!(qs, vec![(q0, "q0".to_owned()), (q1, "q1".to_owned())]);
    }

    #[test]
    fn clock_rule_is_uniform_across_append_variants() {
        // Regression: `append` and `append_at` follow one rule — stamp,
        // then advance the clock to the stamp iff it is ahead.
        let mut e = Engine::new();
        e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        e.create_stream("t", &[("y", DataType::Int)]).unwrap();
        let one = [Column::Int(vec![1]), Column::Int(vec![1])];
        assert_eq!(e.clock(), 0);
        e.append("s", &one).unwrap(); // stamp 0 == clock: no movement
        assert_eq!(e.clock(), 0);
        e.append_at("s", &one, 50).unwrap(); // stamp ahead: clock follows
        assert_eq!(e.clock(), 50);
        e.append("s", &one).unwrap(); // stamps the advanced clock (50)
        assert_eq!(e.clock(), 50);
        assert_eq!(e.basket("s").unwrap().with(|b| b.latest_ts()), Some(50));
        // Back-dated stamp on another stream: accepted, clock untouched.
        e.append_at("t", &[Column::Int(vec![2])], 10).unwrap();
        assert_eq!(e.clock(), 50);
        assert_eq!(e.basket("t").unwrap().with(|b| b.latest_ts()), Some(10));
        // Equal stamp: also no movement.
        e.append_at("s", &one, 50).unwrap();
        assert_eq!(e.clock(), 50);
    }

    #[test]
    fn worker_count_api_and_parallel_results_match_sequential() {
        let run = |workers: usize| {
            let mut e = Engine::with_workers(workers);
            assert_eq!(e.workers(), workers.max(1));
            e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
            let qs: Vec<QueryId> = (1..=4)
                .map(|k| {
                    e.register_sql(&format!(
                        "SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE {} SLIDE {}",
                        4 * k,
                        2 * k
                    ))
                    .unwrap()
                })
                .collect();
            e.append("s", &[Column::Int(vec![1; 64]), Column::Int(vec![1; 64])]).unwrap();
            e.run_until_idle().unwrap();
            qs.into_iter()
                .map(|q| {
                    e.drain_results(q)
                        .unwrap()
                        .iter()
                        .map(datacell_plan::ResultSet::rows)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let seq = run(1);
        for workers in [2, 4] {
            assert_eq!(run(workers), seq, "workers={workers} diverged from sequential");
        }
    }

    #[test]
    fn partitioned_queries_match_sequential_results() {
        // The same query set at partitions ∈ {1, 4}, both execution modes,
        // including a two-stream join: window results must agree with the
        // sequential kernel (rows sorted — join pair order is canonical
        // but differs from sequential probe order at partitions > 1).
        let run = |partitions: usize| {
            let mut e = Engine::new();
            e.set_partitions(partitions);
            assert_eq!(e.partitions(), partitions.max(1));
            e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
            e.create_stream("t", &[("k", DataType::Int)]).unwrap();
            let q1 = e
                .register_sql(
                    "SELECT x1, sum(x2) FROM s WHERE x1 > 2 GROUP BY x1 WINDOW SIZE 16 SLIDE 8",
                )
                .unwrap();
            let q2 = e
                .register_sql_with(
                    "SELECT count(s.x1) FROM s, t WHERE s.x1 = t.k WINDOW SIZE 16 SLIDE 8",
                    RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
                )
                .unwrap();
            let xs: Vec<i64> = (0..64).map(|i| i % 7).collect();
            let ys: Vec<i64> = (0..64).collect();
            e.append("s", &[Column::Int(xs), Column::Int(ys)]).unwrap();
            e.append("t", &[Column::Int((0..64).map(|i| i % 5).collect())]).unwrap();
            e.run_until_idle().unwrap();
            [q1, q2].map(|q| {
                e.drain_results(q)
                    .unwrap()
                    .iter()
                    .map(datacell_plan::ResultSet::sorted_rows)
                    .collect::<Vec<_>>()
            })
        };
        let seq = run(1);
        assert!(!seq[0].is_empty() && !seq[1].is_empty());
        assert_eq!(run(4), seq, "partitions=4 diverged from sequential");
    }

    #[test]
    fn set_partitions_reaches_registered_factories() {
        let mut e = engine_with_stream();
        let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 8 SLIDE 8").unwrap();
        // Raise the fan-out *after* registration: the already-registered
        // factory must pick it up and still produce correct results.
        e.set_partitions(4);
        e.append("s", &[Column::Int(vec![1; 16]), Column::Int(vec![2; 16])]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rows(), vec![vec![Value::Int(16)]]);
        e.set_partitions(0); // clamps to sequential
        assert_eq!(e.partitions(), 1);
    }

    #[test]
    fn basket_shards_api_and_sharded_results_match_single_shard() {
        // The same workload at shards ∈ {1, 4}: single-threaded feeding
        // is deterministic, so window results must be byte-identical.
        let run = |shards: usize| {
            let mut e = Engine::new();
            e.set_basket_shards(shards);
            assert_eq!(e.basket_shards(), shards.max(1));
            e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
            assert_eq!(e.basket("s").unwrap().shards(), shards.max(1));
            let q =
                e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 4 SLIDE 2").unwrap();
            for i in 0..4 {
                e.append_at(
                    "s",
                    &[Column::Int(vec![1, 2, 3]), Column::Int(vec![i, i + 1, i + 2])],
                    i as u64,
                )
                .unwrap();
            }
            e.run_until_idle().unwrap();
            e.drain_results(q)
                .unwrap()
                .iter()
                .map(datacell_plan::ResultSet::rows)
                .collect::<Vec<_>>()
        };
        let seq = run(1);
        assert!(!seq.is_empty());
        assert_eq!(run(4), seq, "shards=4 diverged from the single-mutex path");
    }

    #[test]
    fn placement_auto_resolves_and_override_wins() {
        if placement_from_env().is_some() {
            // A DATACELL_PLACEMENT override pins every engine in this
            // process; auto-resolution is unobservable here.
            return;
        }
        let mut e = Engine::new();
        // Defaults: shards == partitions (1 == 1) -> auto-aligned (inert
        // at 1 partition: the sequential path runs regardless).
        assert_eq!(e.placement(), PlacementMode::Aligned);
        e.set_partitions(4);
        assert_eq!(e.placement(), PlacementMode::RoundRobin); // 1 shard != 4 parts
        e.set_basket_shards(4);
        assert_eq!(e.placement(), PlacementMode::Aligned); // 4 == 4
        e.set_placement(PlacementMode::RoundRobin);
        assert_eq!(e.placement(), PlacementMode::RoundRobin);
        e.set_basket_shards(8);
        e.set_basket_shards(4); // shards == partitions again...
        assert_eq!(e.placement(), PlacementMode::RoundRobin); // ...but the override is pinned
    }

    #[test]
    fn aligned_placement_reaches_factories_and_matches_roundrobin() {
        use datacell_kernel::par::stats;
        let sql = "SELECT x1, sum(x2) FROM s GROUP BY x1 WINDOW SIZE 16 SLIDE 16";
        let mut per_mode = Vec::new();
        for mode in [PlacementMode::RoundRobin, PlacementMode::Aligned] {
            let mut e = engine_with_stream();
            e.set_partitions(4);
            e.set_placement(mode);
            let q = e.register_sql(sql).unwrap();
            let xs: Vec<i64> = (0..32).map(|i| i % 7).collect();
            let ys: Vec<i64> = (0..32).collect();
            let concat_before = stats::merge_concat_fast_path();
            e.append("s", &[Column::Int(xs), Column::Int(ys)]).unwrap();
            e.run_until_idle().unwrap();
            if mode == PlacementMode::Aligned {
                // The concat fast path firing proves the mode reached the
                // factory's kernel execution, not just the engine field.
                assert!(
                    stats::merge_concat_fast_path() > concat_before,
                    "aligned engine must take the merge-free concat path"
                );
            }
            per_mode.push(e.drain_results(q).unwrap());
        }
        let (rr, al) = (&per_mode[0], &per_mode[1]);
        assert_eq!(rr.len(), al.len());
        assert!(!rr.is_empty());
        for (a, b) in rr.iter().zip(al) {
            assert_eq!(a.rows(), b.rows(), "placement modes diverged");
        }
    }

    #[test]
    fn set_basket_shards_reshards_registered_streams() {
        let mut e = engine_with_stream();
        let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 2").unwrap();
        e.append("s", &[Column::Int(vec![1; 2]), Column::Int(vec![1; 2])]).unwrap();
        // Reshard mid-stream: existing data and new appends both flow.
        e.set_basket_shards(4);
        assert_eq!(e.basket("s").unwrap().shards(), 4);
        e.append("s", &[Column::Int(vec![1; 2]), Column::Int(vec![1; 2])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.drain_results(q).unwrap().len(), 2);
        e.set_basket_shards(0); // clamps to the single-mutex path
        assert_eq!(e.basket_shards(), 1);
        assert_eq!(e.basket("s").unwrap().shards(), 1);
    }

    #[test]
    fn sharded_receptor_appends_visible_after_drain() {
        // Staged (unsealed) receptor appends must be published by the
        // engine's drain — including the GC path never touching them.
        let mut e = engine_with_stream();
        e.set_basket_shards(4);
        let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 2").unwrap();
        let b = e.basket("s").unwrap();
        b.append_shard(0, &[Column::Int(vec![1]), Column::Int(vec![10])], 0).unwrap();
        b.append_shard(2, &[Column::Int(vec![1]), Column::Int(vec![20])], 0).unwrap();
        assert_eq!(e.basket_len("s").unwrap(), 0); // staged, not sealed
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows(), vec![vec![Value::Int(30)]]);
        // Fully consumed -> GC expired the sealed prefix, staging empty.
        assert_eq!(e.basket_len("s").unwrap(), 0);
        assert_eq!(b.staged_len(), 0);
    }

    #[test]
    fn set_workers_switches_between_drains() {
        let mut e = engine_with_stream();
        let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 2").unwrap();
        e.append("s", &[Column::Int(vec![1; 4]), Column::Int(vec![1; 4])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.drain_results(q).unwrap().len(), 2);
        e.set_workers(3);
        assert_eq!(e.workers(), 3);
        e.append("s", &[Column::Int(vec![1; 4]), Column::Int(vec![1; 4])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.drain_results(q).unwrap().len(), 2);
        e.set_workers(0); // clamps to sequential
        assert_eq!(e.workers(), 1);
    }

    #[test]
    fn register_factory_validates_streams() {
        use crate::factory::FireOutcome;
        use crate::metrics::SlideMetrics;

        struct CountFactory {
            input: StreamInput,
            metrics: Vec<SlideMetrics>,
        }
        impl crate::factory::Factory for CountFactory {
            fn label(&self) -> &str {
                "count"
            }
            fn ready(&self, _clock: Timestamp) -> bool {
                self.input.available() >= 2
            }
            fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
                let w = self.input.take(2)?;
                let result =
                    ResultSet::new(vec!["n".into()], vec![Column::Int(vec![w.len() as i64])])
                        .unwrap();
                Ok(FireOutcome::Produced { result, metrics: SlideMetrics::default() })
            }
            fn consumed_upto(&self, stream: &str) -> Option<datacell_kernel::Oid> {
                (stream == self.input.name).then_some(self.input.consumed)
            }
            fn input_streams(&self) -> Vec<String> {
                vec![self.input.name.clone()]
            }
            fn metrics(&self) -> &[SlideMetrics] {
                &self.metrics
            }
        }

        let mut e = engine_with_stream();
        let basket = e.basket("s").unwrap();
        let q = e
            .register_factory(Box::new(CountFactory {
                input: StreamInput::new("s", basket.shared()),
                metrics: vec![],
            }))
            .unwrap();
        e.append("s", &[Column::Int(vec![1; 5]), Column::Int(vec![1; 5])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.drain_results(q).unwrap().len(), 2);
        // GC honours the custom factory's cursor (consumed 4 of 5).
        assert_eq!(e.basket_len("s").unwrap(), 1);

        struct GhostFactory;
        impl crate::factory::Factory for GhostFactory {
            fn label(&self) -> &str {
                "ghost"
            }
            fn ready(&self, _clock: Timestamp) -> bool {
                false
            }
            fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
                Ok(FireOutcome::NotReady)
            }
            fn consumed_upto(&self, _stream: &str) -> Option<datacell_kernel::Oid> {
                None
            }
            fn input_streams(&self) -> Vec<String> {
                vec!["ghost".into()]
            }
            fn metrics(&self) -> &[SlideMetrics] {
                &[]
            }
        }
        assert!(matches!(
            e.register_factory(Box::new(GhostFactory)),
            Err(DataCellError::UnknownStream(_))
        ));
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut e = Engine::new();
        let err = e.register_sql("SELECT sum(x) FROM ghost WINDOW SIZE 2 SLIDE 1");
        assert!(matches!(err, Err(DataCellError::UnknownStream(_))));
    }

    #[test]
    fn missing_window_clause_rejected() {
        let mut e = engine_with_stream();
        let err = e.register_sql("SELECT sum(x2) FROM s");
        assert!(matches!(err, Err(DataCellError::Unsupported(_))));
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut e = engine_with_stream();
        assert!(matches!(
            e.create_stream("s", &[("x", DataType::Int)]),
            Err(DataCellError::AlreadyExists(_))
        ));
    }

    #[test]
    fn stream_table_join_query() {
        let mut e = engine_with_stream();
        let mut dim = Table::new("dim", &[("k", DataType::Int), ("w", DataType::Int)]);
        dim.append(&[Column::Int(vec![1, 2]), Column::Int(vec![100, 200])]).unwrap();
        e.create_table(dim).unwrap();
        let q = e
            .register_sql("SELECT sum(dim.w) FROM s, dim WHERE s.x1 = dim.k WINDOW SIZE 2 SLIDE 2")
            .unwrap();
        e.append("s", &[Column::Int(vec![1, 3, 2, 2]), Column::Int(vec![0; 4])]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rows(), vec![vec![Value::Int(100)]]); // k=1 matched
        assert_eq!(out[1].rows(), vec![vec![Value::Int(400)]]); // k=2 twice
    }

    #[test]
    fn time_based_query_driven_by_clock() {
        let mut e = engine_with_stream();
        let q = e.register_sql("SELECT count(x1) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
        e.append_at("s", &[Column::Int(vec![1, 2]), Column::Int(vec![0, 0])], 5).unwrap();
        e.append_at("s", &[Column::Int(vec![3]), Column::Int(vec![0])], 15).unwrap();
        e.run_until_idle().unwrap();
        assert!(e.drain_results(q).unwrap().is_empty()); // clock at 15 < 20
        e.advance_clock(20);
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows(), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn registration_verifies_against_real_schemas() {
        use datacell_plan::Rule;
        let mut e = Engine::new();
        e.set_verify(true);
        e.create_stream("logs", &[("level", DataType::Str), ("ms", DataType::Int)]).unwrap();

        // sum over a string column: rejected at registration with a typed
        // diagnostic naming the op and rule.
        let err = e
            .register_sql("SELECT sum(level) FROM logs WINDOW SIZE 2 SLIDE 2")
            .expect_err("sum over a str column must not register");
        let DataCellError::Plan(datacell_plan::PlanError::Verify(v)) = err else {
            panic!("expected a verify diagnostic, got: {err}");
        };
        assert_eq!(v.rule, Rule::TypeMismatch);
        assert!(v.instr.is_some());
        assert!(v.to_string().contains("sum over a str column"), "{v}");

        // An int predicate against the string column: also rejected.
        let err = e
            .register_sql("SELECT count(ms) FROM logs WHERE level > 3 WINDOW SIZE 2 SLIDE 2")
            .expect_err("int predicate over a str column must not register");
        assert!(matches!(err, DataCellError::Plan(datacell_plan::PlanError::Verify(_))), "{err}");

        // The same queries with verification off register fine (and the
        // well-typed variant registers either way).
        e.set_verify(false);
        assert!(!e.verify());
        e.register_sql("SELECT sum(level) FROM logs WINDOW SIZE 2 SLIDE 2").unwrap();
        e.set_verify(true);
        e.register_sql("SELECT sum(ms) FROM logs WHERE level = 'err' WINDOW SIZE 2 SLIDE 2")
            .unwrap();
    }

    #[test]
    fn explain_sql_shows_all_levels() {
        let e = engine_with_stream();
        let text = e
            .explain_sql(
                "SELECT x1, sum(x2) FROM s WHERE x1 > 10 GROUP BY x1 WINDOW SIZE 100 SLIDE 10",
            )
            .unwrap();
        assert!(text.contains("== logical plan =="));
        assert!(text.contains("basket.bind(s, x1)"));
        assert!(text.contains("== incremental plan =="));
        assert!(text.contains("per-bw[0]"));
        assert!(text.contains("CountSliding"));
        // Unregisterable-but-parsable queries still explain the failure.
        let mut e2 = Engine::new();
        for s in ["a", "b"] {
            e2.create_stream(s, &[("k", DataType::Int)]).unwrap();
        }
        let t2 = e2
            .explain_sql("SELECT count(a.k) FROM a, b WHERE a.k = b.k WINDOW SIZE 4 SLIDE 2")
            .unwrap();
        assert!(t2.contains("per-cell"));
    }

    #[test]
    fn chunked_registration_via_options() {
        let mut e = engine_with_stream();
        let q = e
            .register_sql_with(
                "SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 8 SLIDE 4",
                RegisterOptions {
                    mode: ExecMode::Incremental,
                    chunker: Some(AdaptiveChunker::fixed(2)),
                },
            )
            .unwrap();
        e.append("s", &[Column::Int(vec![1; 16]), Column::Int(vec![2; 16])]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 3); // windows ending at 8, 12, 16
        assert_eq!(out[0].rows(), vec![vec![Value::Int(16)]]);
    }
}
