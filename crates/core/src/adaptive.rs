//! Self-adapting chunk-count controller (the paper's *Optimized
//! Incremental Plans*, §3 and Fig. 8).
//!
//! Instead of waiting for a full basic window of `|w|` tuples, the factory
//! can process the accumulating basic window in `m` chunks of `|v| = |w|/m`
//! tuples, so that when the last tuple arrives only one chunk of work
//! remains. Larger `m` shrinks the post-arrival processing but grows the
//! chunk-merging overhead, and "analytical models with reasonable accuracy
//! \[are\] hardly feasible" — so the controller probes: start at `m = 1`,
//! double `m` every few slides while the measured response time improves,
//! and when it degrades, settle on the best `m` seen.

use std::time::Duration;

/// Probing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still increasing `m`.
    Probing,
    /// Settled on the best `m`.
    Settled,
}

/// The adaptive `m` controller.
#[derive(Debug, Clone)]
pub struct AdaptiveChunker {
    m: usize,
    max_m: usize,
    probe_every: usize,
    samples: Vec<Duration>,
    /// Best (m, mean response) observed so far.
    best: Option<(usize, Duration)>,
    phase: Phase,
    history: Vec<(usize, Duration)>,
}

impl AdaptiveChunker {
    /// A controller probing `m = 1, 2, 4, ...` up to `max_m`, re-deciding
    /// every `probe_every` observed slides (the paper uses 5).
    pub fn new(max_m: usize, probe_every: usize) -> AdaptiveChunker {
        AdaptiveChunker {
            m: 1,
            max_m: max_m.max(1),
            probe_every: probe_every.max(1),
            samples: Vec::new(),
            best: None,
            phase: Phase::Probing,
            history: Vec::new(),
        }
    }

    /// Fix `m` permanently (no adaptation) — used by harnesses that sweep
    /// `m` explicitly.
    pub fn fixed(m: usize) -> AdaptiveChunker {
        AdaptiveChunker {
            m: m.max(1),
            max_m: m.max(1),
            probe_every: usize::MAX,
            samples: Vec::new(),
            best: None,
            phase: Phase::Settled,
            history: Vec::new(),
        }
    }

    /// Current chunk count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Has the controller stopped probing?
    pub fn settled(&self) -> bool {
        self.phase == Phase::Settled
    }

    /// The `(m, mean response time)` trail of completed probe phases.
    pub fn history(&self) -> &[(usize, Duration)] {
        &self.history
    }

    /// Record the response time of one completed slide. Returns the `m` to
    /// use for the *next* basic window (possibly unchanged).
    pub fn observe(&mut self, response: Duration) -> usize {
        if self.phase == Phase::Settled {
            return self.m;
        }
        self.samples.push(response);
        if self.samples.len() < self.probe_every {
            return self.m;
        }
        // Probe phase for this m complete: decide.
        let mean = mean(&self.samples);
        self.history.push((self.m, mean));
        self.samples.clear();
        match self.best {
            None => {
                self.best = Some((self.m, mean));
                self.advance();
            }
            Some((_, best_mean)) if mean < best_mean => {
                self.best = Some((self.m, mean));
                self.advance();
            }
            Some((best_m, _)) => {
                // Response time degraded: revert to the best m and settle
                // (paper: "we stop increasing m and reset it to the value
                // that resulted in the minimal response time").
                self.m = best_m;
                self.phase = Phase::Settled;
            }
        }
        self.m
    }

    fn advance(&mut self) {
        if self.m >= self.max_m {
            // Reached the ceiling without degradation: stay at best.
            self.phase = Phase::Settled;
        } else {
            self.m *= 2;
        }
    }
}

fn mean(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.iter().sum::<Duration>() / samples.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn doubles_while_improving_then_reverts() {
        let mut c = AdaptiveChunker::new(1024, 2);
        // m=1: 100ms -> advance to 2
        assert_eq!(c.observe(ms(100)), 1);
        assert_eq!(c.observe(ms(100)), 2);
        // m=2: 60ms -> 4
        c.observe(ms(60));
        assert_eq!(c.observe(ms(60)), 4);
        // m=4: 40ms -> 8
        c.observe(ms(40));
        assert_eq!(c.observe(ms(40)), 8);
        // m=8: 70ms (worse) -> revert to 4, settle
        c.observe(ms(70));
        assert_eq!(c.observe(ms(70)), 4);
        assert!(c.settled());
        // Further observations are ignored.
        assert_eq!(c.observe(ms(1)), 4);
        // History recorded each probe phase.
        let ms_hist: Vec<usize> = c.history().iter().map(|(m, _)| *m).collect();
        assert_eq!(ms_hist, vec![1, 2, 4, 8]);
    }

    #[test]
    fn stops_at_max_m() {
        let mut c = AdaptiveChunker::new(4, 1);
        assert_eq!(c.observe(ms(100)), 2); // 1 -> 2
        assert_eq!(c.observe(ms(90)), 4); // 2 -> 4
        assert_eq!(c.observe(ms(80)), 4); // at ceiling: settle
        assert!(c.settled());
        assert_eq!(c.m(), 4);
    }

    #[test]
    fn fixed_never_adapts() {
        let mut c = AdaptiveChunker::fixed(16);
        assert_eq!(c.m(), 16);
        assert!(c.settled());
        assert_eq!(c.observe(ms(1)), 16);
        assert_eq!(c.observe(ms(1000)), 16);
    }

    #[test]
    fn equal_means_settle() {
        let mut c = AdaptiveChunker::new(1024, 1);
        assert_eq!(c.observe(ms(50)), 2);
        // Equal (not better) -> revert to 1 and settle.
        assert_eq!(c.observe(ms(50)), 1);
        assert!(c.settled());
    }

    #[test]
    fn probe_every_window() {
        let mut c = AdaptiveChunker::new(8, 3);
        assert_eq!(c.observe(ms(10)), 1);
        assert_eq!(c.observe(ms(10)), 1);
        assert_eq!(c.observe(ms(10)), 2); // third sample completes the phase
    }
}
