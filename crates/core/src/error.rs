//! Engine-level errors.

use datacell_basket::BasketError;
use datacell_kernel::KernelError;
use datacell_plan::PlanError;
use datacell_sql::SqlError;
use std::fmt;

/// Errors raised by the DataCell engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DataCellError {
    /// A stream used by a query is not registered.
    UnknownStream(String),
    /// A stream/table with this name already exists.
    AlreadyExists(String),
    /// The query shape cannot be processed incrementally (and the caller
    /// asked for incremental mode).
    Unsupported(String),
    /// A query id that does not exist (or was deregistered).
    UnknownQuery(usize),
    /// Error from the plan layer.
    Plan(PlanError),
    /// Error from the basket layer.
    Basket(BasketError),
    /// Error from the kernel.
    Kernel(KernelError),
    /// Error from the SQL front-end.
    Sql(String),
}

impl fmt::Display for DataCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataCellError::UnknownStream(s) => write!(f, "unknown stream: {s}"),
            DataCellError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            DataCellError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DataCellError::UnknownQuery(q) => write!(f, "unknown query id: {q}"),
            DataCellError::Plan(e) => write!(f, "plan: {e}"),
            DataCellError::Basket(e) => write!(f, "basket: {e}"),
            DataCellError::Kernel(e) => write!(f, "kernel: {e}"),
            DataCellError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DataCellError {}

impl From<PlanError> for DataCellError {
    fn from(e: PlanError) -> Self {
        DataCellError::Plan(e)
    }
}

impl From<BasketError> for DataCellError {
    fn from(e: BasketError) -> Self {
        DataCellError::Basket(e)
    }
}

impl From<KernelError> for DataCellError {
    fn from(e: KernelError) -> Self {
        DataCellError::Kernel(e)
    }
}

impl From<SqlError> for DataCellError {
    fn from(e: SqlError) -> Self {
        DataCellError::Sql(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert_eq!(DataCellError::UnknownStream("s".into()).to_string(), "unknown stream: s");
        assert_eq!(DataCellError::UnknownQuery(3).to_string(), "unknown query id: 3");
        let e: DataCellError = PlanError::UnknownColumn("x".into()).into();
        assert!(matches!(e, DataCellError::Plan(_)));
        let e: DataCellError = BasketError::UnknownColumn("x".into()).into();
        assert!(matches!(e, DataCellError::Basket(_)));
        let e: DataCellError = KernelError::NotFound("x".into()).into();
        assert!(matches!(e, DataCellError::Kernel(_)));
    }
}
