//! The re-evaluation factory — "DataCellR".
//!
//! "Complete re-evaluation is the straightforward approach when it comes to
//! continuous queries. [...] every time a window is complete ... we compute
//! the result over all tuples in the window." (paper §3, Algorithm 1)
//!
//! The factory buffers the window's basic windows, re-assembles the full
//! window at every slide and executes the *unmodified* MAL plan over it.
//! This is the baseline DataCell is compared against throughout §4.

use super::{Factory, FireOutcome, SnapshotCtx, StreamInput};
use crate::error::DataCellError;
use crate::metrics::SlideMetrics;
use datacell_basket::{BasicWindow, Timestamp};
use datacell_kernel::{Oid, ParConfig, PlacementMode, Table};
use datacell_plan::{execute, MalPlan, WindowSpec};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Re-evaluation factory state.
pub struct ReevalFactory {
    label: String,
    plan: MalPlan,
    window: WindowSpec,
    inputs: Vec<StreamInput>,
    tables: HashMap<String, Table>,
    /// Buffered basic windows per stream (the resident window content).
    buffered: Vec<VecDeque<BasicWindow>>,
    /// Intra-operator partition fan-out handed to every plan execution.
    par: ParConfig,
    advances: usize,
    emitted: usize,
    metrics: Vec<SlideMetrics>,
}

impl ReevalFactory {
    /// Build a re-evaluation factory. `inputs` must be aligned with
    /// `plan.streams`. `tables` is a snapshot of the persistent tables the
    /// plan binds.
    pub fn new(
        label: impl Into<String>,
        plan: MalPlan,
        window: WindowSpec,
        inputs: Vec<StreamInput>,
        tables: HashMap<String, Table>,
    ) -> Result<ReevalFactory, DataCellError> {
        window.validate().map_err(DataCellError::Plan)?;
        if inputs.len() != plan.streams.len() {
            return Err(DataCellError::Unsupported(format!(
                "{} inputs supplied for {} plan streams",
                inputs.len(),
                plan.streams.len()
            )));
        }
        let nstreams = inputs.len();
        Ok(ReevalFactory {
            label: label.into(),
            plan,
            window,
            inputs,
            tables,
            buffered: vec![VecDeque::new(); nstreams],
            par: ParConfig::sequential(),
            advances: 0,
            emitted: 0,
            metrics: Vec::new(),
        })
    }

    /// Basic windows per full window (`None` = landmark, unbounded).
    fn n(&self) -> Option<usize> {
        self.window.basic_windows()
    }

    fn step_count(&self) -> Option<usize> {
        match self.window {
            WindowSpec::CountSliding { step, .. } => Some(step),
            WindowSpec::CountLandmark { step } => Some(step),
            _ => None,
        }
    }

    fn step_ms(&self) -> Option<u64> {
        match self.window {
            WindowSpec::TimeSliding { step_ms, .. } => Some(step_ms),
            WindowSpec::TimeLandmark { step_ms } => Some(step_ms),
            _ => None,
        }
    }

    /// Evaluate the plan over the currently buffered full window.
    fn evaluate(&mut self) -> Result<FireOutcome, DataCellError> {
        let t0 = Instant::now();
        let mut ctx = SnapshotCtx::new();
        ctx.set_par(self.par);
        for t in self.tables.values() {
            ctx.set_table(t.clone());
        }
        for (k, stream) in self.plan.streams.iter().enumerate() {
            let parts: Vec<&BasicWindow> = self.buffered[k].iter().collect();
            let w = BasicWindow::concat(&parts)?;
            ctx.set_window(stream.clone(), w);
        }
        let result = execute(&self.plan, &ctx)?;
        let total = t0.elapsed();
        let metrics = SlideMetrics {
            window_index: self.emitted,
            total,
            main_plan: total,
            merge: std::time::Duration::ZERO,
            rows: result.len(),
        };
        self.emitted += 1;
        self.metrics.push(metrics);
        Ok(FireOutcome::Produced { result, metrics })
    }
}

impl Factory for ReevalFactory {
    fn label(&self) -> &str {
        &self.label
    }

    fn ready(&self, clock: Timestamp) -> bool {
        match (self.step_count(), self.step_ms()) {
            (Some(step), _) => self.inputs.iter().all(|i| i.available() >= step),
            (_, Some(step_ms)) => clock >= (self.advances as u64 + 1) * step_ms,
            _ => false,
        }
    }

    fn fire(&mut self, clock: Timestamp) -> Result<FireOutcome, DataCellError> {
        if !self.ready(clock) {
            return Ok(FireOutcome::NotReady);
        }
        // Ingest one step per stream.
        if let Some(step) = self.step_count() {
            for k in 0..self.inputs.len() {
                let w = self.inputs[k].take(step)?;
                self.buffered[k].push_back(w);
            }
        } else if let Some(step_ms) = self.step_ms() {
            let deadline = (self.advances as u64 + 1) * step_ms;
            for k in 0..self.inputs.len() {
                let w = self.inputs[k].take_until_ts(deadline)?;
                self.buffered[k].push_back(w);
            }
        }
        self.advances += 1;

        match self.n() {
            // Sliding: wait for a full window, evaluate, expire the oldest
            // basic window.
            Some(n) => {
                if self.buffered[0].len() < n {
                    return Ok(FireOutcome::Progressed);
                }
                let out = self.evaluate()?;
                for buf in &mut self.buffered {
                    buf.pop_front();
                }
                Ok(out)
            }
            // Landmark: evaluate over everything so far, expire nothing.
            None => self.evaluate(),
        }
    }

    fn consumed_upto(&self, stream: &str) -> Option<Oid> {
        self.inputs.iter().find(|i| i.name == stream).map(|i| i.consumed)
    }

    fn input_streams(&self) -> Vec<String> {
        self.inputs.iter().map(|i| i.name.clone()).collect()
    }

    fn metrics(&self) -> &[SlideMetrics] {
        &self.metrics
    }

    fn set_partitions(&mut self, partitions: usize) {
        self.par = ParConfig::new(partitions).with_placement(self.par.placement());
    }

    fn set_placement(&mut self, placement: PlacementMode) {
        self.par = self.par.with_placement(placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_basket::{Basket, SharedBasket};
    use datacell_kernel::algebra::{AggKind, Predicate};
    use datacell_kernel::{Column, DataType, Value};
    use datacell_plan::{compile, AggExpr, ColumnRef, LogicalPlan};

    fn make(plan: LogicalPlan, window: WindowSpec) -> (ReevalFactory, SharedBasket) {
        let basket =
            SharedBasket::new(Basket::new("s", &[("x1", DataType::Int), ("x2", DataType::Int)]));
        let mal = compile(&plan).unwrap();
        let inputs = vec![StreamInput::new("s", basket.clone())];
        let f = ReevalFactory::new("q", mal, window, inputs, HashMap::new()).unwrap();
        (f, basket)
    }

    fn sum_plan() -> LogicalPlan {
        LogicalPlan::stream("s")
            .filter(ColumnRef::new("s", "x1"), Predicate::gt(10))
            .aggregate(None, vec![AggExpr::new(AggKind::Sum, ColumnRef::new("s", "x2"), "sum")])
    }

    #[test]
    fn sliding_window_reevaluation() {
        let (mut f, basket) = make(sum_plan(), WindowSpec::CountSliding { size: 4, step: 2 });
        // x1: 5,20 | 30,7 | 40,8 ; x2: 1..6
        basket
            .append(
                &[Column::Int(vec![5, 20, 30, 7, 40, 8]), Column::Int(vec![1, 2, 3, 4, 5, 6])],
                0,
            )
            .unwrap();
        // advance 1: preface
        assert!(matches!(f.fire(0).unwrap(), FireOutcome::Progressed));
        // advance 2: first full window [5,20,30,7] -> sum x2 of x1>10 = 2+3 = 5
        match f.fire(0).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(5)]]);
            }
            other => panic!("expected result, got {other:?}"),
        }
        // advance 3: window [30,7,40,8] -> 3 + 5 = 8
        match f.fire(0).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(8)]]);
            }
            other => panic!("expected result, got {other:?}"),
        }
        // exhausted
        assert!(matches!(f.fire(0).unwrap(), FireOutcome::NotReady));
        assert_eq!(f.metrics().len(), 2);
        assert_eq!(f.consumed_upto("s"), Some(6));
        assert_eq!(f.consumed_upto("zz"), None);
    }

    #[test]
    fn landmark_reevaluation_grows() {
        let (mut f, basket) = make(sum_plan(), WindowSpec::CountLandmark { step: 2 });
        basket
            .append(&[Column::Int(vec![20, 5, 30, 7]), Column::Int(vec![1, 2, 3, 4])], 0)
            .unwrap();
        match f.fire(0).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(1)]]);
            }
            other => panic!("{other:?}"),
        }
        match f.fire(0).unwrap() {
            FireOutcome::Produced { result, .. } => {
                // cumulative: x1 in {20, 30} -> x2 1 + 3
                assert_eq!(result.rows(), vec![vec![Value::Int(4)]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn time_window_reevaluation() {
        let (mut f, basket) =
            make(sum_plan(), WindowSpec::TimeSliding { size_ms: 20, step_ms: 10 });
        basket.append(&[Column::Int(vec![20]), Column::Int(vec![1])], 5).unwrap();
        basket.append(&[Column::Int(vec![30]), Column::Int(vec![2])], 15).unwrap();
        // Not ready until the clock passes the first boundary.
        assert!(!f.ready(9));
        assert!(matches!(f.fire(10).unwrap(), FireOutcome::Progressed));
        match f.fire(20).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(3)]]);
            }
            other => panic!("{other:?}"),
        }
        // Next boundary with no new data: window is [10,30) -> only ts 15.
        match f.fire(30).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(2)]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn input_arity_checked() {
        let plan = compile(
            &LogicalPlan::stream("s").project(vec![(ColumnRef::new("s", "x1"), "a".into())]),
        )
        .unwrap();
        let err = ReevalFactory::new(
            "q",
            plan,
            WindowSpec::CountSliding { size: 2, step: 1 },
            vec![],
            HashMap::new(),
        );
        assert!(err.is_err());
    }
}
