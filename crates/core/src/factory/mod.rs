//! Factories: continuous query plans as resumable state machines.
//!
//! "Continuous query plans are represented by factories, i.e., a kind of
//! co-routine [...] Each factory encloses a (partial) query plan and
//! produces a partial result at each call. [...] The factory remains active
//! as long as the continuous query remains in the system." (paper §2)
//!
//! Rust has no native co-routines; a factory is a state machine whose
//! `fire` method is one resumption: it consumes the next batch of input
//! from its baskets, advances its internal state (rings of intermediates
//! for the incremental factory, buffered windows for re-evaluation), and
//! possibly emits a window result.

pub mod incremental;
pub mod reeval;

use crate::error::DataCellError;
use crate::metrics::SlideMetrics;
use datacell_basket::{BasicWindow, SharedBasket, Timestamp};
use datacell_kernel::{Oid, ParConfig, PlacementMode, Table};
use datacell_plan::exec::ExecCtx;
use datacell_plan::ResultSet;
use std::collections::HashMap;

/// What one `fire` call produced.
#[derive(Debug)]
pub enum FireOutcome {
    /// A complete window result.
    Produced {
        /// The window's rows.
        result: ResultSet,
        /// Timings for this slide.
        metrics: SlideMetrics,
    },
    /// Input was consumed (preface basic window or chunk) but the window
    /// is not complete yet.
    Progressed,
    /// The firing condition does not hold (insufficient input).
    NotReady,
}

/// A standing continuous query plan.
///
/// `Send` is load-bearing: the parallel Petri-net scheduler moves a
/// factory (as its owned box) onto a worker thread for each dispatch, so
/// every piece of factory state must be transferable across threads. A
/// factory is only ever *owned* by one thread at a time — implementations
/// need no internal locking beyond what [`SharedBasket`] already provides
/// for the baskets they read.
pub trait Factory: Send {
    /// Human-readable name (for scheduler introspection).
    fn label(&self) -> &str;
    /// Petri-net firing condition: is there enough input (or has enough
    /// time passed) for one more step?
    fn ready(&self, clock: Timestamp) -> bool;
    /// Execute one step.
    fn fire(&mut self, clock: Timestamp) -> Result<FireOutcome, DataCellError>;
    /// How far this factory has consumed a stream (for basket expiry).
    /// `None` when the stream is not an input of this factory.
    fn consumed_upto(&self, stream: &str) -> Option<Oid>;
    /// The input streams.
    fn input_streams(&self) -> Vec<String>;
    /// Per-slide metrics recorded so far.
    fn metrics(&self) -> &[SlideMetrics];
    /// The adaptive chunker's `(m, mean response)` probe trail, when the
    /// factory runs with chunked processing (None otherwise).
    fn chunker_history(&self) -> Option<Vec<(usize, std::time::Duration)>> {
        None
    }
    /// Set the intra-operator partition fan-out (`kernel::par`): plan
    /// executions after this call split heavy join/select nodes across
    /// this many scoped threads. The engine plumbs
    /// `Engine::set_partitions` / `DATACELL_PARTITIONS` through here; the
    /// default is a no-op so custom factories that never execute MAL
    /// plans are unaffected.
    fn set_partitions(&mut self, _partitions: usize) {}
    /// Set the morsel placement mode (`kernel::par`): `Aligned` carves
    /// grouped-aggregation morsels by the canonical key-hash so partial
    /// merges are pure concatenation; `RoundRobin` is the contiguous-chunk
    /// split. The engine resolves the mode from `DATACELL_PLACEMENT` (or
    /// auto-aligns when basket shards == partitions) and plumbs it through
    /// here; the default is a no-op, like [`Factory::set_partitions`].
    fn set_placement(&mut self, _placement: PlacementMode) {}
}

/// One input stream endpoint: the shared basket plus the factory's private
/// consumption cursor. Several factories can read the same basket at
/// different positions; the engine expires tuples below the minimum cursor.
///
/// The handle is the *sealed, oid-ordered* view of the stream. When the
/// engine runs sharded ingestion (`DATACELL_BASKET_SHARDS` > 1), receptor
/// appends stage in per-receptor shards first and the scheduler seals
/// them into this view before every readiness scan — factories never
/// observe a partially-merged stream, so cursor arithmetic over
/// `base_oid`/`end_oid` is unaffected by the shard count.
#[derive(Debug, Clone)]
pub struct StreamInput {
    /// Stream name.
    pub name: String,
    /// The shared basket.
    pub basket: SharedBasket,
    /// Next unconsumed oid.
    pub consumed: Oid,
}

impl StreamInput {
    /// Wrap a basket starting at its first *resident* tuple (`base_oid`):
    /// a factory registered mid-stream sees the not-yet-expired backlog
    /// but never already-expired prefixes; on a fresh basket that is 0.
    pub fn new(name: impl Into<String>, basket: SharedBasket) -> StreamInput {
        let consumed = basket.with(|b| b.base_oid());
        StreamInput { name: name.into(), basket, consumed }
    }

    /// Tuples available beyond the cursor.
    pub fn available(&self) -> usize {
        self.basket.with(|b| b.available_from(self.consumed))
    }

    /// Read and consume exactly `count` tuples.
    pub fn take(&mut self, count: usize) -> Result<BasicWindow, DataCellError> {
        let w = self.basket.with(|b| b.read_range(self.consumed, count))?;
        self.consumed += count as u64;
        Ok(w)
    }

    /// Read and consume every tuple with arrival timestamp `< until`.
    pub fn take_until_ts(&mut self, until: Timestamp) -> Result<BasicWindow, DataCellError> {
        let w = self.basket.with(|b| b.read_until_ts(self.consumed, until))?;
        self.consumed = w.end_oid();
        Ok(w)
    }
}

/// Execution context exposing owned windows and a table snapshot — used by
/// the re-evaluation factory (whole windows) and the incremental factory
/// (one basic window at a time, plus statics at registration).
#[derive(Debug, Default)]
pub struct SnapshotCtx {
    windows: HashMap<String, BasicWindow>,
    tables: HashMap<String, Table>,
    par: ParConfig,
}

impl SnapshotCtx {
    /// Empty context.
    pub fn new() -> SnapshotCtx {
        SnapshotCtx::default()
    }

    /// Insert a stream window.
    pub fn set_window(&mut self, stream: impl Into<String>, w: BasicWindow) {
        self.windows.insert(stream.into(), w);
    }

    /// Insert a table snapshot.
    pub fn set_table(&mut self, t: Table) {
        self.tables.insert(t.name().to_owned(), t);
    }

    /// Set the intra-operator parallelism config plan execution sees.
    pub fn set_par(&mut self, par: ParConfig) {
        self.par = par;
    }
}

impl ExecCtx for SnapshotCtx {
    fn stream_window(&self, stream: &str) -> Option<&BasicWindow> {
        self.windows.get(stream)
    }

    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    fn par_config(&self) -> ParConfig {
        self.par
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_basket::Basket;
    use datacell_kernel::{Column, DataType};

    fn shared() -> SharedBasket {
        SharedBasket::new(Basket::new("s", &[("x", DataType::Int)]))
    }

    #[test]
    fn stream_input_take_advances_cursor() {
        let b = shared();
        b.append(&[Column::Int(vec![1, 2, 3])], 0).unwrap();
        let mut si = StreamInput::new("s", b.clone());
        assert_eq!(si.available(), 3);
        let w = si.take(2).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(si.available(), 1);
        assert_eq!(si.consumed, 2);
        assert!(si.take(2).is_err()); // only 1 left
    }

    #[test]
    fn stream_input_take_until_ts() {
        let b = shared();
        b.append(&[Column::Int(vec![1])], 10).unwrap();
        b.append(&[Column::Int(vec![2])], 20).unwrap();
        let mut si = StreamInput::new("s", b);
        let w = si.take_until_ts(15).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(si.consumed, 1);
        let w = si.take_until_ts(15).unwrap(); // nothing new before 15
        assert!(w.is_empty());
    }

    #[test]
    fn stream_input_starts_at_base_oid() {
        let b = shared();
        b.append(&[Column::Int(vec![1, 2])], 0).unwrap();
        b.with(|bk| bk.expire_upto(1));
        let si = StreamInput::new("s", b);
        assert_eq!(si.consumed, 1);
    }

    #[test]
    fn snapshot_ctx_lookup() {
        let mut ctx = SnapshotCtx::new();
        let w = BasicWindow::new(0, vec![Column::Int(vec![1])], vec![0], vec!["x".into()]);
        ctx.set_window("s", w);
        let t = Table::new("dim", &[("k", DataType::Int)]);
        ctx.set_table(t);
        assert!(ctx.stream_window("s").is_some());
        assert!(ctx.stream_window("zz").is_none());
        assert!(ctx.table("dim").is_some());
        assert!(ctx.table("zz").is_none());
    }
}
