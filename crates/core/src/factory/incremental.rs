//! The incremental factory — the DataCell runtime of Algorithm 2.
//!
//! The factory executes an [`IncrementalPlan`] against arriving data:
//!
//! * each `fire` ingests one basic window (or chunk) per input stream and
//!   runs the **per-basic-window segment** of the plan over just that data;
//! * the resulting intermediates are cached in **rings** (one slot per
//!   active basic window); two-stream joins keep an n×n **matrix** of
//!   per-pair intermediates and compute only the new row/column per slide
//!   (Fig. 3e);
//! * once the window is complete, the **merge segment** runs: frontier
//!   rings are merged (`concat` + compensating actions) and the remaining
//!   merge-stage instructions produce the window result;
//! * the **transition** (Algorithm 2 lines 20–21) is the ring rotation:
//!   expired slots pop off the front, new slots push onto the back;
//! * with chunking enabled, the newest basic window is itself processed
//!   incrementally in `m` chunks whose partials fold into one ring slot —
//!   the optimization of §3 (*Optimized Incremental Plans*) driven by the
//!   [`AdaptiveChunker`].

use super::{Factory, FireOutcome, SnapshotCtx, StreamInput};
use crate::adaptive::AdaptiveChunker;
use crate::error::DataCellError;
use crate::merge::{merge_cluster, merge_var};
use crate::metrics::SlideMetrics;
use crate::rewrite::{IncrementalPlan, Stage};
use datacell_basket::{BasicWindow, Timestamp};
use datacell_kernel::{Oid, ParConfig, PlacementMode, Table};
use datacell_plan::exec::{eval_op, ExecCtx};
use datacell_plan::{MalValue, PlanError, ResultSet, VarId, WindowSpec};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Context exposing exactly one stream's basic window (per-bw evaluation).
struct OneStreamCtx<'a> {
    name: &'a str,
    window: &'a BasicWindow,
    par: ParConfig,
}

impl<'a> ExecCtx for OneStreamCtx<'a> {
    fn stream_window(&self, stream: &str) -> Option<&BasicWindow> {
        (stream == self.name).then_some(self.window)
    }

    fn table(&self, _name: &str) -> Option<&Table> {
        None
    }

    fn par_config(&self) -> ParConfig {
        self.par
    }
}

/// Context with no streams (merge/matrix instructions never bind streams).
struct NoStreamCtx {
    par: ParConfig,
}

impl ExecCtx for NoStreamCtx {
    fn stream_window(&self, _stream: &str) -> Option<&BasicWindow> {
        None
    }

    fn table(&self, _name: &str) -> Option<&Table> {
        None
    }

    fn par_config(&self) -> ParConfig {
        self.par
    }
}

/// The incremental factory.
pub struct IncrementalFactory {
    label: String,
    /// The classified plan.
    plan: IncrementalPlan,
    window: WindowSpec,
    inputs: Vec<StreamInput>,
    /// Static variable values, computed at construction.
    statics: Vec<Option<MalValue>>,
    /// Per-bw intermediate rings: `rings[var][slot]`, oldest slot first.
    rings: HashMap<VarId, VecDeque<MalValue>>,
    /// Matrix intermediates: `matrix[var][row][col]` (row = left bw slot).
    matrix: HashMap<VarId, VecDeque<VecDeque<MalValue>>>,
    /// Landmark cumulative frontier values (replaces rings).
    cum: HashMap<VarId, MalValue>,
    /// Ring variables (cached per slot), precomputed.
    ring_vars: Vec<VarId>,
    /// Matrix ring variables.
    matrix_vars: Vec<VarId>,
    /// Variables that belong to a group cluster (merged via merge_cluster).
    cluster_members: Vec<VarId>,
    /// Sliding windows: number of basic windows per window.
    n: Option<usize>,
    advances: usize,
    emitted: usize,
    /// Chunking state (single-stream count-sliding only).
    chunker: Option<AdaptiveChunker>,
    chunk_rings: HashMap<VarId, Vec<MalValue>>,
    chunks_done: usize,
    /// Chunk-size for the current basic window (frozen while mid-window).
    current_m: usize,
    /// Work done before the first result (initial-window preface) — folded
    /// into the first slide's metric, matching the paper's Fig. 4 where
    /// window 1 covers processing the whole initial |W|. After the first
    /// result, chunked pre-processing is *excluded* from response times
    /// (hiding it behind arrivals is the point of the m-optimization).
    preface_time: Duration,
    /// Intra-operator partition fan-out handed to every plan execution.
    par: ParConfig,
    /// True when some cluster is `placement_aligned`: the per-bw segment
    /// consumes rows a keyed receptor scatter-ordered by the canonical
    /// key-hash, so per-bw executions may vouch for their input's scatter
    /// order and let aligned kernels elide the re-scatter. Matrix and
    /// merge segments never get the mark — their rows follow join-pair or
    /// concat order, not the grouping key's placement.
    aligned_clusters: bool,
    metrics: Vec<SlideMetrics>,
}

impl IncrementalFactory {
    /// Build an incremental factory.
    ///
    /// `inputs` must be aligned with `plan.mal.streams`; `tables` is the
    /// persistent-table snapshot for static binds; `chunker` enables the
    /// m-chunk optimization (single-stream count-sliding windows only).
    pub fn new(
        label: impl Into<String>,
        plan: IncrementalPlan,
        window: WindowSpec,
        inputs: Vec<StreamInput>,
        tables: HashMap<String, Table>,
        chunker: Option<AdaptiveChunker>,
    ) -> Result<IncrementalFactory, DataCellError> {
        window.validate().map_err(DataCellError::Plan)?;
        if inputs.len() != plan.mal.streams.len() {
            return Err(DataCellError::Unsupported(format!(
                "{} inputs supplied for {} plan streams",
                inputs.len(),
                plan.mal.streams.len()
            )));
        }
        for (input, stream) in inputs.iter().zip(&plan.mal.streams) {
            if &input.name != stream {
                return Err(DataCellError::Unsupported(format!(
                    "input {} does not match plan stream {stream}",
                    input.name
                )));
            }
        }
        if window.is_landmark() && plan.matrix_pair.is_some() {
            return Err(DataCellError::Unsupported(
                "landmark windows over multi-stream joins are not supported incrementally; \
                 use re-evaluation mode"
                    .into(),
            ));
        }
        if chunker.is_some() {
            let ok = matches!(window, WindowSpec::CountSliding { .. })
                && inputs.len() == 1
                && plan.matrix_pair.is_none();
            if !ok {
                return Err(DataCellError::Unsupported(
                    "chunked processing requires a single-stream count-based sliding window".into(),
                ));
            }
        }

        // Evaluate the static segment once.
        let mut statics: Vec<Option<MalValue>> = vec![None; plan.mal.nvars];
        let mut ctx = SnapshotCtx::new();
        for t in tables.into_values() {
            ctx.set_table(t);
        }
        for &i in &plan.static_instrs {
            let ins = &plan.mal.instrs[i];
            let args: Vec<&MalValue> = ins
                .op
                .args()
                .iter()
                .map(|&a| {
                    statics[a]
                        .as_ref()
                        .ok_or_else(|| PlanError::Internal(format!("static X_{a} unset")))
                })
                .collect::<Result<_, _>>()
                .map_err(DataCellError::Plan)?;
            let outs = eval_op(&ins.op, &args, &ctx)?;
            for (d, v) in ins.dests.iter().zip(outs) {
                statics[*d] = Some(v);
            }
        }

        let ring_vars = plan.ring_vars();
        let matrix_vars = plan.matrix_ring_vars();
        let cluster_members: Vec<VarId> = plan
            .clusters
            .iter()
            .flat_map(|c| std::iter::once(c.keys_var).chain(c.agg_vars.iter().map(|(v, _)| *v)))
            .collect();
        let n = window.basic_windows();
        let aligned_clusters = plan.clusters.iter().any(|c| c.placement_aligned);
        Ok(IncrementalFactory {
            label: label.into(),
            plan,
            window,
            inputs,
            statics,
            rings: ring_vars.iter().map(|&v| (v, VecDeque::new())).collect(),
            matrix: matrix_vars.iter().map(|&v| (v, VecDeque::new())).collect(),
            cum: HashMap::new(),
            ring_vars,
            matrix_vars,
            cluster_members,
            n,
            advances: 0,
            emitted: 0,
            current_m: chunker.as_ref().map_or(1, super::super::adaptive::AdaptiveChunker::m),
            chunker,
            chunk_rings: HashMap::new(),
            chunks_done: 0,
            preface_time: Duration::ZERO,
            par: ParConfig::sequential(),
            aligned_clusters,
            metrics: Vec::new(),
        })
    }

    /// The incremental plan (for explain/inspection).
    pub fn plan(&self) -> &IncrementalPlan {
        &self.plan
    }

    /// The adaptive chunker, if enabled.
    pub fn chunker(&self) -> Option<&AdaptiveChunker> {
        self.chunker.as_ref()
    }

    fn step_count(&self) -> Option<usize> {
        match self.window {
            WindowSpec::CountSliding { step, .. } => Some(step),
            WindowSpec::CountLandmark { step } => Some(step),
            _ => None,
        }
    }

    fn step_ms(&self) -> Option<u64> {
        match self.window {
            WindowSpec::TimeSliding { step_ms, .. } => Some(step_ms),
            WindowSpec::TimeLandmark { step_ms } => Some(step_ms),
            _ => None,
        }
    }

    /// Tuples needed for the next fire (step, or one chunk of it).
    fn needed(&self) -> Option<usize> {
        let step = self.step_count()?;
        Some(if self.current_m > 1 {
            chunk_size(step, self.current_m, self.chunks_done)
        } else {
            step
        })
    }

    // -- evaluation helpers ------------------------------------------------

    /// Run the per-bw segment of stream `k` over one basic window; returns
    /// the ring-var values produced.
    fn eval_perbw(
        &self,
        k: usize,
        w: &BasicWindow,
    ) -> Result<HashMap<VarId, MalValue>, DataCellError> {
        let plan = &self.plan;
        // The aligned-input vouch is applied per call, never stored in
        // `self.par`, so `set_partitions`' config rebuild cannot lose it.
        let par = self.par.with_aligned_input(self.aligned_clusters);
        let ctx = OneStreamCtx { name: &plan.mal.streams[k], window: w, par };
        let mut env: Vec<Option<MalValue>> = vec![None; plan.mal.nvars];
        for &i in &plan.perbw_instrs[k] {
            let ins = &plan.mal.instrs[i];
            let arg_ids = ins.op.args();
            let args: Vec<&MalValue> = arg_ids
                .iter()
                .map(|&a| {
                    env[a]
                        .as_ref()
                        .or(self.statics[a].as_ref())
                        .ok_or_else(|| PlanError::Internal(format!("per-bw X_{a} unset")))
                })
                .collect::<Result<_, _>>()
                .map_err(DataCellError::Plan)?;
            let outs = eval_op(&ins.op, &args, &ctx)?;
            for (d, v) in ins.dests.iter().zip(outs) {
                env[*d] = Some(v);
            }
        }
        let mut out = HashMap::new();
        for &v in &self.ring_vars {
            if matches!(plan.stages[v], Stage::PerBw(kk) if kk == k) {
                let val = env[v]
                    .take()
                    .ok_or_else(|| PlanError::Internal(format!("ring X_{v} not produced")))
                    .map_err(DataCellError::Plan)?;
                out.insert(v, val);
            }
        }
        Ok(out)
    }

    /// Evaluate the matrix segment for cell (row `i`, col `j`); pushes the
    /// produced matrix ring values into `out`.
    fn eval_cell(&self, i: usize, j: usize) -> Result<HashMap<VarId, MalValue>, DataCellError> {
        let plan = &self.plan;
        let (ls, rs) = plan.matrix_pair.expect("matrix segment implies a pair");
        let mut env: Vec<Option<MalValue>> = vec![None; plan.mal.nvars];
        for &idx in &plan.matrix_instrs {
            let ins = &plan.mal.instrs[idx];
            let arg_ids = ins.op.args();
            let args: Vec<&MalValue> = arg_ids
                .iter()
                .map(|&a| -> Result<&MalValue, PlanError> {
                    if let Some(v) = env[a].as_ref() {
                        return Ok(v);
                    }
                    if let Some(v) = self.statics[a].as_ref() {
                        return Ok(v);
                    }
                    match plan.stages[a] {
                        Stage::PerBw(k) if k == ls => {
                            self.rings.get(&a).and_then(|r| r.get(i)).ok_or_else(|| {
                                PlanError::Internal(format!("ring X_{a}[{i}] missing"))
                            })
                        }
                        Stage::PerBw(k) if k == rs => {
                            self.rings.get(&a).and_then(|r| r.get(j)).ok_or_else(|| {
                                PlanError::Internal(format!("ring X_{a}[{j}] missing"))
                            })
                        }
                        _ => Err(PlanError::Internal(format!("cell arg X_{a} unresolvable"))),
                    }
                })
                .collect::<Result<_, _>>()
                .map_err(DataCellError::Plan)?;
            let outs = eval_op(&ins.op, &args, &NoStreamCtx { par: self.par })?;
            for (d, v) in ins.dests.iter().zip(outs) {
                env[*d] = Some(v);
            }
        }
        let mut out = HashMap::new();
        for &v in &self.matrix_vars {
            let val = env[v]
                .take()
                .ok_or_else(|| PlanError::Internal(format!("matrix X_{v} not produced")))
                .map_err(DataCellError::Plan)?;
            out.insert(v, val);
        }
        Ok(out)
    }

    /// Merge the frontier and run the merge segment; assemble the result.
    fn eval_merge(&mut self) -> Result<ResultSet, DataCellError> {
        let plan = &self.plan;
        let mut env: Vec<Option<MalValue>> = self.statics.clone();

        // Merged frontier values.
        if self.window.is_landmark() {
            for (&v, val) in &self.cum {
                env[v] = Some(val.clone());
            }
        } else {
            // Non-cluster frontier vars.
            for &v in &plan.frontier {
                if self.cluster_members.contains(&v) {
                    continue;
                }
                let parts = self.collect_parts(v)?;
                env[v] = Some(merge_var(plan.kinds[v], &parts)?);
            }
            // Clusters.
            for c in &plan.clusters {
                let keys_parts = self.collect_parts(c.keys_var)?;
                let agg_parts: Vec<(datacell_kernel::algebra::AggKind, Vec<MalValue>)> = c
                    .agg_vars
                    .iter()
                    .map(|&(v, kind)| Ok::<_, DataCellError>((kind, self.collect_parts(v)?)))
                    .collect::<Result<_, _>>()?;
                let (keys, aggs) = merge_cluster(&keys_parts, &agg_parts)?;
                env[c.keys_var] = Some(keys);
                for ((v, _), merged) in c.agg_vars.iter().zip(aggs) {
                    env[*v] = Some(merged);
                }
            }
        }

        // Merge-stage instructions.
        for &i in &plan.merge_instrs {
            let ins = &plan.mal.instrs[i];
            let arg_ids = ins.op.args();
            let args: Vec<&MalValue> = arg_ids
                .iter()
                .map(|&a| {
                    env[a].as_ref().ok_or_else(|| PlanError::Internal(format!("merge X_{a} unset")))
                })
                .collect::<Result<_, _>>()
                .map_err(DataCellError::Plan)?;
            let outs = eval_op(&ins.op, &args, &NoStreamCtx { par: self.par })?;
            for (d, v) in ins.dests.iter().zip(outs) {
                env[*d] = Some(v);
            }
        }

        let mut vals = Vec::with_capacity(plan.mal.result_vars.len());
        for &v in &plan.mal.result_vars {
            vals.push(
                env[v]
                    .take()
                    .ok_or_else(|| PlanError::Internal(format!("result X_{v} unset")))
                    .map_err(DataCellError::Plan)?,
            );
        }
        Ok(ResultSet::from_mal(plan.mal.result_names.clone(), vals)?)
    }

    /// All cached parts of a frontier variable (ring slots or matrix cells).
    fn collect_parts(&self, v: VarId) -> Result<Vec<MalValue>, DataCellError> {
        match self.plan.stages[v] {
            Stage::PerBw(_) => {
                Ok(self.rings.get(&v).map(|r| r.iter().cloned().collect()).unwrap_or_default())
            }
            Stage::Matrix => Ok(self
                .matrix
                .get(&v)
                .map(|m| m.iter().flat_map(|row| row.iter().cloned()).collect())
                .unwrap_or_default()),
            s => Err(DataCellError::Unsupported(format!("frontier X_{v} has stage {s:?}"))),
        }
    }

    /// Pop the oldest basic window (transition, Algorithm 2 line 20–21).
    fn expire_oldest(&mut self) {
        for ring in self.rings.values_mut() {
            ring.pop_front();
        }
        for m in self.matrix.values_mut() {
            m.pop_front(); // oldest left row
            for row in m.iter_mut() {
                row.pop_front(); // oldest right column
            }
        }
    }

    /// Push per-bw values into rings and compute new matrix cells.
    fn push_new_slots(
        &mut self,
        per_stream: Vec<HashMap<VarId, MalValue>>,
    ) -> Result<(), DataCellError> {
        for vals in per_stream {
            for (v, val) in vals {
                self.rings.get_mut(&v).expect("ring exists").push_back(val);
            }
        }
        if let Some((ls, rs)) = self.plan.matrix_pair {
            // Ring lengths after pushing: rows = left slots, cols = right.
            let rows = self.ring_len_for_stream(ls);
            let cols = self.ring_len_for_stream(rs);
            // Append an (empty) new row and extend all rows to `cols`.
            let mut new_cells: Vec<(usize, usize)> = Vec::new();
            for j in 0..cols {
                new_cells.push((rows - 1, j)); // new left row × all right
            }
            for i in 0..rows.saturating_sub(1) {
                new_cells.push((i, cols - 1)); // old left rows × new right col
            }
            for &(i, j) in &new_cells {
                let cell = self.eval_cell(i, j)?;
                for (v, val) in cell {
                    let m = self.matrix.get_mut(&v).expect("matrix ring exists");
                    while m.len() <= i {
                        m.push_back(VecDeque::new());
                    }
                    let row = &mut m[i];
                    debug_assert_eq!(row.len(), j, "cells fill left-to-right");
                    row.push_back(val);
                }
            }
        }
        Ok(())
    }

    fn ring_len_for_stream(&self, k: usize) -> usize {
        self.ring_vars
            .iter()
            .find(|&&v| matches!(self.plan.stages[v], Stage::PerBw(kk) if kk == k))
            .and_then(|v| self.rings.get(v))
            .map_or(self.advances + 1, std::collections::VecDeque::len)
    }

    /// Landmark fold: merge the new partials into the cumulative values.
    fn fold_landmark(
        &mut self,
        per_stream: Vec<HashMap<VarId, MalValue>>,
    ) -> Result<(), DataCellError> {
        let mut new_vals: HashMap<VarId, MalValue> = HashMap::new();
        for vals in per_stream {
            new_vals.extend(vals);
        }
        // Non-cluster frontier vars fold pairwise.
        let frontier = self.plan.frontier.clone();
        for &v in &frontier {
            if self.cluster_members.contains(&v) {
                continue;
            }
            let newv = new_vals
                .remove(&v)
                .ok_or_else(|| PlanError::Internal(format!("landmark X_{v} not produced")))
                .map_err(DataCellError::Plan)?;
            let folded = match self.cum.remove(&v) {
                None => newv,
                Some(cum) => merge_var(self.plan.kinds[v], &[cum, newv])?,
            };
            self.cum.insert(v, folded);
        }
        // Clusters fold as a unit.
        let clusters = self.plan.clusters.clone();
        for c in &clusters {
            let new_keys = new_vals
                .remove(&c.keys_var)
                .ok_or_else(|| PlanError::Internal("landmark cluster keys missing".into()))
                .map_err(DataCellError::Plan)?;
            let mut keys_parts = Vec::new();
            if let Some(cum) = self.cum.remove(&c.keys_var) {
                keys_parts.push(cum);
            }
            keys_parts.push(new_keys);
            let agg_parts: Vec<(datacell_kernel::algebra::AggKind, Vec<MalValue>)> = c
                .agg_vars
                .iter()
                .map(|&(v, kind)| {
                    let newa = new_vals
                        .remove(&v)
                        .ok_or_else(|| PlanError::Internal("landmark cluster agg missing".into()))
                        .map_err(DataCellError::Plan)?;
                    let mut parts = Vec::new();
                    if let Some(cum) = self.cum.remove(&v) {
                        parts.push(cum);
                    }
                    parts.push(newa);
                    Ok::<_, DataCellError>((kind, parts))
                })
                .collect::<Result<_, _>>()?;
            let (keys, aggs) = merge_cluster(&keys_parts, &agg_parts)?;
            self.cum.insert(c.keys_var, keys);
            for ((v, _), merged) in c.agg_vars.iter().zip(aggs) {
                self.cum.insert(*v, merged);
            }
        }
        Ok(())
    }

    /// Fold the accumulated chunk partials into one basic window's worth of
    /// ring values (the m-chunk merge).
    fn fold_chunks(&mut self) -> Result<Vec<HashMap<VarId, MalValue>>, DataCellError> {
        let chunk_rings = std::mem::take(&mut self.chunk_rings);
        let mut out: HashMap<VarId, MalValue> = HashMap::new();
        // Clusters fold via re-group.
        for c in &self.plan.clusters {
            if !self.ring_vars.contains(&c.keys_var) {
                continue;
            }
            let keys_parts = chunk_rings
                .get(&c.keys_var)
                .cloned()
                .ok_or_else(|| PlanError::Internal("chunk cluster keys missing".into()))
                .map_err(DataCellError::Plan)?;
            let agg_parts: Vec<(datacell_kernel::algebra::AggKind, Vec<MalValue>)> = c
                .agg_vars
                .iter()
                .map(|&(v, kind)| {
                    let parts = chunk_rings
                        .get(&v)
                        .cloned()
                        .ok_or_else(|| PlanError::Internal("chunk cluster agg missing".into()))
                        .map_err(DataCellError::Plan)?;
                    Ok::<_, DataCellError>((kind, parts))
                })
                .collect::<Result<_, _>>()?;
            let (keys, aggs) = merge_cluster(&keys_parts, &agg_parts)?;
            out.insert(c.keys_var, keys);
            for ((v, _), merged) in c.agg_vars.iter().zip(aggs) {
                out.insert(*v, merged);
            }
        }
        // Everything else folds by kind.
        for (&v, parts) in &chunk_rings {
            if out.contains_key(&v) {
                continue;
            }
            out.insert(v, merge_var(self.plan.kinds[v], parts)?);
        }
        self.chunks_done = 0;
        Ok(vec![out])
    }

    /// One count-based fire: ingest, evaluate, slide, merge.
    fn fire_count(&mut self) -> Result<FireOutcome, DataCellError> {
        let needed = self.needed().expect("count window");
        let t0 = Instant::now();
        // Ingest + per-bw (or per-chunk) evaluation.
        let mut per_stream = Vec::with_capacity(self.inputs.len());
        for k in 0..self.inputs.len() {
            let w = self.inputs[k].take(needed)?;
            per_stream.push(self.eval_perbw(k, &w)?);
        }

        // Chunked path: accumulate until the basic window completes.
        if self.current_m > 1 {
            let vals = per_stream.pop().expect("single stream with chunking");
            for (v, val) in vals {
                self.chunk_rings.entry(v).or_default().push(val);
            }
            self.chunks_done += 1;
            if self.chunks_done < self.current_m {
                if self.emitted == 0 {
                    self.preface_time += t0.elapsed();
                }
                return Ok(FireOutcome::Progressed);
            }
            let fold_start = Instant::now();
            per_stream = self.fold_chunks()?;
            // fold counts as merge work below via merge timer adjustment
            let _ = fold_start;
        }

        // Landmark: fold into cumulatives and emit every step.
        if self.window.is_landmark() {
            let main_plan = t0.elapsed();
            let t1 = Instant::now();
            self.fold_landmark(per_stream)?;
            let result = self.eval_merge()?;
            let merge = t1.elapsed();
            self.advances += 1;
            return Ok(self.produce(result, main_plan, merge));
        }

        // Sliding: transition, push, maybe merge.
        let n = self.n.expect("sliding window");
        if self.advances >= n {
            self.expire_oldest();
        }
        self.push_new_slots(per_stream)?;
        self.advances += 1;
        let main_plan = t0.elapsed();
        if self.advances < n {
            self.preface_time += main_plan;
            return Ok(FireOutcome::Progressed);
        }
        let t1 = Instant::now();
        let result = self.eval_merge()?;
        let merge = t1.elapsed();
        Ok(self.produce(result, main_plan, merge))
    }

    /// One time-based fire: the basic window is an arrival-time slice
    /// (possibly empty — "Empty basic windows are recognized and simply
    /// skipped" in the sense that they flow through as empty BATs).
    fn fire_time(&mut self, clock: Timestamp) -> Result<FireOutcome, DataCellError> {
        let step_ms = self.step_ms().expect("time window");
        let deadline = (self.advances as u64 + 1) * step_ms;
        if clock < deadline {
            return Ok(FireOutcome::NotReady);
        }
        let t0 = Instant::now();
        let mut per_stream = Vec::with_capacity(self.inputs.len());
        for k in 0..self.inputs.len() {
            let w = self.inputs[k].take_until_ts(deadline)?;
            per_stream.push(self.eval_perbw(k, &w)?);
        }

        if self.window.is_landmark() {
            let main_plan = t0.elapsed();
            let t1 = Instant::now();
            self.fold_landmark(per_stream)?;
            let result = self.eval_merge()?;
            let merge = t1.elapsed();
            self.advances += 1;
            return Ok(self.produce(result, main_plan, merge));
        }

        let n = self.n.expect("sliding window");
        if self.advances >= n {
            self.expire_oldest();
        }
        self.push_new_slots(per_stream)?;
        self.advances += 1;
        let main_plan = t0.elapsed();
        if self.advances < n {
            self.preface_time += main_plan;
            return Ok(FireOutcome::Progressed);
        }
        let t1 = Instant::now();
        let result = self.eval_merge()?;
        let merge = t1.elapsed();
        Ok(self.produce(result, main_plan, merge))
    }

    fn produce(&mut self, result: ResultSet, main_plan: Duration, merge: Duration) -> FireOutcome {
        // The first window's response covers the whole initial |W| preface.
        let main_plan = main_plan + std::mem::take(&mut self.preface_time);
        let metrics = SlideMetrics {
            window_index: self.emitted,
            total: main_plan + merge,
            main_plan,
            merge,
            rows: result.len(),
        };
        self.emitted += 1;
        self.metrics.push(metrics);
        // Adapt m for the next basic window.
        if let Some(chunker) = &mut self.chunker {
            let next_m = chunker.observe(metrics.total);
            let WindowSpec::CountSliding { step, .. } = self.window else {
                unreachable!("chunking validated at construction")
            };
            self.current_m = next_m.min(step).max(1);
        }
        FireOutcome::Produced { result, metrics }
    }
}

/// Size of chunk `idx` out of `m` chunks over `step` tuples: all chunks are
/// `step / m` except the last, which absorbs the remainder.
fn chunk_size(step: usize, m: usize, idx: usize) -> usize {
    let base = step / m;
    if idx + 1 == m {
        step - base * (m - 1)
    } else {
        base.max(1)
    }
}

impl Factory for IncrementalFactory {
    fn label(&self) -> &str {
        &self.label
    }

    fn ready(&self, clock: Timestamp) -> bool {
        match self.needed() {
            Some(needed) => self.inputs.iter().all(|i| i.available() >= needed),
            None => {
                let step_ms = self.step_ms().expect("time window");
                clock >= (self.advances as u64 + 1) * step_ms
            }
        }
    }

    fn fire(&mut self, clock: Timestamp) -> Result<FireOutcome, DataCellError> {
        if !self.ready(clock) {
            return Ok(FireOutcome::NotReady);
        }
        if self.needed().is_some() {
            self.fire_count()
        } else {
            self.fire_time(clock)
        }
    }

    fn consumed_upto(&self, stream: &str) -> Option<Oid> {
        self.inputs.iter().find(|i| i.name == stream).map(|i| i.consumed)
    }

    fn input_streams(&self) -> Vec<String> {
        self.inputs.iter().map(|i| i.name.clone()).collect()
    }

    fn metrics(&self) -> &[SlideMetrics] {
        &self.metrics
    }

    fn chunker_history(&self) -> Option<Vec<(usize, Duration)>> {
        self.chunker.as_ref().map(|c| c.history().to_vec())
    }

    fn set_partitions(&mut self, partitions: usize) {
        self.par = ParConfig::new(partitions).with_placement(self.par.placement());
    }

    fn set_placement(&mut self, placement: PlacementMode) {
        self.par = self.par.with_placement(placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::rewrite;
    use datacell_basket::{Basket, SharedBasket};
    use datacell_kernel::algebra::{AggKind, Predicate};
    use datacell_kernel::{Column, DataType, Value};
    use datacell_plan::{compile, AggExpr, ColumnRef, LogicalPlan};

    fn col(s: &str, a: &str) -> ColumnRef {
        ColumnRef::new(s, a)
    }

    fn basket2() -> SharedBasket {
        SharedBasket::new(Basket::new("s", &[("x1", DataType::Int), ("x2", DataType::Int)]))
    }

    fn factory(
        plan: LogicalPlan,
        window: WindowSpec,
        basket: &SharedBasket,
        chunker: Option<AdaptiveChunker>,
    ) -> IncrementalFactory {
        let mal = compile(&plan).unwrap();
        let inc = rewrite(&mal).unwrap();
        let inputs = vec![StreamInput::new("s", basket.clone())];
        IncrementalFactory::new("q", inc, window, inputs, HashMap::new(), chunker).unwrap()
    }

    fn fire_all(f: &mut IncrementalFactory) -> Vec<ResultSet> {
        let mut out = Vec::new();
        loop {
            match f.fire(0).unwrap() {
                FireOutcome::Produced { result, .. } => out.push(result),
                FireOutcome::Progressed => {}
                FireOutcome::NotReady => break,
            }
        }
        out
    }

    #[test]
    fn incremental_select_sum_matches_reeval_semantics() {
        let plan = LogicalPlan::stream("s")
            .filter(col("s", "x1"), Predicate::gt(10))
            .aggregate(None, vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "sum")]);
        let b = basket2();
        b.append(&[Column::Int(vec![5, 20, 30, 7, 40, 8]), Column::Int(vec![1, 2, 3, 4, 5, 6])], 0)
            .unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rows(), vec![vec![Value::Int(5)]]); // x1>10: 20,30 -> 2+3
        assert_eq!(results[1].rows(), vec![vec![Value::Int(8)]]); // 30,40 -> 3+5

        // Metrics record both main and merge components.
        assert_eq!(f.metrics().len(), 2);
    }

    #[test]
    fn incremental_projection_concats() {
        let plan = LogicalPlan::stream("s")
            .filter(col("s", "x1"), Predicate::lt(10))
            .project(vec![(col("s", "x1"), "a".into())]);
        let b = basket2();
        b.append(&[Column::Int(vec![1, 20, 3, 40, 5, 60]), Column::Int(vec![0; 6])], 0).unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rows(), vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        assert_eq!(results[1].rows(), vec![vec![Value::Int(3)], vec![Value::Int(5)]]);
    }

    #[test]
    fn incremental_grouped_aggregate() {
        // Q1 shape: SELECT x1, sum(x2) GROUP BY x1.
        let plan = LogicalPlan::stream("s").aggregate(
            Some(col("s", "x1")),
            vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "sum")],
        );
        let b = basket2();
        b.append(
            &[Column::Int(vec![1, 2, 1, 2, 1, 1]), Column::Int(vec![10, 20, 30, 40, 50, 60])],
            0,
        )
        .unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].sorted_rows(),
            vec![vec![Value::Int(1), Value::Int(40)], vec![Value::Int(2), Value::Int(60)]]
        );
        assert_eq!(
            results[1].sorted_rows(),
            vec![vec![Value::Int(1), Value::Int(140)], vec![Value::Int(2), Value::Int(40)]]
        );
    }

    #[test]
    fn incremental_avg_expansion() {
        let plan = LogicalPlan::stream("s")
            .aggregate(None, vec![AggExpr::new(AggKind::Avg, col("s", "x1"), "avg")]);
        let b = basket2();
        b.append(&[Column::Int(vec![1, 2, 3, 4, 5, 6]), Column::Int(vec![0; 6])], 0).unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results[0].rows(), vec![vec![Value::Float(2.5)]]); // avg 1..4
        assert_eq!(results[1].rows(), vec![vec![Value::Float(4.5)]]); // avg 3..6
    }

    #[test]
    fn incremental_landmark_cumulative() {
        // Q3 shape: max(x1), sum(x2) landmark.
        let plan = LogicalPlan::stream("s").filter(col("s", "x1"), Predicate::gt(0)).aggregate(
            None,
            vec![
                AggExpr::new(AggKind::Max, col("s", "x1"), "mx"),
                AggExpr::new(AggKind::Sum, col("s", "x2"), "sm"),
            ],
        );
        let b = basket2();
        b.append(&[Column::Int(vec![3, 1, 9, 2]), Column::Int(vec![10, 20, 30, 40])], 0).unwrap();
        let mut f = factory(plan, WindowSpec::CountLandmark { step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rows(), vec![vec![Value::Int(3), Value::Int(30)]]);
        assert_eq!(results[1].rows(), vec![vec![Value::Int(9), Value::Int(100)]]);
    }

    #[test]
    fn incremental_join_matrix() {
        // Q2 shape: two streams, join, max + avg.
        let plan = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .aggregate(
                None,
                vec![
                    AggExpr::new(AggKind::Max, col("a", "v"), "mx"),
                    AggExpr::new(AggKind::Avg, col("b", "v"), "av"),
                ],
            );
        let mal = compile(&plan).unwrap();
        let inc = rewrite(&mal).unwrap();
        let ba = SharedBasket::new(Basket::new("a", &[("k", DataType::Int), ("v", DataType::Int)]));
        let bb = SharedBasket::new(Basket::new("b", &[("k", DataType::Int), ("v", DataType::Int)]));
        // Window 4, step 2 => n = 2 basic windows.
        // a: k=[1,2 | 3,4 | 5,6], v=[10,20 | 30,40 | 50,60]
        // b: k=[2,3 | 4,9 | 6,1], v=[5,6 | 7,8 | 9,1]
        ba.append(
            &[Column::Int(vec![1, 2, 3, 4, 5, 6]), Column::Int(vec![10, 20, 30, 40, 50, 60])],
            0,
        )
        .unwrap();
        bb.append(&[Column::Int(vec![2, 3, 4, 9, 6, 1]), Column::Int(vec![5, 6, 7, 8, 9, 1])], 0)
            .unwrap();
        let inputs = vec![StreamInput::new("a", ba.clone()), StreamInput::new("b", bb.clone())];
        let mut f = IncrementalFactory::new(
            "q2",
            inc,
            WindowSpec::CountSliding { size: 4, step: 2 },
            inputs,
            HashMap::new(),
            None,
        )
        .unwrap();
        let results = fire_all(&mut f);
        assert_eq!(results.len(), 2);
        // Window 1: a k=1..4 v=10..40; b k={2,3,4,9} v={5,6,7,8}.
        // Matches: k=2 (a.v=20,b.v=5), k=3 (30,6), k=4 (40,7).
        // max(a.v)=40, avg(b.v)=(5+6+7)/3=6.
        assert_eq!(results[0].rows(), vec![vec![Value::Int(40), Value::Float(6.0)]]);
        // Window 2: a k=3..6; b k={4,9,6,1}: matches k=4 (40,7), k=6 (60,9).
        assert_eq!(results[1].rows(), vec![vec![Value::Int(60), Value::Float(8.0)]]);
    }

    #[test]
    fn chunked_processing_same_results() {
        let plan = LogicalPlan::stream("s")
            .filter(col("s", "x1"), Predicate::gt(10))
            .aggregate(None, vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "sum")]);
        let b = basket2();
        let xs: Vec<i64> = (0..24).map(|i| if i % 2 == 0 { 20 } else { 5 }).collect();
        let ys: Vec<i64> = (0..24).collect();
        b.append(&[Column::Int(xs.clone()), Column::Int(ys.clone())], 0).unwrap();
        // Unchunked reference.
        let mut f1 = factory(plan.clone(), WindowSpec::CountSliding { size: 8, step: 4 }, &b, None);
        let r1 = fire_all(&mut f1);
        // Chunked with fixed m=4.
        let b2 = basket2();
        b2.append(&[Column::Int(xs), Column::Int(ys)], 0).unwrap();
        let mut f2 = factory(
            plan,
            WindowSpec::CountSliding { size: 8, step: 4 },
            &b2,
            Some(AdaptiveChunker::fixed(4)),
        );
        let r2 = fire_all(&mut f2);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.rows(), b.rows());
        }
    }

    #[test]
    fn chunking_rejected_for_joins_and_landmarks() {
        let plan = LogicalPlan::stream("s")
            .aggregate(None, vec![AggExpr::new(AggKind::Sum, col("s", "x2"), "sum")]);
        let mal = compile(&plan).unwrap();
        let inc = rewrite(&mal).unwrap();
        let b = basket2();
        let inputs = vec![StreamInput::new("s", b.clone())];
        let err = IncrementalFactory::new(
            "q",
            inc,
            WindowSpec::CountLandmark { step: 2 },
            inputs,
            HashMap::new(),
            Some(AdaptiveChunker::fixed(2)),
        );
        assert!(err.is_err());
    }

    #[test]
    fn time_based_sliding_with_empty_basic_windows() {
        let plan = LogicalPlan::stream("s")
            .aggregate(None, vec![AggExpr::new(AggKind::Count, col("s", "x1"), "n")]);
        let b = basket2();
        // ts 5, 8 in [0,10); nothing in [10,20); ts 25 in [20,30).
        b.append(&[Column::Int(vec![1]), Column::Int(vec![0])], 5).unwrap();
        b.append(&[Column::Int(vec![2]), Column::Int(vec![0])], 8).unwrap();
        b.append(&[Column::Int(vec![3]), Column::Int(vec![0])], 25).unwrap();
        let mut f = factory(plan, WindowSpec::TimeSliding { size_ms: 20, step_ms: 10 }, &b, None);
        // boundary 10 -> preface; boundary 20 -> window [0,20): 2 tuples.
        assert!(matches!(f.fire(10).unwrap(), FireOutcome::Progressed));
        match f.fire(20).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(2)]]);
            }
            other => panic!("{other:?}"),
        }
        // boundary 30 -> window [10,30): 1 tuple (the empty bw slid in).
        match f.fire(30).unwrap() {
            FireOutcome::Produced { result, .. } => {
                assert_eq!(result.rows(), vec![vec![Value::Int(1)]]);
            }
            other => panic!("{other:?}"),
        }
        assert!(!f.ready(35));
        assert!(f.ready(40));
    }

    #[test]
    fn landmark_join_rejected() {
        let plan = LogicalPlan::stream("a")
            .join(LogicalPlan::stream("b"), col("a", "k"), col("b", "k"))
            .aggregate(None, vec![AggExpr::new(AggKind::Count, col("a", "k"), "n")]);
        let inc = rewrite(&compile(&plan).unwrap()).unwrap();
        let ba = SharedBasket::new(Basket::new("a", &[("k", DataType::Int)]));
        let bb = SharedBasket::new(Basket::new("b", &[("k", DataType::Int)]));
        let inputs = vec![StreamInput::new("a", ba), StreamInput::new("b", bb)];
        let err = IncrementalFactory::new(
            "q",
            inc,
            WindowSpec::CountLandmark { step: 2 },
            inputs,
            HashMap::new(),
            None,
        );
        assert!(err.is_err());
    }

    #[test]
    fn distinct_incremental() {
        let plan = LogicalPlan::stream("s").project(vec![(col("s", "x1"), "a".into())]).distinct();
        let b = basket2();
        b.append(&[Column::Int(vec![1, 1, 2, 1, 3, 3]), Column::Int(vec![0; 6])], 0).unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results[0].sorted_rows(), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(
            results[1].sorted_rows(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn orderby_limit_incremental() {
        let plan = LogicalPlan::stream("s")
            .project(vec![(col("s", "x1"), "a".into())])
            .order_by(col("s", "a"), true)
            .limit(2);
        let b = basket2();
        b.append(&[Column::Int(vec![5, 1, 9, 3, 7, 2]), Column::Int(vec![0; 6])], 0).unwrap();
        let mut f = factory(plan, WindowSpec::CountSliding { size: 4, step: 2 }, &b, None);
        let results = fire_all(&mut f);
        assert_eq!(results[0].rows(), vec![vec![Value::Int(9)], vec![Value::Int(5)]]);
        assert_eq!(results[1].rows(), vec![vec![Value::Int(9)], vec![Value::Int(7)]]);
    }
}
