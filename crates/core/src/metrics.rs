//! Per-slide timing metrics.
//!
//! The paper's Fig. 7 breaks the incremental cost into the "main plan"
//! component (the original plan's operators running on new data) and the
//! "merge" component (the extra operators incremental processing adds:
//! concatenation, compensation, transitions). Factories record both per
//! slide so the harness can regenerate that breakdown.

use std::time::Duration;

/// Timings and output size of one window slide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlideMetrics {
    /// 0-based index of the produced window result.
    pub window_index: usize,
    /// Total time for the slide.
    pub total: Duration,
    /// Time in the original plan's operators (per-basic-window / per-cell
    /// evaluation; for re-evaluation: the whole-window execution).
    pub main_plan: Duration,
    /// Time in merge machinery (concat, compensation, transitions).
    pub merge: Duration,
    /// Result rows emitted.
    pub rows: usize,
}

impl SlideMetrics {
    /// Sum two metric records (aggregating steps).
    pub fn accumulate(&mut self, other: &SlideMetrics) {
        self.total += other.total;
        self.main_plan += other.main_plan;
        self.merge += other.merge;
        self.rows += other.rows;
    }
}

/// Summary over a run of slides.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsSummary {
    /// Number of slides.
    pub slides: usize,
    /// Total result rows emitted across all slides.
    pub rows: usize,
    /// Total wall time.
    pub total: Duration,
    /// Total main-plan time.
    pub main_plan: Duration,
    /// Total merge time.
    pub merge: Duration,
    /// Mean per-slide total; `None` for an empty run, so a summary of
    /// zero slides is distinguishable from a run of sub-resolution
    /// slides whose mean genuinely rounds to zero.
    pub mean_total: Option<Duration>,
    /// Merge time as a share of total time (the paper's Fig. 7 split),
    /// in `[0, 1]`. Defined as 0.0 when total time is zero (no slides,
    /// or all below clock resolution) — there is no merge cost to
    /// attribute in either case.
    pub merge_share: f64,
}

/// Summarize a slice of per-slide metrics. An empty slice yields the
/// zero summary with `mean_total == None` (see [`MetricsSummary`] field
/// docs for the empty/zero conventions).
pub fn summarize(metrics: &[SlideMetrics]) -> MetricsSummary {
    let mut s = MetricsSummary { slides: metrics.len(), ..Default::default() };
    for m in metrics {
        s.rows += m.rows;
        s.total += m.total;
        s.main_plan += m.main_plan;
        s.merge += m.merge;
    }
    if s.slides > 0 {
        s.mean_total = Some(s.total / s.slides as u32);
    }
    if !s.total.is_zero() {
        s.merge_share = s.merge.as_secs_f64() / s.total.as_secs_f64();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SlideMetrics {
            window_index: 0,
            total: Duration::from_millis(10),
            main_plan: Duration::from_millis(7),
            merge: Duration::from_millis(3),
            rows: 5,
        };
        let b = SlideMetrics {
            window_index: 1,
            total: Duration::from_millis(20),
            main_plan: Duration::from_millis(12),
            merge: Duration::from_millis(8),
            rows: 1,
        };
        a.accumulate(&b);
        assert_eq!(a.total, Duration::from_millis(30));
        assert_eq!(a.main_plan, Duration::from_millis(19));
        assert_eq!(a.merge, Duration::from_millis(11));
        assert_eq!(a.rows, 6);
    }

    #[test]
    fn summarize_means() {
        let ms = vec![
            SlideMetrics {
                total: Duration::from_millis(10),
                merge: Duration::from_millis(4),
                rows: 3,
                ..Default::default()
            },
            SlideMetrics {
                total: Duration::from_millis(30),
                merge: Duration::from_millis(6),
                rows: 7,
                ..Default::default()
            },
        ];
        let s = summarize(&ms);
        assert_eq!(s.slides, 2);
        assert_eq!(s.rows, 10);
        assert_eq!(s.total, Duration::from_millis(40));
        assert_eq!(s.mean_total, Some(Duration::from_millis(20)));
        assert!((s.merge_share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty() {
        // The empty run is unambiguous: no mean at all (not a zero mean)
        // and a merge share pinned at 0.0.
        let s = summarize(&[]);
        assert_eq!(s.slides, 0);
        assert_eq!(s.rows, 0);
        assert_eq!(s.mean_total, None);
        assert_eq!(s.merge_share, 0.0);
    }

    #[test]
    fn summarize_zero_duration_slides_keep_mean_some() {
        // Slides whose timings all round to zero still have a (zero)
        // mean — only the *empty* run reports None.
        let ms = vec![SlideMetrics { rows: 1, ..Default::default() }; 3];
        let s = summarize(&ms);
        assert_eq!(s.slides, 3);
        assert_eq!(s.mean_total, Some(Duration::ZERO));
        assert_eq!(s.merge_share, 0.0);
    }
}
