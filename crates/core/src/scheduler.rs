//! The DataCell scheduler — a Petri-net execution model.
//!
//! "The execution of the factories is orchestrated by the DataCell
//! scheduler, which implements a Petri-net model. The firing condition is
//! aligned to arrival of events; once there are tuples that may be relevant
//! to a waiting query, we trigger its evaluation." (paper §2)
//!
//! Places are baskets, transitions are factories. A factory is *enabled*
//! when its firing condition holds (enough unconsumed tuples in all input
//! baskets, or — for time-based windows — the clock passed the next window
//! boundary). The scheduler fires enabled factories round-robin until
//! quiescence, so many standing queries interleave fairly on one thread.
//!
//! This sequential scheduler sees only the *sealed* basket view: with the
//! sharded ingest path (`ShardedBasket`), the wrapping
//! [`parallel::ParallelScheduler`] seals staged receptor appends into
//! oid order before every drain/readiness scan — on the one-worker path
//! too — so firing conditions here never have to know shards exist.

pub mod parallel;

pub use parallel::{parse_workers, workers_from_env, ConsumerId, ParallelScheduler, WorkerStats};

use crate::error::DataCellError;
use crate::factory::{Factory, FireOutcome};
use crate::metrics::SlideMetrics;
use datacell_basket::Timestamp;
use datacell_plan::ResultSet;

/// Identifier of a registered factory (continuous query).
pub type FactoryId = usize;

/// A produced result, tagged with its factory.
#[derive(Debug)]
pub struct Emission {
    /// Which factory produced it.
    pub factory: FactoryId,
    /// The window result.
    pub result: ResultSet,
    /// The engine clock when it was produced.
    pub at: Timestamp,
    /// The slide's cost decomposition (paper Fig. 7: main plan vs. merge,
    /// rows emitted), carried along so the engine can fold it into the
    /// per-query telemetry series at the one deterministic collection
    /// point — both scheduler paths fill it from the factory's
    /// [`FireOutcome::Produced`].
    pub metrics: SlideMetrics,
}

/// Round-robin Petri-net scheduler over a set of factories.
#[derive(Default)]
pub struct Scheduler {
    factories: Vec<Option<Box<dyn Factory>>>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Register a factory; returns its id.
    pub fn register(&mut self, f: Box<dyn Factory>) -> FactoryId {
        self.factories.push(Some(f));
        self.factories.len() - 1
    }

    /// Remove a factory (the continuous query is dropped).
    pub fn deregister(&mut self, id: FactoryId) -> Result<(), DataCellError> {
        match self.factories.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(DataCellError::UnknownQuery(id)),
        }
    }

    /// Access a factory.
    pub fn factory(&self, id: FactoryId) -> Result<&dyn Factory, DataCellError> {
        self.factories.get(id).and_then(|f| f.as_deref()).ok_or(DataCellError::UnknownQuery(id))
    }

    /// Mutable access to a factory.
    pub fn factory_mut(&mut self, id: FactoryId) -> Result<&mut Box<dyn Factory>, DataCellError> {
        self.factories.get_mut(id).and_then(|f| f.as_mut()).ok_or(DataCellError::UnknownQuery(id))
    }

    /// Ids of all live factories.
    pub fn ids(&self) -> Vec<FactoryId> {
        self.factories.iter().enumerate().filter_map(|(i, f)| f.as_ref().map(|_| i)).collect()
    }

    /// Is any factory enabled?
    pub fn any_ready(&self, clock: Timestamp) -> bool {
        self.factories.iter().flatten().any(|f| f.ready(clock))
    }

    /// One scheduling round: fire every enabled factory once, collecting
    /// emissions. Returns whether any factory fired (made progress).
    pub fn round(
        &mut self,
        clock: Timestamp,
        emissions: &mut Vec<Emission>,
    ) -> Result<bool, DataCellError> {
        let mut progressed = false;
        for (id, slot) in self.factories.iter_mut().enumerate() {
            let Some(f) = slot else { continue };
            if !f.ready(clock) {
                continue;
            }
            match f.fire(clock)? {
                FireOutcome::Produced { result, metrics } => {
                    progressed = true;
                    emissions.push(Emission { factory: id, result, at: clock, metrics });
                }
                FireOutcome::Progressed => progressed = true,
                FireOutcome::NotReady => {}
            }
        }
        Ok(progressed)
    }

    /// Run rounds until no factory is enabled. Returns all emissions.
    pub fn run_until_idle(&mut self, clock: Timestamp) -> Result<Vec<Emission>, DataCellError> {
        let mut emissions = Vec::new();
        while self.round(clock, &mut emissions)? {}
        Ok(emissions)
    }

    /// Minimum consumed position across factories for a stream (`None`
    /// when no live factory reads the stream) — the basket expiry bound.
    pub fn min_consumed(&self, stream: &str) -> Option<u64> {
        self.factories.iter().flatten().filter_map(|f| f.consumed_upto(stream)).min()
    }

    /// Move a factory out of its slot so a worker thread can own it while
    /// firing (see [`parallel::ParallelScheduler`]). The slot stays
    /// reserved — `register` cannot reuse the id — until `restore_slot`.
    pub(crate) fn take_slot(&mut self, id: FactoryId) -> Option<Box<dyn Factory>> {
        self.factories.get_mut(id).and_then(Option::take)
    }

    /// Return a factory taken with [`Scheduler::take_slot`].
    pub(crate) fn restore_slot(&mut self, id: FactoryId, f: Box<dyn Factory>) {
        self.factories[id] = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SlideMetrics;
    use datacell_kernel::{Column, Oid};

    /// A factory that needs `per_fire` ticks of "input" and produces a
    /// counter result; used to test scheduling fairness and GC bounds.
    struct FakeFactory {
        label: String,
        budget: usize,
        fired: usize,
        consumed: Oid,
        metrics: Vec<SlideMetrics>,
    }

    impl FakeFactory {
        fn new(label: &str, budget: usize) -> FakeFactory {
            FakeFactory { label: label.into(), budget, fired: 0, consumed: 0, metrics: vec![] }
        }
    }

    impl Factory for FakeFactory {
        fn label(&self) -> &str {
            &self.label
        }

        fn ready(&self, _clock: Timestamp) -> bool {
            self.fired < self.budget
        }

        fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
            self.fired += 1;
            self.consumed += 1;
            let rs = ResultSet::new(vec!["n".into()], vec![Column::Int(vec![self.fired as i64])])
                .unwrap();
            Ok(FireOutcome::Produced { result: rs, metrics: SlideMetrics::default() })
        }

        fn consumed_upto(&self, stream: &str) -> Option<Oid> {
            (stream == "s").then_some(self.consumed)
        }

        fn input_streams(&self) -> Vec<String> {
            vec!["s".into()]
        }

        fn metrics(&self) -> &[SlideMetrics] {
            &self.metrics
        }
    }

    #[test]
    fn round_robin_interleaves_factories() {
        let mut s = Scheduler::new();
        let a = s.register(Box::new(FakeFactory::new("a", 2)));
        let b = s.register(Box::new(FakeFactory::new("b", 3)));
        let emissions = s.run_until_idle(0).unwrap();
        assert_eq!(emissions.len(), 5);
        // First round fires both a and b once (fair interleaving).
        assert_eq!(emissions[0].factory, a);
        assert_eq!(emissions[1].factory, b);
        assert!(!s.any_ready(0));
    }

    #[test]
    fn min_consumed_across_factories() {
        let mut s = Scheduler::new();
        s.register(Box::new(FakeFactory::new("a", 2)));
        s.register(Box::new(FakeFactory::new("b", 5)));
        s.run_until_idle(0).unwrap();
        // a consumed 2, b consumed 5 -> GC bound is 2.
        assert_eq!(s.min_consumed("s"), Some(2));
        assert_eq!(s.min_consumed("zzz"), None);
    }

    #[test]
    fn deregister_frees_gc_bound() {
        let mut s = Scheduler::new();
        let a = s.register(Box::new(FakeFactory::new("a", 1)));
        let b = s.register(Box::new(FakeFactory::new("b", 4)));
        s.run_until_idle(0).unwrap();
        assert_eq!(s.min_consumed("s"), Some(1));
        s.deregister(a).unwrap();
        assert_eq!(s.min_consumed("s"), Some(4));
        assert!(s.deregister(a).is_err());
        assert_eq!(s.ids(), vec![b]);
    }

    #[test]
    fn factory_lookup() {
        let mut s = Scheduler::new();
        let a = s.register(Box::new(FakeFactory::new("alpha", 0)));
        assert_eq!(s.factory(a).unwrap().label(), "alpha");
        assert!(s.factory(99).is_err());
        assert!(s.factory_mut(99).is_err());
    }
}
